//! Run one speed test two ways: through the fluid TCP model the campaign
//! uses, and replayed packet-by-packet through the discrete-event TCP
//! simulator — then recover RTT/loss from the packet capture the way the
//! paper's pipeline does from tcpdump.
//!
//! ```text
//! cargo run --release -p clasp-examples --bin speedtest_single [--seed N] [--hour H]
//! ```

use clasp_core::world::World;
use clasp_examples::arg_u64;
use simnet::routing::Tier;
use simnet::time::SimTime;
use simtcp::flow::{run_flow, FlowConfig};
use simtcp::tcp::CongestionControl;

fn main() {
    let seed = arg_u64("--seed", 7);
    let hour = arg_u64("--hour", 15);
    let world = World::new(seed);
    let session = world.session();
    let client = speedtest::client::SpeedTestClient::default();

    let region = world.topo.cities.by_name("The Dalles").unwrap();
    let server = world
        .registry
        .in_country("US")
        .into_iter()
        .find(|s| s.platform == speedtest::platform::Platform::Ookla)
        .expect("US Ookla server exists");
    println!(
        "test server: {} ({}), capacity {} Gbps",
        server.id, server.sponsor, server.capacity_gbps
    );

    let pair = client
        .resolve_paths(
            &session.paths,
            region,
            world.topo.vm_ip(region, 0),
            server,
            Tier::Premium,
        )
        .expect("routable");
    let t = SimTime::from_day_hour(3, hour);

    // --- Fluid model (what the longitudinal campaign uses). ---
    let result = client.run_test(&session.perf, &pair, server, t, seed);
    println!("\nfluid model @ {t}:");
    println!("  latency   {:.1} ms", result.latency_ms);
    println!(
        "  download  {:.1} Mbps (loss {:.4})",
        result.download_mbps, result.download_loss
    );
    println!(
        "  upload    {:.1} Mbps (loss {:.4})",
        result.upload_mbps, result.upload_loss
    );

    // --- Packet-level replay of the download. ---
    let spec =
        speedtest::packetize::packetize(&session.perf, &pair.to_cloud, &pair.to_server, t, 512);
    let pkt = run_flow(
        &spec,
        &FlowConfig {
            cc: CongestionControl::Cubic,
            n_connections: server.platform.connections() as usize,
            duration_s: server.platform.transfer_seconds(),
            capture: true,
            seed,
            ..Default::default()
        },
    );
    println!(
        "\npacket-level replay ({} connections, {:.0} s):",
        server.platform.connections(),
        server.platform.transfer_seconds()
    );
    println!("  goodput      {:.1} Mbps", pkt.throughput_mbps);
    println!("  srtt         {:?} ms", pkt.srtt_ms.map(|v| v.round()));
    println!(
        "  retransmits  {} (timeouts {})",
        pkt.retransmits, pkt.timeouts
    );
    println!("  link drops   {:.4}", pkt.observed_loss);

    // --- tcpdump-style analysis of the capture (the paper's pipeline). ---
    let stats = nettools::flowrecords::analyze(&pkt.capture);
    println!("\nheader-capture analysis (the paper's RTT/loss estimators):");
    println!("  est. RTT    {:?} ms", stats.rtt_ms.map(|v| v.round()));
    println!("  est. loss   {:.4}", stats.loss_rate);
    println!(
        "  packets     {} ({} distinct segments)",
        stats.data_packets, stats.distinct_segments
    );

    let ratio = pkt.throughput_mbps / result.download_mbps.max(1.0);
    println!("\npacket/fluid download ratio: {ratio:.2} (the campaign's fluid substitution)");

    // --- someta metadata, as recorded around every real test. ---
    let meta = nettools::someta::record("example-vm", "us-west1", t, result.download_mbps);
    println!(
        "someta: cpu {:.0}%, mem {:.0} MB, tainted: {}",
        meta.cpu_util * 100.0,
        meta.mem_used_mb,
        nettools::someta::is_tainted(&meta)
    );
}
