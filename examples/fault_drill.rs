//! Fault drill: run the same campaign pristine and under a fault plan,
//! watch the orchestrator retry its way through, and verify the
//! completeness report reconciles exactly against the injected-fault
//! ground truth — then kill the run mid-way and resume it from a
//! checkpoint.
//!
//! ```text
//! cargo run --release -p clasp-examples --bin fault_drill [--seed N] [--days N]
//! ```

use clasp_core::campaign::{Campaign, CampaignConfig};
use clasp_core::world::World;
use clasp_examples::arg_u64;
use faultsim::{FaultKind, FaultPlan, ScheduledFault};

fn main() {
    let seed = arg_u64("--seed", 42);
    let days = arg_u64("--days", 4);

    println!("== CLASP fault drill: seed {seed}, {days} days ==\n");
    let world = World::new(seed);

    // 1. Baseline: no faults. The plan is bitwise invisible.
    let mut config = CampaignConfig::small(seed);
    config.days = days;
    let pristine = Campaign::new(&world, config.clone())
        .runner()
        .run()
        .expect("fresh runs cannot fail");
    println!(
        "pristine : {} tests, {} points, {} faults",
        pristine.tests_run,
        pristine.db.points_written,
        pristine.fault_log.len()
    );

    // 2. The same campaign under the moderate (1%) profile, plus one
    //    scheduled regional incident.
    let mut plan = FaultPlan::builtin("moderate").expect("built-in profile");
    plan.scheduled.push(ScheduledFault {
        kind: FaultKind::QuotaExhausted,
        start_hour: 30,
        duration_hours: 6,
        region: Some("us-west1".into()),
        vm: None,
    });
    config.fault_plan = plan;
    let faulted = Campaign::new(&world, config.clone())
        .runner()
        .run()
        .expect("fresh runs cannot fail");
    let summary = faulted.fault_log.summary();
    println!(
        "faulted  : {} tests, {} points ({} fewer than pristine)",
        faulted.tests_run,
        faulted.db.points_written,
        pristine.db.points_written - faulted.db.points_written
    );
    println!(
        "faults   : {} injected — {} recovered with {} retries, {} lost {} server-hours",
        summary.total, summary.recovered, summary.retries, summary.lost, summary.lost_s_hours
    );
    for (kind, n) in &summary.by_kind {
        println!("           {kind:<16} {n}");
    }

    // 3. The ground-truth invariant: expected − collected server-hours
    //    equals, region by region, what the fault log says was lost.
    println!("\ncompleteness:\n{}", faulted.completeness.render());
    assert!(
        faulted.completeness.reconciles(),
        "discrepancies: {:?}",
        faulted.completeness.discrepancies()
    );
    println!("reconciliation: exact — every missing server-hour is accounted for");

    // 4. Crash/resume: take the first checkpoint (as if the driver died
    //    after the first region) and resume; the final results match the
    //    uninterrupted run exactly.
    let resumed = Campaign::new(&world, config)
        .runner()
        .resume_from(&faulted.checkpoints[0])
        .run()
        .expect("checkpoint resumes");
    assert_eq!(faulted.tests_run, resumed.tests_run);
    assert_eq!(faulted.db.points_written, resumed.db.points_written);
    assert_eq!(faulted.fault_log, resumed.fault_log);
    assert_eq!(
        serde_json::to_string(faulted.checkpoints.last().unwrap()),
        serde_json::to_string(resumed.checkpoints.last().unwrap()),
    );
    println!(
        "\nresume: re-ran {} of {} units from checkpoint — final state identical",
        faulted.checkpoints.len() - 1,
        faulted.checkpoints.len()
    );
}
