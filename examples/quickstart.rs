//! Quickstart: build a world, run a one-week CLASP campaign in one
//! region, and print what the platform found.
//!
//! ```text
//! cargo run --release -p clasp-examples --bin quickstart [--seed N] [--days N]
//! ```

use clasp_core::campaign::{Campaign, CampaignConfig};
use clasp_core::congestion::CongestionAnalysis;
use clasp_core::world::World;
use clasp_examples::arg_u64;

fn main() {
    let seed = arg_u64("--seed", 42);
    let days = arg_u64("--days", 7);

    println!("== CLASP quickstart: seed {seed}, {days} days ==\n");

    // 1. The world: a simulated Internet with a cloud platform in it.
    let world = World::new(seed);
    println!(
        "world: {} ASes, {} cloud interdomain links, {} speed-test servers ({} US)",
        world.topo.as_count(),
        world.topo.links.len(),
        world.registry.servers.len(),
        world.registry.in_country("US").len()
    );

    // 2. A small campaign: one topology region, one differential region.
    let mut config = CampaignConfig::small(seed);
    config.days = days;
    config.topo_regions = vec![("us-west1", 34)];
    let result = Campaign::new(&world, config)
        .runner()
        .run()
        .expect("fresh runs cannot fail");
    println!(
        "campaign: {} tests from {} VMs, {} raw objects uploaded, bill ${:.2}",
        result.tests_run,
        result.vm_count,
        result.raw_objects,
        result.billing.total_usd()
    );
    let sel = &result.topo_selections[0];
    println!(
        "topology selection: bdrmap saw {} links, {} traversed by US servers, {} measured",
        sel.bdrmap_links,
        sel.links_traversed,
        sel.servers.len()
    );

    // 3. Congestion detection on the collected data.
    let mut db = result.db;
    let analysis = CongestionAnalysis::build(
        &mut db,
        &world,
        "download",
        &[("method".to_string(), "topo".to_string())],
    );
    let (_, elbow) = analysis.elbow_threshold(20);
    println!(
        "\ncongestion: {} s-days analysed, elbow threshold H = {:?}",
        analysis.day_vars.len(),
        elbow
    );
    let h = 0.5;
    println!(
        "at H = {h}: {:.1}% of s-days and {:.2}% of s-hours congested, {} events",
        analysis.fraction_days_above(h) * 100.0,
        analysis.fraction_hours_above(h) * 100.0,
        analysis.events(h).len()
    );

    // 4. The most congested server's day profile.
    let per_series = analysis.events_per_series(h);
    if let Some((idx, events)) = per_series
        .iter()
        .enumerate()
        .max_by_key(|(_, &e)| e)
        .filter(|(_, &e)| e > 0)
    {
        let info = &analysis.series[idx];
        let probs = analysis.hourly_probability(h);
        let profile = &probs[idx];
        let peak = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        println!(
            "\nmost congested server: {} ({events} events, peak probability {:.2} at {:02}:00 local)",
            info.server, peak.1, peak.0
        );
        print!("hourly profile: ");
        for p in profile {
            print!(
                "{}",
                if *p > 0.2 {
                    '#'
                } else if *p > 0.0 {
                    '+'
                } else {
                    '.'
                }
            );
        }
        println!("  (midnight→23:00 local)");
    } else {
        println!("\nno congested servers in this short window — try more days");
    }
}
