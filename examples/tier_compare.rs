//! The differential experiment end to end: Speedchecker-style pre-test,
//! candidate tuples, server picks, a paired-tier campaign, and the Δ
//! distributions — a runnable miniature of §3.1 (method 2) + §4.1.
//!
//! ```text
//! cargo run --release -p clasp-examples --bin tier_compare [--seed N] [--days N]
//! ```

use clasp_core::campaign::{Campaign, CampaignConfig};
use clasp_core::tiercmp::{Metric, TierComparison};
use clasp_core::world::World;
use clasp_examples::arg_u64;
use clasp_stats::{median, Ecdf};

fn main() {
    let seed = arg_u64("--seed", 9);
    let days = arg_u64("--days", 5);
    let world = World::new(seed);

    let mut config = CampaignConfig::small(seed);
    config.topo_regions.clear(); // differential only
    config.days = days;
    config.diff_days = days;
    config.diff_regions = vec!["europe-west1"];
    config.pretest.picks = 17;
    let mut result = Campaign::new(&world, config)
        .runner()
        .run()
        .expect("fresh runs cannot fail");

    let sel = &result.diff_selections[0];
    println!(
        "pre-test: {} tuples considered, {} candidates, {} servers picked\n",
        sel.tuples_considered,
        sel.candidate_tuples,
        sel.picks.len()
    );
    println!(
        "{:<14} {:<15} {:>9} {:>9}",
        "server", "class", "prem ms", "std ms"
    );
    for p in &sel.picks {
        println!(
            "{:<14} {:<15} {:>9.1} {:>9.1}",
            p.server_id,
            p.class.label(),
            p.premium_ms,
            p.standard_ms
        );
    }

    let selection = result.diff_selections[0].clone();
    let cmp = TierComparison::build(&mut result.db, &selection);
    println!(
        "\npaired campaign over {days} days: standard faster on download in {:.1}% of tests",
        cmp.standard_faster_fraction() * 100.0
    );
    println!(
        "servers with >10% mean premium download loss: {:?}",
        cmp.premium_lossy_servers(0.10)
    );

    for metric in [Metric::Download, Metric::Upload, Metric::Latency] {
        println!("\nΔ {metric:?} by pre-test class:");
        for class in [
            clasp_core::select::differential::LatencyClass::Comparable,
            clasp_core::select::differential::LatencyClass::PremiumLower,
            clasp_core::select::differential::LatencyClass::StandardLower,
        ] {
            let vals = cmp.pooled(class, metric);
            if vals.is_empty() {
                continue;
            }
            let med = median(&vals).unwrap();
            let frac_neg = Ecdf::new(&vals).map(|e| e.eval_strict(0.0)).unwrap_or(0.0);
            println!(
                "  {:<15} n={:<5} median {:+.3}  P(std faster)={:.2}",
                class.label(),
                vals.len(),
                med,
                frac_neg
            );
        }
    }
    println!(
        "\n(paper, europe-west1: standard generally higher on throughput, premium more stable)"
    );
}
