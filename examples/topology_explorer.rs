//! Explore the simulated Internet the way CLASP's pilot scan does: run
//! paris- and classic-mode traceroutes to a server, then a bdrmap scan,
//! and check the inference against the simulator's ground truth (the
//! check the real paper could never do).
//!
//! ```text
//! cargo run --release -p clasp-examples --bin topology_explorer [--seed N] [--region us-west1]
//! ```

use clasp_core::world::World;
use clasp_examples::{arg_str, arg_u64};
use nettools::bdrmap::{BdrMap, SimAliasResolver};
use nettools::scamper::{Scamper, Target};
use nettools::traceroute::{traceroute, TraceMode};
use simnet::routing::Tier;

fn main() {
    let seed = arg_u64("--seed", 11);
    let region_name = arg_str("--region", "us-west1");
    let world = World::new(seed);
    let session = world.session();
    let region = cloudsim::region::Region::by_name(&region_name).expect("known region");
    let region_city = region.city_id(&world.topo.cities);
    let vm = world.topo.vm_ip(region_city, 0);

    // --- 1. A paris traceroute to a server, annotated two ways. ---
    let server = world.registry.in_country("US")[5];
    println!(
        "paris-traceroute {} → {} ({})\n",
        region.name, server.ip, server.sponsor
    );
    let trace = traceroute(
        &session.paths,
        region_city,
        vm,
        server.as_id,
        server.city,
        server.ip,
        Tier::Premium,
        TraceMode::Paris,
        0xfeed,
        seed,
    )
    .expect("routable");
    println!(
        "{:>4} {:>16} {:>9}  {:<22} actually owned by",
        "ttl", "ip", "rtt", "prefix2as says"
    );
    for hop in &trace.hops {
        match hop.ip {
            Some(ip) => {
                let dataset = world
                    .p2a
                    .lookup(ip)
                    .map(|(_, asn)| asn.to_string())
                    .unwrap_or_else(|| "unrouted".into());
                let truth = world.p2a.lookup(ip).map(|(id, _)| id).map(|_| ());
                let _ = truth;
                // Ground truth via the topology (interface registry).
                let owner = world
                    .topo
                    .links
                    .iter()
                    .find(|l| l.far_ip == ip)
                    .map(|l| world.topo.as_node(l.neighbor).name.clone());
                println!(
                    "{:>4} {:>16} {:>7.1}ms  {:<22} {}",
                    hop.ttl,
                    ip,
                    hop.rtt_ms,
                    dataset,
                    owner.unwrap_or_default()
                );
            }
            None => println!("{:>4} {:>16}", hop.ttl, "*"),
        }
    }
    println!("\nnote the far-side border interface: the dataset attributes it to the cloud;");
    println!("its operator is the neighbor — the gap bdrmap exists to close.\n");

    // --- 2. Classic mode can flap across parallel interfaces. ---
    let mut distinct = std::collections::BTreeSet::new();
    for flow in 0..12 {
        if let Some(t) = traceroute(
            &session.paths,
            region_city,
            vm,
            server.as_id,
            server.city,
            server.ip,
            Tier::Premium,
            TraceMode::Paris,
            flow,
            seed,
        ) {
            distinct.insert(t.responsive_ips());
        }
    }
    println!(
        "12 flow ids produced {} distinct paris paths (ECMP across parallel interfaces)\n",
        distinct.len()
    );

    // --- 3. A bdrmap scan over part of the topology. ---
    let targets: Vec<Target> = world
        .topo
        .non_cloud_ases()
        .take(600)
        .map(|id| {
            let city = world.topo.as_node(id).home_city;
            Target {
                as_id: id,
                city,
                ip: world.topo.host_ip(id, city, 0),
            }
        })
        .collect();
    let traces = Scamper::default().trace_many(
        &session.paths,
        region_city,
        vm,
        &targets,
        Tier::Premium,
        TraceMode::Paris,
        8,
        seed,
    );
    let aliases = SimAliasResolver::new(&world.topo, 0.85);
    let map = BdrMap::infer(&traces, &world.p2a, simnet::topology::CLOUD_ASN, &aliases);
    println!(
        "bdrmap: {} traceroutes → {} border links discovered (topology truth: {})",
        traces.len(),
        map.link_count(),
        world.topo.links.len()
    );

    // --- 4. Score the inference against ground truth. ---
    let truth: std::collections::HashMap<std::net::Ipv4Addr, simnet::asn::Asn> = world
        .topo
        .links
        .iter()
        .map(|l| (l.far_ip, world.topo.as_node(l.neighbor).asn))
        .collect();
    let (mut correct, mut wrong, mut unknown) = (0, 0, 0);
    for (far, link) in &map.links {
        match (link.inferred_neighbor(), truth.get(far)) {
            (Some(inf), Some(actual)) if inf == *actual => correct += 1,
            (Some(_), Some(_)) => wrong += 1,
            _ => unknown += 1,
        }
    }
    println!(
        "neighbor attribution: {correct} correct, {wrong} wrong, {unknown} unmatched → {:.1}% accuracy",
        100.0 * correct as f64 / (correct + wrong).max(1) as f64
    );
    let by_neighbor = map.by_neighbor();
    let mut counts: Vec<(String, usize)> = by_neighbor
        .iter()
        .map(|(asn, links)| {
            let name = world
                .topo
                .by_asn(*asn)
                .map(|id| world.topo.as_node(id).name.clone())
                .unwrap_or_else(|| asn.to_string());
            (name, links.len())
        })
        .collect();
    counts.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\nbusiest inferred neighbors:");
    for (name, n) in counts.into_iter().take(8) {
        println!("  {n:>4} links  {name}");
    }
}
