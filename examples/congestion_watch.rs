//! Watch a congested ISP the way §4.2 does: run a campaign against one
//! region, rank servers by congestion events, and print the worst
//! server's two-day time series with V_H overlays and its hour-of-day
//! congestion probability — a runnable miniature of Fig. 3 + Fig. 6.
//!
//! ```text
//! cargo run --release -p clasp-examples --bin congestion_watch [--seed N] [--days N] [--budget N]
//! ```

use clasp_core::campaign::{Campaign, CampaignConfig};
use clasp_core::congestion::CongestionAnalysis;
use clasp_core::world::World;
use clasp_examples::arg_u64;

fn main() {
    let seed = arg_u64("--seed", 21);
    let days = arg_u64("--days", 14);
    let budget = arg_u64("--budget", 34) as usize;
    let world = World::new(seed);

    let mut config = CampaignConfig::small(seed);
    config.days = days;
    config.topo_regions = vec![("us-west1", budget)];
    config.diff_regions.clear();
    let result = Campaign::new(&world, config)
        .runner()
        .run()
        .expect("fresh runs cannot fail");
    let mut db = result.db;

    let analysis = CongestionAnalysis::build(
        &mut db,
        &world,
        "download",
        &[("method".to_string(), "topo".to_string())],
    );
    let h = 0.5;
    let events = analysis.events_per_series(h);
    let mut ranked: Vec<usize> = (0..analysis.series.len()).collect();
    ranked.sort_by_key(|&i| std::cmp::Reverse(events[i]));

    println!("== congestion ranking, us-west1, {days} days, H = {h} ==");
    let probs = analysis.hourly_probability(h);
    for &i in ranked.iter().take(8) {
        if events[i] == 0 {
            break;
        }
        let info = &analysis.series[i];
        let srv = world.registry.by_id(&info.server);
        let label = srv
            .map(|s| s.sponsor.clone())
            .unwrap_or_else(|| info.server.clone());
        let profile: String = probs[i]
            .iter()
            .map(|p| {
                if *p > 0.5 {
                    '█'
                } else if *p > 0.2 {
                    '▓'
                } else if *p > 0.0 {
                    '░'
                } else {
                    '·'
                }
            })
            .collect();
        println!("{:>4} events  {profile}  {label}", events[i]);
    }
    println!("{:>14}(hour-of-day profile, local midnight → 23:00)\n", "");

    // Two-day deep dive on the worst server.
    let Some(&worst) = ranked.first().filter(|&&i| events[i] > 0) else {
        println!("no congestion events — rerun with more days or servers");
        return;
    };
    let info = &analysis.series[worst];
    let worst_day = analysis
        .day_vars
        .iter()
        .filter(|d| d.series == info.key)
        .max_by(|a, b| a.v.partial_cmp(&b.v).unwrap())
        .map(|d| d.local_day)
        .unwrap_or(0);
    println!(
        "== two-day series for {} (worst local day {worst_day}) ==",
        info.server
    );
    let worst_idx = u32::try_from(worst).expect("series count fits u32");
    let mut rows: Vec<&clasp_core::congestion::HourSample> = analysis
        .samples
        .iter()
        .filter(|s| {
            s.series_idx == worst_idx && (s.local_day == worst_day || s.local_day == worst_day + 1)
        })
        .collect();
    rows.sort_by_key(|s| s.time);
    let max = rows.iter().map(|s| s.value).fold(1.0_f64, f64::max);
    for s in rows {
        let bar_len = ((s.value / max) * 48.0).round() as usize;
        println!(
            "{:>14} {:>7.1} Mbps |{:<48}| V_H={:.2}{}",
            simnet::time::SimTime(s.time).to_string(),
            s.value,
            "█".repeat(bar_len),
            s.v_h,
            if s.v_h > h { "  << CONGESTED" } else { "" }
        );
    }
}
