//! Stream watch: run a fault-injected campaign with the online
//! congestion engine attached, watch alerts fire with hysteresis while
//! the data streams in, let the threshold recalibrate itself — then
//! cross-check every label against the batch analysis and replay the
//! run from a mid-campaign checkpoint.
//!
//! ```text
//! cargo run --release -p clasp-examples --bin stream_watch [--seed N] [--days N]
//! ```

use clasp_core::campaign::{Campaign, CampaignConfig};
use clasp_core::congestion::CongestionAnalysis;
use clasp_core::world::World;
use clasp_examples::arg_u64;
use clasp_stream::{EngineConfig, ThresholdMode};
use faultsim::FaultPlan;

fn main() {
    let seed = arg_u64("--seed", 42);
    let days = arg_u64("--days", 5);

    println!("== CLASP stream watch: seed {seed}, {days} days, gcp-2020 faults ==\n");
    let world = World::new(seed);
    let mut config = CampaignConfig::small(seed);
    config.days = days;
    config.fault_plan = FaultPlan::builtin("gcp-2020").expect("built-in profile");

    // 1. Stream the campaign through the engine: labels, alerts and the
    //    threshold all update online as each result lands.
    let mut engine_cfg = EngineConfig::paper();
    engine_cfg.threshold = ThresholdMode::Auto {
        initial: 0.5,
        min_days: 20,
    };
    let campaign = Campaign::new(&world, config);
    let mut engine = campaign.stream_engine(engine_cfg.clone());
    let mut result = campaign
        .runner()
        .streaming(&mut engine)
        .run()
        .expect("fresh runs cannot fail");

    let s = engine.stats();
    println!(
        "stream   : {} events → {} matched → {} days closed → {} labels",
        s.events_seen, s.points_matched, s.days_closed, s.labels_emitted
    );
    println!(
        "health   : {} out-of-order, {} duplicates, {} gap-hours, {} late, {} bus-dropped",
        s.out_of_order, s.duplicates, s.gap_hours, s.late_dropped, s.bus_overflow
    );
    let fs = result.fault_log.summary();
    println!(
        "faults   : {} injected, {} recovered ({} retries), {} lost",
        fs.total, fs.recovered, fs.retries, fs.lost
    );
    println!(
        "threshold: recalibrated online to H = {:.2} (elbow of the streaming sweep)",
        engine.threshold()
    );

    // 2. The alert timeline: hysteresis (enter 0.5 / exit 0.3, 2-hour
    //    debounce) turns noisy hourly verdicts into sustained episodes.
    println!("\nalerts ({}):", engine.alerts().len());
    for a in engine.alerts().iter().take(10) {
        println!(
            "  {:<14} hours {:>4}–{:<4} peak V_H {:.2} ({} congested hours{})",
            a.server,
            a.start / 3600,
            a.end / 3600,
            a.peak_v_h,
            a.events,
            if a.open { ", still open" } else { "" }
        );
    }
    if engine.alerts().len() > 10 {
        println!("  … and {} more", engine.alerts().len() - 10);
    }

    // 3. The equivalence guarantee: the online view is element-wise
    //    identical to the batch analysis of the same database.
    let analysis = CongestionAnalysis::build(
        &mut result.db,
        &world,
        "download",
        &[("method".to_string(), "topo".to_string())],
    );
    assert_eq!(engine.day_records().len(), analysis.day_vars.len());
    assert!(engine
        .day_records()
        .iter()
        .zip(&analysis.day_vars)
        .all(|(d, b)| d.v.to_bits() == b.v.to_bits() && d.local_day == b.local_day));
    assert_eq!(engine.labels().len(), analysis.samples.len());
    assert!(engine
        .labels()
        .iter()
        .zip(&analysis.samples)
        .all(|(l, b)| l.time == b.time && l.v_h.to_bits() == b.v_h.to_bits()));
    println!(
        "\nequivalence: {} day records and {} labels bit-identical to batch",
        engine.day_records().len(),
        engine.labels().len()
    );

    // 4. Crash/resume with detection state: restore the engine from the
    //    first checkpoint's embedded snapshot and finish the run — the
    //    final engine state matches the uninterrupted one byte for byte.
    let ckpt = &result.checkpoints[0];
    let mut resumed_engine = campaign
        .restore_stream_engine(engine_cfg, ckpt)
        .expect("snapshot restores");
    campaign
        .runner()
        .resume_from(ckpt)
        .streaming(&mut resumed_engine)
        .run()
        .expect("checkpoint resumes");
    assert_eq!(
        serde_json::to_string(&engine.snapshot()),
        serde_json::to_string(&resumed_engine.snapshot())
    );
    println!(
        "resume: engine restored at checkpoint 1/{} and caught up — snapshots byte-identical",
        result.checkpoints.len()
    );
}
