//! Shared helpers for the example binaries.

#![forbid(unsafe_code)]

/// Parses `--seed N` / `--days N`-style flags from `std::env::args`,
/// returning the value after `name` when present.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a string-valued flag.
pub fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_without_flags() {
        assert_eq!(arg_u64("--definitely-not-passed", 7), 7);
        assert_eq!(arg_str("--nope", "x"), "x");
    }
}
