//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! forward compatibility, but nothing in the dependency-free build
//! actually serializes through serde's data model (structured output
//! goes through `tsdb::line` and the hand-rolled JSON in `serde_json`).
//! This stand-in keeps the derive attributes compiling: the traits are
//! markers and the derive macros (re-exported from `serde_derive`)
//! expand to nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
