//! No-op derive macros backing the offline `serde` stand-in.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` must parse and
//! expand for the workspace to compile, but no code ever bounds on the
//! serde traits, so the expansion can be empty. (Emitting nothing — as
//! opposed to emitting marker-trait impls — sidesteps generics, lifetime
//! and attribute handling entirely.)

use proc_macro::TokenStream;

/// Accepts and discards a `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
