//! Offline stand-in for `criterion`.
//!
//! Provides the benchmark-definition surface the workspace uses
//! (`criterion_group!` / `criterion_main!` / `Criterion` /
//! `benchmark_group` / `bench_function` / `Bencher::iter`) with a plain
//! wall-clock measurement loop: a short warm-up, then `sample_size`
//! timed samples whose min / median / mean are printed per benchmark.
//!
//! Command-line behaviour: a positional argument filters benchmarks by
//! substring, `--test` (what `cargo test --benches` passes) runs each
//! benchmark body exactly once without timing, and other criterion
//! flags are accepted and ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing callback target.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
    sample_size: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Run the body once, no timing (`--test`).
    Smoke,
    /// Time it.
    Measure,
}

impl Bencher {
    /// Calls `body` repeatedly and records timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.mode == Mode::Smoke {
            black_box(body());
            return;
        }
        // Warm-up: run until ~100 ms or 3 iterations, whichever is later,
        // and estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(100) {
            black_box(body());
            warmup_iters += 1;
            if warmup_iters >= 3 && warmup_start.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters as u32;
        // Aim for ~10 ms per sample, at least 1 iteration.
        let iters_per_sample =
            (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters_per_sample = iters_per_sample.clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(body());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    mode: Mode,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut mode = Mode::Measure;
        let mut skip_next = false;
        for arg in std::env::args().skip(1) {
            if skip_next {
                skip_next = false;
                continue;
            }
            match arg.as_str() {
                "--test" => mode = Mode::Smoke,
                "--bench" => {}
                // Flags with a value we accept and ignore.
                "--sample-size" | "--warm-up-time" | "--measurement-time" | "--save-baseline"
                | "--baseline" | "--load-baseline" | "--output-format" => skip_next = true,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self {
            filter,
            mode,
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id.to_string(), sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: self.mode,
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        match self.mode {
            Mode::Smoke => println!("{id}: ok (smoke)"),
            Mode::Measure => {
                if b.samples.is_empty() {
                    println!("{id}: no samples");
                    return;
                }
                b.samples.sort_unstable();
                let min = b.samples[0];
                let median = b.samples[b.samples.len() / 2];
                let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
                println!(
                    "{id:<50} min {:>12?}  median {:>12?}  mean {:>12?}",
                    min, median, mean
                );
            }
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(full, sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, each `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion {
            filter: None,
            mode: Mode::Smoke,
            default_sample_size: 30,
        };
        let mut runs = 0;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            mode: Mode::Smoke,
            default_sample_size: 30,
        };
        let mut runs = 0;
        c.bench_function("other", |b| b.iter(|| runs += 1));
        c.bench_function("does-match-me-yes", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion {
            filter: Some("grp/inner".into()),
            mode: Mode::Smoke,
            default_sample_size: 30,
        };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(10);
            g.bench_function("inner", |b| b.iter(|| runs += 1));
            g.bench_function("outer", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut c = Criterion {
            filter: None,
            mode: Mode::Measure,
            default_sample_size: 10,
        };
        let mut total = 0u64;
        c.bench_function("fast", |b| b.iter(|| total = total.wrapping_add(1)));
        assert!(total > 10);
    }
}
