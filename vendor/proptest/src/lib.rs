//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use — the [`proptest!`] macro, [`Strategy`] over numeric ranges,
//! `prop::collection::vec`, regex-literal string strategies, and the
//! `prop_assert*` macros — on top of a deterministic RNG. Differences
//! from upstream, deliberately accepted:
//!
//! * cases are generated from a seed derived from the test name, so runs
//!   are fully reproducible (no OS entropy, no persistence files);
//! * no shrinking — the failure report prints the exact inputs instead;
//! * string strategies support the character-class subset of regex the
//!   tests use (`[...]` classes with `{m,n}` repetition), not full regex.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A property-test failure raised by `prop_assert!`/`prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: String) -> Self {
        Self(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for case `case` of the property named `name` — stable across
    /// runs and machines.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String strategies: a `&str` literal is interpreted as the regex subset
/// `(<class or literal char>{m,n}?)*` where a class is `[...]` with
/// ranges and literal characters.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.random_range(atom.min..=atom.max);
            for _ in 0..n {
                let i = rng.random_range(0..atom.chars.len());
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for c in chars.by_ref() {
                    match c {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range like a-z; '-' before ']' handled by
                            // the next iteration pushing it literally.
                            prev = Some('\u{0}'); // sentinel: range pending
                        }
                        c => {
                            if prev == Some('\u{0}') {
                                // complete a range: last pushed..=c
                                let lo = *set.last().expect("range start");
                                for v in (lo as u32 + 1)..=(c as u32) {
                                    if let Some(ch) = char::from_u32(v) {
                                        set.push(ch);
                                    }
                                }
                                prev = None;
                            } else {
                                set.push(c);
                                prev = Some(c);
                            }
                        }
                    }
                }
                if prev == Some('\u{0}') {
                    set.push('-'); // trailing '-' is literal
                }
                set
            }
            '\\' => vec![chars.next().expect("escaped char")],
            c => vec![c],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("quantifier lower bound"),
                    hi.parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = spec.parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        atoms.push(PatternAtom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// `prop::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy {
            element,
            min: size.start,
            max_exclusive: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Raises a property failure unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Raises a property failure unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Raises a property failure unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Declares deterministic property tests.
///
/// Accepts the upstream surface used in this workspace: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case as u64);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // Captured up front: the body may consume the inputs.
                    let mut inputs = ::std::string::String::new();
                    $(inputs.push_str(&format!("\n  {} = {:?}", stringify!($arg), &$arg));)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed on case {}/{}: {}\ninputs:{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3u64..10), &mut rng);
            assert!((3..10).contains(&x));
            let f = Strategy::sample(&(0.0..=1.0f64), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_case("vecs", 1);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u8..3, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 3));
        }
    }

    #[test]
    fn string_strategy_matches_class_subset() {
        let mut rng = TestRng::for_case("strings", 2);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-c][0-9_.-]{2,4}", &mut rng);
            let chars: Vec<char> = s.chars().collect();
            assert!((3..=5).contains(&chars.len()), "{s:?}");
            assert!(('a'..='c').contains(&chars[0]));
            for &c in &chars[1..] {
                assert!(
                    c.is_ascii_digit() || c == '_' || c == '.' || c == '-',
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = Strategy::sample(
            &prop::collection::vec(0.0..1.0f64, 5..6),
            &mut TestRng::for_case("det", 7),
        );
        let b = Strategy::sample(
            &prop::collection::vec(0.0..1.0f64, 5..6),
            &mut TestRng::for_case("det", 7),
        );
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, v in prop::collection::vec(0i32..10, 1..20)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
