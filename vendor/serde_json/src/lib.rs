//! Offline stand-in for `serde_json`: a self-contained JSON document
//! model with a strict parser and a deterministic writer.
//!
//! Unlike the `serde` stand-in (pure markers), this crate is fully
//! functional — `faultsim` loads fault profiles and round-trips campaign
//! checkpoints through [`Value`]. Object keys are kept in a `BTreeMap`,
//! so serialization is canonical: the same document always produces the
//! same bytes, which the checkpoint/resume machinery relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// The type object keys map to.
pub type Map = BTreeMap<String, Value>;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like permissive parsers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with canonically ordered keys.
    Object(Map),
}

impl Value {
    /// Member lookup on objects; `None` for every other variant.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

/// A parse failure, with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Serializes compactly (no whitespace), with canonical key order.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, None, 0, &mut out);
    out
}

/// Serializes with two-space indentation, with canonical key order.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, Some(2), 0, &mut out);
    out
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), indent, depth, out, '[', ']', |item, out| {
                write_value(item, indent, depth + 1, out)
            })
        }
        Value::Object(members) => write_seq(
            members.iter(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(k, item), out| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: impl FnMut(I::Item, &mut String),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(item, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        // Shortest roundtrip representation rustc offers.
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired; map to U+FFFD like
                            // lossy decoders.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole contiguous run of unescaped
                    // characters in one slice. '"' and '\\' are ASCII,
                    // so the byte scan cannot split a multi-byte UTF-8
                    // sequence, and validating once per run (instead of
                    // re-validating the remaining input per character)
                    // keeps parsing linear in document size.
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let text = r#"{"b":[1,2.5,-3],"a":{"x":null,"y":true},"s":"hi\n\"there\""}"#;
        let v = from_str(text).unwrap();
        let emitted = to_string(&v);
        assert_eq!(from_str(&emitted).unwrap(), v);
        // Canonical order: keys sorted.
        assert!(emitted.find("\"a\"").unwrap() < emitted.find("\"b\"").unwrap());
    }

    #[test]
    fn accessors() {
        let v = from_str(r#"{"rate":0.01,"n":42,"name":"light","on":true}"#).unwrap();
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(0.01));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("name").unwrap().as_str(), Some("light"));
        assert_eq!(v.get("on").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = from_str(r#"{"a":[1,{"b":2}],"c":"d"}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_stay_integer_shaped() {
        assert_eq!(to_string(&Value::Number(42.0)), "42");
        assert_eq!(to_string(&Value::Number(0.5)), "0.5");
        assert_eq!(to_string(&Value::Number(-7.0)), "-7");
    }

    #[test]
    fn unicode_escapes() {
        let v = from_str(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
