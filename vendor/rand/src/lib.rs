//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` 0.9 it actually uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ with the SplitMix64 seeding used
//!   by `SeedableRng::seed_from_u64`, matching upstream's 64-bit
//!   `SmallRng` algorithm choice;
//! * [`Rng::random`] for `f64`/`bool` and the unsigned integer types;
//! * [`Rng::random_range`] over half-open and inclusive integer ranges
//!   (Lemire rejection sampling, no modulo bias) and `f64` ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is deterministic in the seed; no OS entropy is ever
//! consulted even though the `os_rng` feature name is accepted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core trait of random number generators: a source of `u64` words.
pub trait RngCore {
    /// Returns the next random `u64` from the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` from the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG's "standard"
/// distribution (what `rng.random::<T>()` produces).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform [0, 1), identical construction to
        // upstream's `Standard` distribution for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges a [`Rng::random_range`] call can sample from.
///
/// A single blanket impl per range shape (mirroring upstream) keeps type
/// inference working for integer literals: `4 + rng.random_range(0..5)`
/// must infer the range's element type from the surrounding expression.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample_standard(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f32::sample_standard(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f32::sample_standard(rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`[0, 1)` for floats, uniform over all values for integers).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, deterministic in the seed.
pub trait SeedableRng: Sized {
    /// Expands a `u64` seed into full RNG state (SplitMix64, as upstream).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG: xoshiro256++ (the algorithm
    /// upstream `rand` 0.9 uses for `SmallRng` on 64-bit targets).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut st);
            }
            // xoshiro forbids the all-zero state; SplitMix64 never
            // produces it from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(
            SmallRng::seed_from_u64(7).random::<u64>(),
            c.random::<u64>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation_and_seed_stable() {
        let orig: Vec<u32> = (0..50).collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        a.shuffle(&mut SmallRng::seed_from_u64(9));
        b.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(a, orig);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn choose_covers_all_elements() {
        let items = [1u8, 2, 3];
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
