//! The response cache: rendered query responses keyed by
//! `(seed, config_hash, generation, canonical query)`.
//!
//! Because snapshot generations are content-addressed per database
//! (see [`tsdb::Db::snapshot`]) and the key pins the campaign identity
//! (`seed`, `config_hash`), a cached entry never goes stale: the same
//! key can only ever map to the same bytes. Eviction is therefore pure
//! capacity management, not invalidation — FIFO is sufficient and
//! keeps the eviction order deterministic (insertion order, never
//! access recency, which would depend on request interleaving).
//!
//! The cache stores the *rendered* response string, so a hit returns
//! exactly the bytes the original miss produced — byte-identity
//! between hit and miss is structural, not a property to test into
//! existence.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and were then populated by the caller).
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// A bounded FIFO cache of rendered responses.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    map: BTreeMap<String, String>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl QueryCache {
    /// A cache holding at most `capacity` rendered responses. A zero
    /// capacity disables caching (every lookup misses, nothing is
    /// stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks `key` up, counting a hit or miss.
    pub fn get(&mut self, key: &str) -> Option<String> {
        match self.map.get(key) {
            Some(v) => {
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a rendered response, evicting the oldest entries when
    /// over capacity. Re-inserting an existing key refreshes the value
    /// without duplicating its slot in the eviction order.
    pub fn insert(&mut self, key: String, value: String) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
        }
        while self.map.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if self.map.remove(&oldest).is_some() {
                self.evictions += 1;
            }
        }
    }

    /// Behaviour counters plus current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_stored_bytes() {
        let mut c = QueryCache::new(4);
        assert_eq!(c.get("k"), None);
        c.insert("k".into(), "v".into());
        assert_eq!(c.get("k"), Some("v".to_string()));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                entries: 1
            }
        );
    }

    #[test]
    fn fifo_eviction_is_insertion_ordered() {
        let mut c = QueryCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        c.insert("c".into(), "3".into());
        // "a" was inserted first, so it goes first.
        assert_eq!(c.get("a"), None);
        assert_eq!(c.get("b"), Some("2".to_string()));
        assert_eq!(c.get("c"), Some("3".to_string()));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_without_double_slot() {
        let mut c = QueryCache::new(2);
        c.insert("a".into(), "1".into());
        c.insert("a".into(), "1b".into());
        c.insert("b".into(), "2".into());
        // Still within capacity: the re-insert must not have consumed
        // a second slot for "a".
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get("a"), Some("1b".to_string()));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = QueryCache::new(0);
        c.insert("a".into(), "1".into());
        assert_eq!(c.get("a"), None);
        assert_eq!(c.stats().entries, 0);
    }
}
