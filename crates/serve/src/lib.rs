//! # clasp-serve — a concurrent query/ingest service over tsdb
//!
//! CLASP's pipeline "index\[es\] the processed results into InfluxDB"
//! (§3.3) — a *service* that many probes write into and many dashboards
//! read out of concurrently. This crate promotes the in-process
//! [`tsdb`] library to that role while keeping the repo's determinism
//! contract: the bytes a client reads never depend on how requests
//! interleaved.
//!
//! Three mechanisms make that hold (see DESIGN.md §13):
//!
//! 1. **Sequenced ingest** — each client stamps its batches with a
//!    per-client sequence number. Batches are staged on arrival and
//!    applied only at [`Server::publish`] barriers, in canonical
//!    `(client, seq)` order, so the database contents after a publish
//!    are a pure function of *what* was sent, never of *when*.
//! 2. **Snapshot epochs** — publish swaps an immutable
//!    [`Snapshot`](tsdb::Snapshot); readers query the last published
//!    generation without touching the writer's lock.
//! 3. **Canonical responses** — responses are rendered through the
//!    vendored canonical-JSON writer, and the response cache stores the
//!    rendered bytes, so a cache hit is byte-identical to the miss that
//!    populated it, and both are byte-identical to an in-process
//!    [`Query::run_snapshot`](tsdb::Query::run_snapshot) on the same
//!    generation.
//!
//! The wire format is line-delimited JSON ([`proto`]); [`wire`] serves
//! it over any `BufRead`/`Write` pair (TCP included) and [`client`]
//! speaks it from the other side, over a socket or straight into an
//! in-process [`Server`].
//!
//! Everything is wall-clock-free: no timeouts, no timestamps, no
//! `std::time` — ordering comes from sequence numbers and publish
//! barriers alone, which is what makes serve traffic replayable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod congestion;
pub mod proto;
pub mod server;
pub mod wire;

pub use cache::{CacheStats, QueryCache};
pub use client::{Client, LocalTransport, TcpTransport, Transport};
pub use congestion::{CongestionReport, CongestionSpec, SeriesLabel};
pub use proto::{QuerySpec, Request};
pub use server::{Server, ServerConfig};
