//! The serve wire protocol: line-delimited canonical JSON.
//!
//! Every request is one JSON object on one line with an `"op"` member;
//! every response is one JSON object on one line with an `"ok"` member
//! (`{"ok":false,"error":"..."}` on failure). Points travel as tsdb
//! line-protocol strings — the durable format the pipeline already
//! speaks — and queries travel as a canonical object form whose
//! rendered bytes double as the response-cache key.
//!
//! Rendering always goes through the vendored canonical-JSON writer
//! (sorted object keys, shortest-roundtrip numbers), so any two
//! encodings of the same logical request or response are the same
//! bytes. That is the foundation of both the response cache and the
//! serve-vs-in-process equivalence guarantee.

use crate::congestion::CongestionSpec;
use serde_json::{Map, Value};
use tsdb::{Aggregate, Point, Query, SeriesResult};

/// A query in wire form. Mirrors the [`tsdb::Query`] builder; convert
/// with [`QuerySpec::to_query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Measurement to select from.
    pub measurement: String,
    /// Field to aggregate.
    pub field: String,
    /// Required `tag == value` filters.
    pub filters: Vec<(String, String)>,
    /// Inclusive range start (0 = open).
    pub start: u64,
    /// Exclusive range end (`u64::MAX` = open).
    pub end: u64,
    /// Group-by window in seconds, if any.
    pub window: Option<u64>,
    /// Reduction to apply.
    pub aggregate: Aggregate,
}

impl QuerySpec {
    /// Selects `field` from `measurement` with [`Aggregate::Last`] over
    /// the full range — the same defaults as [`Query::select`].
    pub fn select(measurement: impl Into<String>, field: impl Into<String>) -> Self {
        Self {
            measurement: measurement.into(),
            field: field.into(),
            filters: Vec::new(),
            start: 0,
            end: u64::MAX,
            window: None,
            aggregate: Aggregate::Last,
        }
    }

    /// Requires `tag == value` on matching series.
    pub fn r#where(mut self, tag: impl Into<String>, value: impl Into<String>) -> Self {
        self.filters.push((tag.into(), value.into()));
        self
    }

    /// Restricts to samples with `start <= time < end`.
    pub fn time_range(mut self, start: u64, end: u64) -> Self {
        self.start = start;
        self.end = end;
        self
    }

    /// Groups samples into fixed windows of `seconds`.
    pub fn group_by_time(mut self, seconds: u64) -> Self {
        self.window = Some(seconds);
        self
    }

    /// Sets the reduction.
    pub fn aggregate(mut self, agg: Aggregate) -> Self {
        self.aggregate = agg;
        self
    }

    /// Builds the equivalent executable [`Query`].
    pub fn to_query(&self) -> Query {
        let mut q = Query::select(self.measurement.clone(), self.field.clone());
        for (k, v) in &self.filters {
            q = q.r#where(k.clone(), v.clone());
        }
        q = q.time_range(self.start, self.end);
        if let Some(w) = self.window {
            q = q.group_by_time(w);
        }
        q.aggregate(self.aggregate)
    }

    /// The canonical object form. Filters become an object (sorted
    /// keys), defaults are omitted, and the aggregate uses the compact
    /// string form — so two specs with the same meaning render to the
    /// same bytes.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("measurement".into(), self.measurement.as_str().into());
        m.insert("field".into(), self.field.as_str().into());
        if !self.filters.is_empty() {
            let mut w = Map::new();
            for (k, v) in &self.filters {
                w.insert(k.clone(), v.as_str().into());
            }
            m.insert("where".into(), Value::Object(w));
        }
        if self.start != 0 {
            m.insert("start".into(), self.start.into());
        }
        if self.end != u64::MAX {
            m.insert("end".into(), self.end.into());
        }
        if let Some(w) = self.window {
            m.insert("window".into(), w.into());
        }
        m.insert("aggregate".into(), encode_aggregate(self.aggregate).into());
        Value::Object(m)
    }

    /// The canonical bytes of [`QuerySpec::to_value`]; used verbatim in
    /// the response-cache key.
    pub fn canonical(&self) -> String {
        serde_json::to_string(&self.to_value())
    }

    /// Parses the object form produced by [`QuerySpec::to_value`].
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let measurement = str_member(v, "measurement")?;
        let field = str_member(v, "field")?;
        let mut filters = Vec::new();
        if let Some(w) = v.get("where") {
            let obj = w.as_object().ok_or("\"where\" must be an object")?;
            for (k, val) in obj {
                let s = val.as_str().ok_or("\"where\" values must be strings")?;
                filters.push((k.clone(), s.to_string()));
            }
        }
        let start = opt_u64(v, "start")?.unwrap_or(0);
        let end = opt_u64(v, "end")?.unwrap_or(u64::MAX);
        if start > end {
            return Err("inverted time range".into());
        }
        let window = opt_u64(v, "window")?;
        if window == Some(0) {
            return Err("zero window".into());
        }
        let aggregate = parse_aggregate(&str_member(v, "aggregate")?)?;
        Ok(Self {
            measurement,
            field,
            filters,
            start,
            end,
            window,
            aggregate,
        })
    }
}

/// Compact aggregate form: `min`, `max`, `mean`, `count`, `sum`,
/// `last`, or `p:<rank>` for percentiles.
pub fn encode_aggregate(agg: Aggregate) -> String {
    match agg {
        Aggregate::Min => "min".into(),
        Aggregate::Max => "max".into(),
        Aggregate::Mean => "mean".into(),
        Aggregate::Count => "count".into(),
        Aggregate::Sum => "sum".into(),
        Aggregate::Last => "last".into(),
        Aggregate::Percentile(p) => format!("p:{p}"),
    }
}

/// Parses the form produced by [`encode_aggregate`].
pub fn parse_aggregate(s: &str) -> Result<Aggregate, String> {
    match s {
        "min" => Ok(Aggregate::Min),
        "max" => Ok(Aggregate::Max),
        "mean" => Ok(Aggregate::Mean),
        "count" => Ok(Aggregate::Count),
        "sum" => Ok(Aggregate::Sum),
        "last" => Ok(Aggregate::Last),
        _ => match s.strip_prefix("p:") {
            Some(rank) => {
                let p: f64 = rank
                    .parse()
                    .map_err(|_| format!("bad percentile rank {rank:?}"))?;
                if p.is_nan() {
                    return Err("NaN percentile rank".into());
                }
                Ok(Aggregate::Percentile(p))
            }
            None => Err(format!("unknown aggregate {s:?}")),
        },
    }
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Stage a sequenced batch of points for the next publish.
    Ingest {
        /// Stable client identity (part of the canonical apply order).
        client: String,
        /// Per-client sequence number, starting at 0.
        seq: u64,
        /// Points in tsdb line-protocol form.
        points: Vec<Point>,
    },
    /// Apply staged batches in canonical order and publish a snapshot.
    Publish,
    /// Run a query against the last published snapshot.
    Query(QuerySpec),
    /// Run congestion detection against the last published snapshot.
    Congestion(CongestionSpec),
    /// Open a bounded tail subscription.
    Subscribe {
        /// Buffer capacity in points.
        capacity: usize,
    },
    /// Drain up to `max` buffered points from a subscription.
    Poll {
        /// Subscription id from [`Request::Subscribe`]'s response.
        tail: u64,
        /// Maximum points to return.
        max: usize,
    },
    /// Close a subscription.
    Unsubscribe {
        /// Subscription id.
        tail: u64,
    },
    /// Server counters (ingest, cache, tails, generation).
    Stats,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = serde_json::from_str(line).map_err(|e| e.to_string())?;
        let op = str_member(&v, "op")?;
        match op.as_str() {
            "ping" => Ok(Request::Ping),
            "ingest" => {
                let client = str_member(&v, "client")?;
                if client.is_empty() {
                    return Err("empty client id".into());
                }
                let seq = opt_u64(&v, "seq")?.ok_or("ingest requires \"seq\"")?;
                let lines = v
                    .get("points")
                    .and_then(|p| p.as_array())
                    .ok_or("ingest requires a \"points\" array")?;
                let mut points = Vec::with_capacity(lines.len());
                for l in lines {
                    let s = l.as_str().ok_or("points must be line-protocol strings")?;
                    points.push(tsdb::line::decode(s).map_err(|e| e.to_string())?);
                }
                Ok(Request::Ingest {
                    client,
                    seq,
                    points,
                })
            }
            "publish" => Ok(Request::Publish),
            "query" => {
                let spec = v.get("query").ok_or("query requires a \"query\" object")?;
                Ok(Request::Query(QuerySpec::from_value(spec)?))
            }
            // The congestion spec *is* the request object (its
            // canonical form carries the "op" member).
            "congestion" => Ok(Request::Congestion(CongestionSpec::from_value(&v)?)),
            "subscribe" => {
                let capacity = opt_u64(&v, "capacity")?.ok_or("subscribe requires \"capacity\"")?;
                if capacity == 0 {
                    return Err("capacity must be positive".into());
                }
                Ok(Request::Subscribe {
                    capacity: capacity as usize,
                })
            }
            "poll" => {
                let tail = opt_u64(&v, "tail")?.ok_or("poll requires \"tail\"")?;
                let max = opt_u64(&v, "max")?.unwrap_or(u64::MAX);
                Ok(Request::Poll {
                    tail,
                    max: usize::try_from(max).unwrap_or(usize::MAX),
                })
            }
            "unsubscribe" => {
                let tail = opt_u64(&v, "tail")?.ok_or("unsubscribe requires \"tail\"")?;
                Ok(Request::Unsubscribe { tail })
            }
            "stats" => Ok(Request::Stats),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Renders the request as one canonical wire line (no newline).
    pub fn encode(&self) -> String {
        let mut m = Map::new();
        match self {
            Request::Ping => {
                m.insert("op".into(), "ping".into());
            }
            Request::Ingest {
                client,
                seq,
                points,
            } => {
                m.insert("op".into(), "ingest".into());
                m.insert("client".into(), client.as_str().into());
                m.insert("seq".into(), (*seq).into());
                m.insert(
                    "points".into(),
                    Value::Array(
                        points
                            .iter()
                            .map(|p| tsdb::line::encode(p).into())
                            .collect(),
                    ),
                );
            }
            Request::Publish => {
                m.insert("op".into(), "publish".into());
            }
            Request::Query(spec) => {
                m.insert("op".into(), "query".into());
                m.insert("query".into(), spec.to_value());
            }
            Request::Congestion(spec) => {
                let Value::Object(obj) = spec.to_value() else {
                    unreachable!("CongestionSpec::to_value returns an object")
                };
                m = obj;
            }
            Request::Subscribe { capacity } => {
                m.insert("op".into(), "subscribe".into());
                m.insert("capacity".into(), (*capacity).into());
            }
            Request::Poll { tail, max } => {
                m.insert("op".into(), "poll".into());
                m.insert("tail".into(), (*tail).into());
                if *max != usize::MAX {
                    m.insert("max".into(), (*max).into());
                }
            }
            Request::Unsubscribe { tail } => {
                m.insert("op".into(), "unsubscribe".into());
                m.insert("tail".into(), (*tail).into());
            }
            Request::Stats => {
                m.insert("op".into(), "stats".into());
            }
        }
        serde_json::to_string(&Value::Object(m))
    }
}

/// Renders a successful response with the given extra members.
pub fn ok_response(extra: Map) -> String {
    let mut m = extra;
    m.insert("ok".into(), true.into());
    serde_json::to_string(&Value::Object(m))
}

/// Renders an error response.
pub fn err_response(message: &str) -> String {
    let mut m = Map::new();
    m.insert("ok".into(), false.into());
    m.insert("error".into(), message.into());
    serde_json::to_string(&Value::Object(m))
}

/// Canonical JSON form of query results at a given snapshot
/// generation: `{"generation":G,"results":[{"series":key,
/// "rows":[[t,v],..]},..]}`.
///
/// This is the *only* encoder for result sets — serve responses and
/// in-process comparisons both render through it, so byte-equality
/// between the two is a matter of feeding it equal inputs.
pub fn results_to_value(generation: u64, results: &[SeriesResult]) -> Value {
    let mut m = Map::new();
    m.insert("generation".into(), generation.into());
    m.insert(
        "results".into(),
        Value::Array(
            results
                .iter()
                .map(|r| {
                    let mut s = Map::new();
                    s.insert("series".into(), r.series_key.as_str().into());
                    s.insert(
                        "rows".into(),
                        Value::Array(
                            r.rows
                                .iter()
                                .map(|row| Value::Array(vec![row.time.into(), row.value.into()]))
                                .collect(),
                        ),
                    );
                    Value::Object(s)
                })
                .collect(),
        ),
    );
    Value::Object(m)
}

fn str_member(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string member {key:?}"))
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("member {key:?} must be a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_ops() {
        let p = Point::new("m", 5).tag("s", "a").field("f", 1.5);
        let reqs = [
            Request::Ping,
            Request::Ingest {
                client: "c1".into(),
                seq: 3,
                points: vec![p],
            },
            Request::Publish,
            Request::Query(
                QuerySpec::select("m", "f")
                    .r#where("s", "a")
                    .time_range(10, 99)
                    .group_by_time(30)
                    .aggregate(Aggregate::Percentile(95.0)),
            ),
            Request::Congestion(
                CongestionSpec::analyze("speedtest", "download")
                    .r#where("method", "topo")
                    .threshold(0.6)
                    .utc_offset_hours(-8),
            ),
            Request::Subscribe { capacity: 64 },
            Request::Poll { tail: 2, max: 10 },
            Request::Unsubscribe { tail: 2 },
            Request::Stats,
        ];
        for r in reqs {
            let line = r.encode();
            assert_eq!(Request::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn canonical_spec_bytes_are_order_independent() {
        // Filter insertion order must not leak into the cache key.
        let a = QuerySpec::select("m", "f")
            .r#where("x", "1")
            .r#where("a", "2");
        let b = QuerySpec::select("m", "f")
            .r#where("a", "2")
            .r#where("x", "1");
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn aggregate_forms_roundtrip() {
        for agg in [
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Mean,
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Last,
            Aggregate::Percentile(95.0),
            Aggregate::Percentile(0.5),
        ] {
            assert_eq!(parse_aggregate(&encode_aggregate(agg)).unwrap(), agg);
        }
        assert!(parse_aggregate("p:NaN").is_err());
        assert!(parse_aggregate("median").is_err());
    }

    #[test]
    fn spec_to_query_matches_direct_builder() {
        let mut db = tsdb::Db::new();
        for t in 0..10u64 {
            db.insert(Point::new("m", t).tag("s", "a").field("f", t as f64));
        }
        let spec = QuerySpec::select("m", "f")
            .r#where("s", "a")
            .time_range(2, 8)
            .group_by_time(4)
            .aggregate(Aggregate::Mean);
        let direct = Query::select("m", "f")
            .r#where("s", "a")
            .time_range(2, 8)
            .group_by_time(4)
            .aggregate(Aggregate::Mean)
            .run(&mut db);
        let via_spec = spec.to_query().run(&mut db);
        assert_eq!(direct.len(), via_spec.len());
        for (d, s) in direct.iter().zip(&via_spec) {
            assert_eq!(d.series_key, s.series_key);
            assert_eq!(d.rows, s.rows);
        }
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "{\"op\":\"nope\"}",
            "{\"op\":\"ingest\",\"client\":\"\",\"seq\":0,\"points\":[]}",
            "{\"op\":\"ingest\",\"client\":\"c\",\"points\":[]}",
            "{\"op\":\"ingest\",\"client\":\"c\",\"seq\":0,\"points\":[\"garbage\"]}",
            "{\"op\":\"query\"}",
            "{\"op\":\"query\",\"query\":{\"measurement\":\"m\",\"field\":\"f\",\"aggregate\":\"zzz\"}}",
            "{\"op\":\"query\",\"query\":{\"measurement\":\"m\",\"field\":\"f\",\"start\":9,\"end\":1,\"aggregate\":\"last\"}}",
            "{\"op\":\"query\",\"query\":{\"measurement\":\"m\",\"field\":\"f\",\"window\":0,\"aggregate\":\"last\"}}",
            "{\"op\":\"subscribe\",\"capacity\":0}",
            "{\"op\":\"poll\"}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn responses_are_canonical_json() {
        let r = ok_response(Map::new());
        assert_eq!(r, "{\"ok\":true}");
        let e = err_response("boom");
        assert_eq!(e, "{\"error\":\"boom\",\"ok\":false}");
    }
}
