//! The `congestion` query verb: §3.3 detection served from a snapshot.
//!
//! A dashboard asking "which servers look congested right now?" should
//! not have to drain the raw point stream and re-implement the paper's
//! detector client-side. This module runs the detection *inside* the
//! server, over the last published generation, and renders the labels
//! through the canonical encoder — so congestion responses participate
//! in the same rendered-response cache, with the same byte-equality
//! guarantee, as plain queries.
//!
//! The math mirrors `clasp-core`'s `CongestionAnalysis` exactly, over
//! the hourly mean series of one field:
//!
//! * per series and server-local day `d`:
//!   `V(s,d) = (Tmax − Tmin) / Tmax`, with days whose `Tmax ≤ 0`
//!   skipped entirely;
//! * per hourly sample: `V_H(s,t) = (Tmax(s,d) − T(s,t)) / Tmax(s,d)`;
//!   hours with `V_H > h` are congestion events;
//! * a series is **congested** when more than `min_day_fraction` of its
//!   days contain at least one event (the paper's Fig. 8 criterion).
//!
//! Server-local time is a fixed UTC offset supplied by the client
//! (`utc_offset_hours`), because the serve layer deliberately knows
//! nothing about the world model — callers that want per-server local
//! days filter to one server per request and pass its offset, exactly
//! as the equivalence tests do.

use serde_json::{Map, Value};
use std::collections::BTreeMap;
use tsdb::{Aggregate, Query, Snapshot};

/// Detection threshold the paper lands on (H = 0.5).
pub const DEFAULT_H: f64 = 0.5;
/// Fig. 8's "more than 10 % of days" congested-server criterion.
pub const DEFAULT_MIN_DAY_FRACTION: f64 = 0.1;
/// Hourly analysis window, seconds.
const HOUR: u64 = 3600;
/// Seconds per local day.
const DAY: i64 = 86_400;

/// A congestion-detection request in wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionSpec {
    /// Measurement holding the throughput series.
    pub measurement: String,
    /// Field to analyze (usually `"download"`).
    pub field: String,
    /// Required `tag == value` filters.
    pub filters: Vec<(String, String)>,
    /// Event threshold `H` on `V_H(s,t)`.
    pub h: f64,
    /// Congested-series criterion: fraction of days with ≥ 1 event.
    pub min_day_fraction: f64,
    /// Fixed UTC offset, hours, for local-day/-hour reckoning.
    pub utc_offset_hours: i64,
}

impl CongestionSpec {
    /// Analyzes `field` of `measurement` with the paper's defaults
    /// (`H = 0.5`, 10 % of days, UTC local time).
    pub fn analyze(measurement: impl Into<String>, field: impl Into<String>) -> Self {
        Self {
            measurement: measurement.into(),
            field: field.into(),
            filters: Vec::new(),
            h: DEFAULT_H,
            min_day_fraction: DEFAULT_MIN_DAY_FRACTION,
            utc_offset_hours: 0,
        }
    }

    /// Requires `tag == value` on matching series.
    pub fn r#where(mut self, tag: impl Into<String>, value: impl Into<String>) -> Self {
        self.filters.push((tag.into(), value.into()));
        self
    }

    /// Sets the event threshold `H`.
    pub fn threshold(mut self, h: f64) -> Self {
        self.h = h;
        self
    }

    /// Sets the congested-series day-fraction criterion.
    pub fn min_day_fraction(mut self, f: f64) -> Self {
        self.min_day_fraction = f;
        self
    }

    /// Sets the server-local UTC offset in hours.
    pub fn utc_offset_hours(mut self, hours: i64) -> Self {
        self.utc_offset_hours = hours;
        self
    }

    /// The canonical object form. Includes `"op":"congestion"` so the
    /// canonical bytes can never collide with a
    /// [`QuerySpec`](crate::proto::QuerySpec) in the shared
    /// response-cache key space; defaults are omitted so equal meanings
    /// render equal bytes.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("op".into(), "congestion".into());
        m.insert("measurement".into(), self.measurement.as_str().into());
        m.insert("field".into(), self.field.as_str().into());
        if !self.filters.is_empty() {
            let mut w = Map::new();
            for (k, v) in &self.filters {
                w.insert(k.clone(), v.as_str().into());
            }
            m.insert("where".into(), Value::Object(w));
        }
        if self.h != DEFAULT_H {
            m.insert("h".into(), self.h.into());
        }
        if self.min_day_fraction != DEFAULT_MIN_DAY_FRACTION {
            m.insert("min_day_fraction".into(), self.min_day_fraction.into());
        }
        if self.utc_offset_hours != 0 {
            m.insert(
                "utc_offset_hours".into(),
                (self.utc_offset_hours as f64).into(),
            );
        }
        Value::Object(m)
    }

    /// The canonical bytes of [`CongestionSpec::to_value`]; used
    /// verbatim in the response-cache key.
    pub fn canonical(&self) -> String {
        serde_json::to_string(&self.to_value())
    }

    /// Parses the object form produced by [`CongestionSpec::to_value`].
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let measurement = required_str(v, "measurement")?;
        let field = required_str(v, "field")?;
        let mut filters = Vec::new();
        if let Some(w) = v.get("where") {
            let obj = w.as_object().ok_or("\"where\" must be an object")?;
            for (k, val) in obj {
                let s = val.as_str().ok_or("\"where\" values must be strings")?;
                filters.push((k.clone(), s.to_string()));
            }
        }
        let h = opt_fraction(v, "h")?.unwrap_or(DEFAULT_H);
        let min_day_fraction =
            opt_fraction(v, "min_day_fraction")?.unwrap_or(DEFAULT_MIN_DAY_FRACTION);
        let utc_offset_hours = match v.get("utc_offset_hours") {
            None | Some(Value::Null) => 0,
            Some(x) => {
                let f = x.as_f64().ok_or("\"utc_offset_hours\" must be a number")?;
                if f.fract() != 0.0 || !(-24.0..=24.0).contains(&f) {
                    return Err("\"utc_offset_hours\" must be a whole number in [-24, 24]".into());
                }
                f as i64
            }
        };
        Ok(Self {
            measurement,
            field,
            filters,
            h,
            min_day_fraction,
            utc_offset_hours,
        })
    }

    /// The hourly-mean query the detection runs over.
    fn hourly_query(&self) -> Query {
        let mut q = Query::select(self.measurement.clone(), self.field.clone());
        for (k, v) in &self.filters {
            q = q.r#where(k.clone(), v.clone());
        }
        q.group_by_time(HOUR).aggregate(Aggregate::Mean)
    }

    /// Runs the detection over `snap`. Series come back in the
    /// snapshot's canonical result order.
    pub fn evaluate(&self, snap: &Snapshot) -> CongestionReport {
        let results = self.hourly_query().run_snapshot(snap);
        let mut labels = Vec::with_capacity(results.len());
        let mut hour_events = [0u64; 24];
        let mut hour_trials = [0u64; 24];
        for r in &results {
            // Bucket hourly rows into server-local days.
            let mut by_day: BTreeMap<i64, Vec<(u64, f64)>> = BTreeMap::new();
            for row in &r.rows {
                by_day
                    .entry(self.local_day(row.time))
                    .or_default()
                    .push((row.time, row.value));
            }
            let mut days = 0u32;
            let mut event_days = 0u32;
            let mut events = 0u32;
            let mut samples = 0u32;
            for rows in by_day.values() {
                let t_max = rows.iter().map(|e| e.1).fold(f64::NEG_INFINITY, f64::max);
                if t_max <= 0.0 {
                    // Mirrors the in-process analysis: a day with no
                    // positive throughput carries no signal.
                    continue;
                }
                days += 1;
                let mut had_event = false;
                for &(t, value) in rows {
                    samples += 1;
                    let hh = self.local_hour(t);
                    hour_trials[hh] += 1;
                    if (t_max - value) / t_max > self.h {
                        events += 1;
                        hour_events[hh] += 1;
                        had_event = true;
                    }
                }
                if had_event {
                    event_days += 1;
                }
            }
            let congested =
                days > 0 && f64::from(event_days) / f64::from(days) > self.min_day_fraction;
            labels.push(SeriesLabel {
                series: r.series_key.clone(),
                server: series_tag(&r.series_key, "server").unwrap_or_default(),
                days,
                event_days,
                events,
                samples,
                congested,
            });
        }
        let mut hours = [0.0f64; 24];
        for (i, p) in hours.iter_mut().enumerate() {
            if hour_trials[i] > 0 {
                *p = hour_events[i] as f64 / hour_trials[i] as f64;
            }
        }
        CongestionReport { labels, hours }
    }

    fn local_day(&self, t: u64) -> i64 {
        (t as i64 + self.utc_offset_hours * HOUR as i64).div_euclid(DAY)
    }

    fn local_hour(&self, t: u64) -> usize {
        let secs = (t as i64 + self.utc_offset_hours * HOUR as i64).rem_euclid(DAY);
        (secs / HOUR as i64) as usize
    }
}

/// Per-series congestion verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesLabel {
    /// Canonical series key.
    pub series: String,
    /// `server` tag parsed from the key (empty if untagged).
    pub server: String,
    /// Local days with positive throughput.
    pub days: u32,
    /// Days containing at least one congestion event.
    pub event_days: u32,
    /// Total congestion events (`V_H > h` hours).
    pub events: u32,
    /// Hourly samples analyzed.
    pub samples: u32,
    /// Fig. 8 verdict: `event_days / days > min_day_fraction`.
    pub congested: bool,
}

/// The full detection result for one spec over one snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionReport {
    /// One verdict per matching series, in canonical result order.
    pub labels: Vec<SeriesLabel>,
    /// Pooled hourly congestion probability (events / trials per
    /// server-local hour, Fig. 6 shaped), zero where no trials.
    pub hours: [f64; 24],
}

impl CongestionReport {
    /// Canonical response body:
    /// `{"generation":G,"series":[..],"hours":[..24],"summary":{..}}`.
    pub fn to_value(&self, generation: u64) -> Value {
        let mut m = Map::new();
        m.insert("generation".into(), generation.into());
        m.insert(
            "series".into(),
            Value::Array(
                self.labels
                    .iter()
                    .map(|l| {
                        let mut s = Map::new();
                        s.insert("series".into(), l.series.as_str().into());
                        s.insert("server".into(), l.server.as_str().into());
                        s.insert("days".into(), u64::from(l.days).into());
                        s.insert("event_days".into(), u64::from(l.event_days).into());
                        s.insert("events".into(), u64::from(l.events).into());
                        s.insert("samples".into(), u64::from(l.samples).into());
                        s.insert("congested".into(), l.congested.into());
                        Value::Object(s)
                    })
                    .collect(),
            ),
        );
        m.insert(
            "hours".into(),
            Value::Array(self.hours.iter().map(|&p| p.into()).collect()),
        );
        let mut sm = Map::new();
        sm.insert("series".into(), (self.labels.len() as u64).into());
        sm.insert(
            "congested".into(),
            (self.labels.iter().filter(|l| l.congested).count() as u64).into(),
        );
        sm.insert(
            "events".into(),
            self.labels
                .iter()
                .map(|l| u64::from(l.events))
                .sum::<u64>()
                .into(),
        );
        m.insert("summary".into(), Value::Object(sm));
        Value::Object(m)
    }
}

/// Extracts one tag value from a canonical series key
/// (`measurement,tag=value,...`).
fn series_tag(series_key: &str, tag: &str) -> Option<String> {
    series_key
        .split(',')
        .skip(1)
        .find_map(|kv| kv.strip_prefix(tag).and_then(|r| r.strip_prefix('=')))
        .map(str::to_string)
}

fn required_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string member {key:?}"))
}

fn opt_fraction(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => {
            let f = x
                .as_f64()
                .ok_or_else(|| format!("member {key:?} must be a number"))?;
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(format!("member {key:?} must be a fraction in [0, 1]"));
            }
            Ok(Some(f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::QuerySpec;
    use tsdb::{Db, Point};

    /// A series with a diurnal trough (value halves for `dip_hours`
    /// local hours each day) plus a flat control series.
    fn diurnal_db(days: u64, dip_hours: u64) -> Db {
        let mut db = Db::new();
        for d in 0..days {
            for h in 0..24u64 {
                let t = (d * 24 + h) * 3600;
                let dipped = h >= 20 && h < 20 + dip_hours;
                let v = if dipped { 40.0 } else { 100.0 };
                db.insert(
                    Point::new("speedtest", t)
                        .tag("server", "dipper")
                        .field("download", v),
                );
                db.insert(
                    Point::new("speedtest", t)
                        .tag("server", "steady")
                        .field("download", 100.0),
                );
            }
        }
        db
    }

    #[test]
    fn spec_roundtrips_through_canonical_form() {
        let specs = [
            CongestionSpec::analyze("speedtest", "download"),
            CongestionSpec::analyze("speedtest", "upload")
                .r#where("method", "topo")
                .r#where("region", "us-west1")
                .threshold(0.6)
                .min_day_fraction(0.25)
                .utc_offset_hours(-8),
        ];
        for spec in specs {
            let parsed = CongestionSpec::from_value(&spec.to_value()).unwrap();
            assert_eq!(parsed, spec);
            assert_eq!(parsed.canonical(), spec.canonical());
        }
    }

    #[test]
    fn canonical_bytes_cannot_collide_with_query_spec() {
        // Same measurement/field/filters: the "op" member keeps the
        // shared cache-key space partitioned by verb.
        let c = CongestionSpec::analyze("speedtest", "download").r#where("method", "topo");
        let q = QuerySpec::select("speedtest", "download").r#where("method", "topo");
        assert_ne!(c.canonical(), q.canonical());
        assert!(c.canonical().contains("\"op\":\"congestion\""));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "{\"field\":\"f\"}",
            "{\"measurement\":\"m\",\"field\":\"f\",\"h\":1.5}",
            "{\"measurement\":\"m\",\"field\":\"f\",\"h\":-0.1}",
            "{\"measurement\":\"m\",\"field\":\"f\",\"min_day_fraction\":2}",
            "{\"measurement\":\"m\",\"field\":\"f\",\"utc_offset_hours\":0.5}",
            "{\"measurement\":\"m\",\"field\":\"f\",\"utc_offset_hours\":48}",
            "{\"measurement\":\"m\",\"field\":\"f\",\"where\":[]}",
        ] {
            let v = serde_json::from_str(bad).unwrap();
            assert!(CongestionSpec::from_value(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn diurnal_dip_is_labelled_congested_and_steady_is_not() {
        let mut db = diurnal_db(4, 3);
        let snap = db.snapshot();
        let report = CongestionSpec::analyze("speedtest", "download").evaluate(&snap);
        assert_eq!(report.labels.len(), 2);
        let dipper = &report.labels[0];
        let steady = &report.labels[1];
        assert_eq!(dipper.server, "dipper");
        assert_eq!(steady.server, "steady");
        // (100 - 40) / 100 = 0.6 > H: every dipped hour is an event.
        assert!(dipper.congested);
        assert_eq!(dipper.days, 4);
        assert_eq!(dipper.event_days, 4);
        assert_eq!(dipper.events, 4 * 3);
        assert!(!steady.congested);
        assert_eq!(steady.events, 0);
        // Events pool into exactly the dipped local hours.
        for (h, &p) in report.hours.iter().enumerate() {
            let expect = if (20..23).contains(&h) { 0.5 } else { 0.0 };
            assert_eq!(p, expect, "hour {h}");
        }
    }

    #[test]
    fn utc_offset_shifts_event_hours() {
        let mut db = diurnal_db(4, 3);
        let snap = db.snapshot();
        let report = CongestionSpec::analyze("speedtest", "download")
            .utc_offset_hours(-8)
            .evaluate(&snap);
        // 20..23 UTC is 12..15 local at −8; verdicts are unchanged.
        for (h, &p) in report.hours.iter().enumerate() {
            let expect = if (12..15).contains(&h) { 0.5 } else { 0.0 };
            assert_eq!(p, expect, "hour {h}");
        }
        assert!(report.labels[0].congested);
        assert!(!report.labels[1].congested);
    }

    #[test]
    fn zero_throughput_days_are_skipped() {
        let mut db = Db::new();
        for h in 0..24u64 {
            db.insert(
                Point::new("speedtest", h * 3600)
                    .tag("server", "dead")
                    .field("download", 0.0),
            );
        }
        let snap = db.snapshot();
        let report = CongestionSpec::analyze("speedtest", "download").evaluate(&snap);
        assert_eq!(report.labels.len(), 1);
        let l = &report.labels[0];
        assert_eq!((l.days, l.samples, l.events), (0, 0, 0));
        assert!(!l.congested);
    }

    #[test]
    fn report_encoding_is_canonical_and_generation_stamped() {
        let mut db = diurnal_db(2, 2);
        let snap = db.snapshot();
        let report = CongestionSpec::analyze("speedtest", "download").evaluate(&snap);
        let v = report.to_value(7);
        assert_eq!(v.get("generation").and_then(Value::as_u64), Some(7));
        let series = v.get("series").and_then(|s| s.as_array()).unwrap();
        assert_eq!(series.len(), 2);
        let summary = v.get("summary").unwrap();
        assert_eq!(summary.get("series").and_then(Value::as_u64), Some(2));
        assert_eq!(summary.get("congested").and_then(Value::as_u64), Some(1));
        // Two encodings of the same report are the same bytes.
        assert_eq!(
            serde_json::to_string(&report.to_value(7)),
            serde_json::to_string(&v)
        );
    }
}
