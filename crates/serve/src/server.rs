//! The service: sequenced ingest staging, epoch publishing, cached
//! reads, and tail subscriptions over one [`tsdb::Db`].
//!
//! ## Lock order
//!
//! Four independent locks, acquired in this order when more than one
//! is needed (never the reverse): `writer` → `published` → `cache`;
//! `tails` is only ever held alone. Readers in steady state touch only
//! `published` (one clone of an `Arc`-backed snapshot) and `cache`.
//!
//! ## Determinism contract
//!
//! The database contents after a [`Server::publish`] are a pure
//! function of the set of `(client, seq, points)` batches applied so
//! far: staged batches are applied in canonical `(client, seq)` order,
//! and a gap in a client's sequence holds that client's later batches
//! back until the gap fills. Query responses are rendered from
//! immutable snapshots through one canonical encoder, so equal
//! `(seed, config_hash, generation, query)` keys always yield equal
//! bytes — which is also why the response cache never needs
//! invalidation.

use crate::cache::{CacheStats, QueryCache};
use crate::congestion::CongestionSpec;
use crate::proto::{self, QuerySpec, Request};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::Mutex;
use tsdb::{Db, Point, Snapshot, Tail};

/// Identity and sizing for one [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Campaign seed; part of every cache key so caches from different
    /// campaigns can never alias.
    pub seed: u64,
    /// Hash of the campaign configuration; same role as `seed`.
    pub config_hash: u64,
    /// Response-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Upper bound a client may request for one tail's buffer.
    pub max_tail_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            config_hash: 0,
            cache_capacity: 256,
            max_tail_capacity: 65536,
        }
    }
}

/// Everything the single logical writer owns: the database plus the
/// staging area for sequenced ingest.
struct Writer {
    db: Db,
    /// client → seq → staged batch. `BTreeMap` at both levels *is* the
    /// canonical apply order.
    staged: BTreeMap<String, BTreeMap<u64, Vec<Point>>>,
    /// Next sequence number expected from each client.
    next_seq: BTreeMap<String, u64>,
    staged_points: u64,
}

/// Open tail subscriptions, addressed by server-assigned id.
struct TailRegistry {
    next_id: u64,
    tails: BTreeMap<u64, Tail>,
}

/// Request counters, all monotonic.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    ingest_batches: u64,
    ingest_points: u64,
    ingest_rejected: u64,
    publishes: u64,
    queries: u64,
    congestions: u64,
    polls: u64,
    poll_points: u64,
    subscribes: u64,
    unsubscribes: u64,
    errors: u64,
}

/// Summary of one publish barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishInfo {
    /// Generation of the now-published snapshot.
    pub generation: u64,
    /// Staged batches applied at this barrier.
    pub applied_batches: u64,
    /// Points those batches carried.
    pub applied_points: u64,
    /// Batches still held back by sequence gaps.
    pub deferred_batches: u64,
}

/// A concurrent query/ingest service over one embedded [`Db`].
///
/// `&self` everywhere: share it via `Arc` across connection threads.
pub struct Server {
    cfg: ServerConfig,
    writer: Mutex<Writer>,
    published: Mutex<Snapshot>,
    cache: Mutex<QueryCache>,
    tails: Mutex<TailRegistry>,
    counters: Mutex<Counters>,
}

impl Server {
    /// A fresh server holding an empty database, with generation 1
    /// (the empty snapshot) already published.
    pub fn new(cfg: ServerConfig) -> Self {
        let mut db = Db::new();
        let initial = db.snapshot();
        Self {
            cfg,
            writer: Mutex::new(Writer {
                db,
                staged: BTreeMap::new(),
                next_seq: BTreeMap::new(),
                staged_points: 0,
            }),
            published: Mutex::new(initial),
            cache: Mutex::new(QueryCache::new(cfg.cache_capacity)),
            tails: Mutex::new(TailRegistry {
                next_id: 1,
                tails: BTreeMap::new(),
            }),
            counters: Mutex::new(Counters::default()),
        }
    }

    /// The configuration this server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Stages a sequenced batch for the next publish barrier. Returns
    /// the number of points now staged for this client.
    ///
    /// `seq` must be fresh for `client`: already-applied or
    /// already-staged sequence numbers are rejected so a retrying
    /// client cannot double-apply a batch.
    pub fn ingest(&self, client: &str, seq: u64, points: Vec<Point>) -> Result<u64, String> {
        if client.is_empty() {
            return Err("empty client id".into());
        }
        let mut w = self.lock_writer();
        let applied = w.next_seq.get(client).copied().unwrap_or(0);
        if seq < applied {
            self.count(|c| c.ingest_rejected += 1);
            return Err(format!("seq {seq} already applied (next is {applied})"));
        }
        let per_client = w.staged.entry(client.to_string()).or_default();
        if per_client.contains_key(&seq) {
            self.count(|c| c.ingest_rejected += 1);
            return Err(format!("seq {seq} already staged"));
        }
        let n = points.len() as u64;
        per_client.insert(seq, points);
        w.staged_points += n;
        let staged: u64 = w.staged[client].values().map(|b| b.len() as u64).sum();
        self.count(|c| {
            c.ingest_batches += 1;
            c.ingest_points += n;
        });
        Ok(staged)
    }

    /// Applies every staged batch that is next in its client's
    /// sequence — in canonical `(client, seq)` order — then publishes
    /// a new snapshot. Batches behind a sequence gap stay staged.
    pub fn publish(&self) -> PublishInfo {
        let mut w = self.lock_writer();
        let mut applied_batches = 0u64;
        let mut applied_points = 0u64;
        // Canonical order: clients sorted by id (BTreeMap iteration),
        // each client's contiguous run of sequence numbers in order.
        let clients: Vec<String> = w.staged.keys().cloned().collect();
        for client in clients {
            loop {
                let next = w.next_seq.get(&client).copied().unwrap_or(0);
                let Some(batch) = w.staged.get_mut(&client).and_then(|m| m.remove(&next)) else {
                    break;
                };
                applied_batches += 1;
                applied_points += batch.len() as u64;
                w.staged_points -= batch.len() as u64;
                w.db.insert_batch(batch);
                w.next_seq.insert(client.clone(), next + 1);
            }
            if w.staged.get(&client).is_some_and(BTreeMap::is_empty) {
                w.staged.remove(&client);
            }
        }
        let deferred_batches = w.staged.values().map(|m| m.len() as u64).sum();
        let snap = w.db.snapshot();
        let generation = snap.generation();
        // Lock order: writer → published. Holding the writer lock
        // across the swap makes publish atomic with respect to other
        // publishers; readers never take the writer lock.
        *self.published.lock().expect("published lock") = snap;
        drop(w);
        self.count(|c| c.publishes += 1);
        PublishInfo {
            generation,
            applied_batches,
            applied_points,
            deferred_batches,
        }
    }

    /// The last published snapshot (cheap clone; `Arc`s inside).
    pub fn snapshot(&self) -> Snapshot {
        self.published.lock().expect("published lock").clone()
    }

    /// Runs a query against the last published snapshot, through the
    /// response cache. Returns the rendered response line and whether
    /// it was served from cache.
    ///
    /// The rendered bytes are identical for a hit and the miss that
    /// populated it, and identical to encoding
    /// [`Query::run_snapshot`](tsdb::Query::run_snapshot) over the same
    /// generation with [`proto::results_to_value`].
    pub fn query(&self, spec: &QuerySpec) -> (String, bool) {
        let snap = self.snapshot();
        let key = format!(
            "{}:{}:{}:{}",
            self.cfg.seed,
            self.cfg.config_hash,
            snap.generation(),
            spec.canonical()
        );
        self.count(|c| c.queries += 1);
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            return (hit, true);
        }
        let results = spec.to_query().run_snapshot(&snap);
        let body = proto::results_to_value(snap.generation(), &results);
        let Value::Object(m) = body else {
            unreachable!("results_to_value returns an object")
        };
        let rendered = proto::ok_response(m);
        self.cache
            .lock()
            .expect("cache lock")
            .insert(key, rendered.clone());
        (rendered, false)
    }

    /// Runs congestion detection against the last published snapshot,
    /// through the same response cache as [`Server::query`]. Returns
    /// the rendered response line and whether it was served from cache.
    ///
    /// The spec's canonical bytes carry `"op":"congestion"`, so
    /// congestion entries and query entries can never alias in the
    /// shared key space even for identical measurement/field/filters.
    pub fn congestion(&self, spec: &CongestionSpec) -> (String, bool) {
        let snap = self.snapshot();
        let key = format!(
            "{}:{}:{}:{}",
            self.cfg.seed,
            self.cfg.config_hash,
            snap.generation(),
            spec.canonical()
        );
        self.count(|c| c.congestions += 1);
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            return (hit, true);
        }
        let report = spec.evaluate(&snap);
        let Value::Object(m) = report.to_value(snap.generation()) else {
            unreachable!("CongestionReport::to_value returns an object")
        };
        let rendered = proto::ok_response(m);
        self.cache
            .lock()
            .expect("cache lock")
            .insert(key, rendered.clone());
        (rendered, false)
    }

    /// Opens a bounded tail over the ingest stream and returns its id.
    /// Points mirrored into the tail are those *applied* at publish
    /// barriers (staged points are not yet visible anywhere).
    pub fn subscribe(&self, capacity: usize) -> Result<u64, String> {
        if capacity == 0 {
            return Err("capacity must be positive".into());
        }
        if capacity > self.cfg.max_tail_capacity {
            return Err(format!(
                "capacity {capacity} exceeds maximum {}",
                self.cfg.max_tail_capacity
            ));
        }
        let tail = self.lock_writer().db.subscribe(capacity);
        let mut reg = self.tails.lock().expect("tails lock");
        let id = reg.next_id;
        reg.next_id += 1;
        reg.tails.insert(id, tail);
        self.count(|c| c.subscribes += 1);
        Ok(id)
    }

    /// Drains up to `max` buffered points from subscription `tail`.
    /// Returns the points plus `(overflow, remaining)` accounting.
    pub fn poll(&self, tail: u64, max: usize) -> Result<(Vec<Point>, u64, usize), String> {
        let handle = {
            let reg = self.tails.lock().expect("tails lock");
            reg.tails
                .get(&tail)
                .cloned()
                .ok_or_else(|| format!("unknown tail {tail}"))?
        };
        let mut points = Vec::new();
        while points.len() < max {
            let Some(p) = handle.try_recv() else { break };
            points.push(p);
        }
        let n = points.len() as u64;
        self.count(|c| {
            c.polls += 1;
            c.poll_points += n;
        });
        Ok((points, handle.overflow(), handle.len()))
    }

    /// Closes subscription `tail`. The publisher prunes it on the next
    /// publish; its backpressure accounting stops immediately.
    pub fn unsubscribe(&self, tail: u64) -> Result<(), String> {
        let mut reg = self.tails.lock().expect("tails lock");
        match reg.tails.remove(&tail) {
            // Dropping the handle closes the subscription (the registry
            // holds the only clone unless a poll is mid-flight, and a
            // mid-flight clone closes it on its own drop).
            Some(_) => {
                drop(reg);
                self.count(|c| c.unsubscribes += 1);
                Ok(())
            }
            None => Err(format!("unknown tail {tail}")),
        }
    }

    /// Canonical stats object: request counters, cache behaviour,
    /// database ingest/tail accounting, and the published generation.
    pub fn stats(&self) -> Value {
        let (db_stats, points_written, staged_points, staged_batches) = {
            let w = self.lock_writer();
            (
                w.db.stats,
                w.db.points_written,
                w.staged_points,
                w.staged.values().map(|m| m.len() as u64).sum::<u64>(),
            )
        };
        let generation = self.snapshot().generation();
        let cache = self.cache.lock().expect("cache lock").stats();
        let c = *self.counters.lock().expect("counters lock");
        let open_tails = self.tails.lock().expect("tails lock").tails.len() as u64;

        let mut m = Map::new();
        m.insert("generation".into(), generation.into());
        m.insert("staged_points".into(), staged_points.into());
        m.insert("staged_batches".into(), staged_batches.into());
        m.insert("open_tails".into(), open_tails.into());
        let mut req = Map::new();
        req.insert("ingest_batches".into(), c.ingest_batches.into());
        req.insert("ingest_points".into(), c.ingest_points.into());
        req.insert("ingest_rejected".into(), c.ingest_rejected.into());
        req.insert("publishes".into(), c.publishes.into());
        req.insert("queries".into(), c.queries.into());
        req.insert("congestions".into(), c.congestions.into());
        req.insert("polls".into(), c.polls.into());
        req.insert("poll_points".into(), c.poll_points.into());
        req.insert("subscribes".into(), c.subscribes.into());
        req.insert("unsubscribes".into(), c.unsubscribes.into());
        req.insert("errors".into(), c.errors.into());
        m.insert("requests".into(), Value::Object(req));
        let mut cm = Map::new();
        cm.insert("hits".into(), cache.hits.into());
        cm.insert("misses".into(), cache.misses.into());
        cm.insert("evictions".into(), cache.evictions.into());
        cm.insert("entries".into(), cache.entries.into());
        m.insert("cache".into(), Value::Object(cm));
        let mut dm = Map::new();
        dm.insert("points_written".into(), points_written.into());
        dm.insert("insert_batches".into(), db_stats.insert_batches.into());
        dm.insert("points_published".into(), db_stats.points_published.into());
        dm.insert("tail_peak_depth".into(), db_stats.tail_peak_depth.into());
        dm.insert("tail_overflow".into(), db_stats.tail_overflow.into());
        dm.insert("tails_opened".into(), db_stats.tails_opened.into());
        dm.insert("tails_closed".into(), db_stats.tails_closed.into());
        m.insert("db".into(), Value::Object(dm));
        Value::Object(m)
    }

    /// Response-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Ingest-side database stats (tail backpressure accounting lives
    /// here: `tail_overflow`, `tail_peak_depth`).
    pub fn db_stats(&self) -> tsdb::DbStats {
        self.lock_writer().db.stats
    }

    /// Pushes `serve.*` counters and gauges into an observer's metrics
    /// registry, so serve activity lands in the same canonical metrics
    /// JSON as the rest of a campaign.
    pub fn record_metrics(&self, obs: &clasp_obs::Observer) {
        let stats = self.stats();
        obs.with_metrics(|m| {
            for section in ["requests", "cache", "db"] {
                if let Some(Value::Object(members)) = stats.get(section) {
                    for (k, v) in members {
                        if let Some(n) = v.as_u64() {
                            m.inc(&format!("serve.{section}.{k}"), n);
                        }
                    }
                }
            }
            if let Some(g) = stats.get("generation").and_then(Value::as_f64) {
                m.set_gauge("serve.generation", g);
            }
            if let Some(g) = stats.get("open_tails").and_then(Value::as_f64) {
                m.set_gauge("serve.open_tails", g);
            }
        });
    }

    /// Dispatches one parsed request and renders the response line.
    /// This single entry point backs every transport, which is what
    /// makes in-process and over-the-wire responses byte-identical.
    pub fn handle(&self, req: Request) -> String {
        match req {
            Request::Ping => {
                let mut m = Map::new();
                m.insert("pong".into(), true.into());
                proto::ok_response(m)
            }
            Request::Ingest {
                client,
                seq,
                points,
            } => match self.ingest(&client, seq, points) {
                Ok(staged) => {
                    let mut m = Map::new();
                    m.insert("client".into(), client.as_str().into());
                    m.insert("seq".into(), seq.into());
                    m.insert("staged".into(), staged.into());
                    proto::ok_response(m)
                }
                Err(e) => self.error(&e),
            },
            Request::Publish => {
                let info = self.publish();
                let mut m = Map::new();
                m.insert("generation".into(), info.generation.into());
                m.insert("applied_batches".into(), info.applied_batches.into());
                m.insert("applied_points".into(), info.applied_points.into());
                m.insert("deferred_batches".into(), info.deferred_batches.into());
                proto::ok_response(m)
            }
            Request::Query(spec) => self.query(&spec).0,
            Request::Congestion(spec) => self.congestion(&spec).0,
            Request::Subscribe { capacity } => match self.subscribe(capacity) {
                Ok(id) => {
                    let mut m = Map::new();
                    m.insert("tail".into(), id.into());
                    proto::ok_response(m)
                }
                Err(e) => self.error(&e),
            },
            Request::Poll { tail, max } => match self.poll(tail, max) {
                Ok((points, overflow, remaining)) => {
                    let mut m = Map::new();
                    m.insert(
                        "points".into(),
                        Value::Array(
                            points
                                .iter()
                                .map(|p| tsdb::line::encode(p).into())
                                .collect(),
                        ),
                    );
                    m.insert("overflow".into(), overflow.into());
                    m.insert("remaining".into(), remaining.into());
                    proto::ok_response(m)
                }
                Err(e) => self.error(&e),
            },
            Request::Unsubscribe { tail } => match self.unsubscribe(tail) {
                Ok(()) => {
                    let mut m = Map::new();
                    m.insert("closed".into(), true.into());
                    proto::ok_response(m)
                }
                Err(e) => self.error(&e),
            },
            Request::Stats => {
                let mut m = Map::new();
                m.insert("stats".into(), self.stats());
                proto::ok_response(m)
            }
        }
    }

    /// Parses and dispatches one raw request line.
    pub fn handle_line(&self, line: &str) -> String {
        match Request::parse(line) {
            Ok(req) => self.handle(req),
            Err(e) => self.error(&e),
        }
    }

    fn error(&self, message: &str) -> String {
        self.count(|c| c.errors += 1);
        proto::err_response(message)
    }

    fn count(&self, f: impl FnOnce(&mut Counters)) {
        f(&mut self.counters.lock().expect("counters lock"));
    }

    fn lock_writer(&self) -> std::sync::MutexGuard<'_, Writer> {
        self.writer.lock().expect("writer lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(server: &str, t: u64, mbps: f64) -> Point {
        Point::new("throughput", t)
            .tag("server", server)
            .field("mbps", mbps)
    }

    fn spec() -> QuerySpec {
        QuerySpec::select("throughput", "mbps").aggregate(tsdb::Aggregate::Max)
    }

    #[test]
    fn staged_batches_invisible_until_publish() {
        let s = Server::new(ServerConfig::default());
        s.ingest("c1", 0, vec![point("a", 0, 1.0)]).unwrap();
        let (resp, _) = s.query(&spec());
        assert!(resp.contains("\"results\":[]"), "{resp}");
        let info = s.publish();
        assert_eq!((info.applied_batches, info.applied_points), (1, 1));
        let (resp, _) = s.query(&spec());
        assert!(resp.contains("\"rows\":[[0,1]]"), "{resp}");
    }

    #[test]
    fn arrival_order_does_not_change_published_bytes() {
        // Two clients, three batches each, delivered in two very
        // different interleavings: the published response bytes match.
        let batches: Vec<(&str, u64, Vec<Point>)> = vec![
            ("alpha", 0, vec![point("a", 0, 1.0)]),
            ("alpha", 1, vec![point("a", 1, 2.0)]),
            ("alpha", 2, vec![point("a", 2, 3.0)]),
            ("beta", 0, vec![point("b", 0, 4.0)]),
            ("beta", 1, vec![point("b", 1, 5.0)]),
            ("beta", 2, vec![point("b", 2, 6.0)]),
        ];
        let run = |order: &[usize]| {
            let s = Server::new(ServerConfig::default());
            for &i in order {
                let (c, seq, pts) = &batches[i];
                s.ingest(c, *seq, pts.clone()).unwrap();
            }
            s.publish();
            let q = QuerySpec::select("throughput", "mbps")
                .aggregate(tsdb::Aggregate::Sum)
                .group_by_time(1);
            s.query(&q).0
        };
        let forward = run(&[0, 1, 2, 3, 4, 5]);
        let tangled = run(&[5, 3, 0, 4, 2, 1]);
        assert_eq!(forward, tangled);
    }

    #[test]
    fn sequence_gap_defers_batches() {
        let s = Server::new(ServerConfig::default());
        s.ingest("c", 1, vec![point("a", 1, 2.0)]).unwrap();
        let info = s.publish();
        assert_eq!(info.applied_batches, 0);
        assert_eq!(info.deferred_batches, 1);
        // The gap fills: both apply, in sequence order.
        s.ingest("c", 0, vec![point("a", 0, 1.0)]).unwrap();
        let info = s.publish();
        assert_eq!(info.applied_batches, 2);
        assert_eq!(info.deferred_batches, 0);
        let snap = s.snapshot();
        assert_eq!(snap.points(), 2);
    }

    #[test]
    fn duplicate_and_stale_seqs_are_rejected() {
        let s = Server::new(ServerConfig::default());
        s.ingest("c", 0, vec![point("a", 0, 1.0)]).unwrap();
        assert!(s.ingest("c", 0, vec![]).is_err(), "staged duplicate");
        s.publish();
        assert!(s.ingest("c", 0, vec![]).is_err(), "applied duplicate");
        s.ingest("c", 1, vec![point("a", 1, 2.0)]).unwrap();
    }

    #[test]
    fn query_bytes_match_in_process_evaluation() {
        let s = Server::new(ServerConfig::default());
        s.ingest("c", 0, (0..50).map(|t| point("a", t, t as f64)).collect())
            .unwrap();
        s.publish();
        let q = QuerySpec::select("throughput", "mbps")
            .group_by_time(10)
            .aggregate(tsdb::Aggregate::Percentile(95.0));
        let (served, _) = s.query(&q);
        // Independent evaluation through the library path.
        let snap = s.snapshot();
        let direct = q.to_query().run_snapshot(&snap);
        let body = proto::results_to_value(snap.generation(), &direct);
        let Value::Object(m) = body else {
            unreachable!()
        };
        assert_eq!(served, proto::ok_response(m));
    }

    #[test]
    fn cache_hit_returns_identical_bytes() {
        let s = Server::new(ServerConfig::default());
        s.ingest("c", 0, vec![point("a", 0, 1.0)]).unwrap();
        s.publish();
        let (first, hit1) = s.query(&spec());
        let (second, hit2) = s.query(&spec());
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first, second);
        let cs = s.cache_stats();
        assert_eq!((cs.hits, cs.misses), (1, 1));
    }

    #[test]
    fn new_generation_misses_cache_old_entries_remain_valid() {
        let s = Server::new(ServerConfig::default());
        s.ingest("c", 0, vec![point("a", 0, 1.0)]).unwrap();
        s.publish();
        let (g2, _) = s.query(&spec());
        s.ingest("c", 1, vec![point("a", 1, 9.0)]).unwrap();
        s.publish();
        let (g3, hit) = s.query(&spec());
        assert!(!hit, "new generation must not alias the old entry");
        assert_ne!(g2, g3);
        assert!(g3.contains("9"), "{g3}");
    }

    #[test]
    fn publishing_without_changes_keeps_generation_and_cache() {
        let s = Server::new(ServerConfig::default());
        s.ingest("c", 0, vec![point("a", 0, 1.0)]).unwrap();
        let g1 = s.publish().generation;
        let _ = s.query(&spec());
        // Nothing staged: the snapshot is reused and the cache still
        // hits, because the generation did not move.
        let g2 = s.publish().generation;
        assert_eq!(g1, g2);
        let (_, hit) = s.query(&spec());
        assert!(hit);
    }

    #[test]
    fn tails_see_applied_points_with_backpressure_accounting() {
        let s = Server::new(ServerConfig::default());
        let id = s.subscribe(2).unwrap();
        s.ingest("c", 0, (0..5).map(|t| point("a", t, 1.0)).collect())
            .unwrap();
        s.publish();
        let (points, overflow, remaining) = s.poll(id, 100).unwrap();
        assert_eq!(points.len(), 2, "bounded buffer");
        assert_eq!(overflow, 3, "the rest was counted, not buffered");
        assert_eq!(remaining, 0);
        assert_eq!(s.db_stats().tail_overflow, 3);
        s.unsubscribe(id).unwrap();
        assert!(s.poll(id, 1).is_err());
        // Accounting stops once unsubscribed: further publishes add no
        // overflow against the closed tail.
        s.ingest("c", 1, (5..10).map(|t| point("a", t, 1.0)).collect())
            .unwrap();
        s.publish();
        assert_eq!(s.db_stats().tail_overflow, 3);
        assert_eq!(s.db_stats().tails_closed, 1);
    }

    #[test]
    fn subscribe_capacity_is_bounded() {
        let s = Server::new(ServerConfig {
            max_tail_capacity: 8,
            ..ServerConfig::default()
        });
        assert!(s.subscribe(0).is_err());
        assert!(s.subscribe(9).is_err());
        assert!(s.subscribe(8).is_ok());
    }

    #[test]
    fn stats_shape_is_canonical() {
        let s = Server::new(ServerConfig::default());
        s.ingest("c", 0, vec![point("a", 0, 1.0)]).unwrap();
        s.publish();
        let _ = s.query(&spec());
        let stats = s.stats();
        assert_eq!(stats.get("generation").and_then(Value::as_u64), Some(2));
        let req = stats.get("requests").unwrap();
        assert_eq!(req.get("ingest_batches").and_then(Value::as_u64), Some(1));
        assert_eq!(req.get("publishes").and_then(Value::as_u64), Some(1));
        assert_eq!(req.get("queries").and_then(Value::as_u64), Some(1));
        // Rendering twice yields the same bytes (no wall-clock, no
        // iteration-order leaks).
        assert_eq!(
            serde_json::to_string(&s.stats()),
            serde_json::to_string(&s.stats())
        );
    }

    #[test]
    fn record_metrics_lands_in_registry() {
        let s = Server::new(ServerConfig::default());
        s.ingest("c", 0, vec![point("a", 0, 1.0)]).unwrap();
        s.publish();
        let _ = s.query(&spec());
        let _ = s.query(&spec());
        let obs = clasp_obs::Observer::new();
        s.record_metrics(&obs);
        let m = obs.metrics();
        assert_eq!(m.counter("serve.requests.queries"), 2);
        assert_eq!(m.counter("serve.cache.hits"), 1);
        assert_eq!(m.counter("serve.db.points_written"), 1);
        assert_eq!(m.gauge("serve.generation"), Some(2.0));
    }

    #[test]
    fn concurrent_readers_and_ingest_do_not_interfere() {
        use std::sync::Arc;
        let s = Arc::new(Server::new(ServerConfig::default()));
        s.ingest("w", 0, (0..100).map(|t| point("a", t, t as f64)).collect())
            .unwrap();
        let base_gen = s.publish().generation;
        let baseline = s.query(&spec()).0;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let want = baseline.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        // Readers pin a snapshot per query; concurrent
                        // staging/publishing must never tear a response.
                        // Any response at the baseline generation must be
                        // byte-identical to the baseline; later
                        // generations must still be well-formed.
                        let (got, _) = s.query(&spec());
                        let v = serde_json::from_str(&got).unwrap();
                        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
                        let generation = v.get("generation").and_then(Value::as_u64).unwrap();
                        if generation == base_gen {
                            assert_eq!(got, want);
                        } else {
                            assert!(generation > base_gen);
                        }
                    }
                })
            })
            .collect();
        for seq in 1..20 {
            s.ingest("w", seq, vec![point("a", 100 + seq, 100.0 + seq as f64)])
                .unwrap();
            s.publish();
        }
        for r in readers {
            r.join().unwrap();
        }
        // Zero lost points: everything ingested was applied.
        assert_eq!(s.snapshot().points(), 100 + 19);
    }

    #[test]
    fn handle_line_rejects_garbage_and_counts_errors() {
        let s = Server::new(ServerConfig::default());
        let resp = s.handle_line("not json");
        assert!(resp.contains("\"ok\":false"), "{resp}");
        let stats = s.stats();
        assert_eq!(
            stats
                .get("requests")
                .and_then(|r| r.get("errors"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }
}
