//! The serve client: typed requests over any transport.
//!
//! A [`Client`] pairs a [`Transport`] with the protocol encoding in
//! [`proto`](crate::proto). Two transports ship here:
//!
//! * [`TcpTransport`] — line-delimited JSON over a socket, speaking to
//!   [`wire::serve_listener`](crate::wire::serve_listener);
//! * [`LocalTransport`] — calls straight into an in-process
//!   [`Server`]. Because the wire loop dispatches through the same
//!   [`Server::handle_line`] entry point, the bytes a local client
//!   sees are identical to the bytes a socket client sees — tests and
//!   benches exercise the real protocol without a network in the way.

use crate::congestion::CongestionSpec;
use crate::proto::{QuerySpec, Request};
use crate::server::Server;
use serde_json::Value;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tsdb::Point;

/// One request/response exchange over some byte channel.
pub trait Transport {
    /// Sends one request line, returns the one response line.
    fn round_trip(&mut self, line: &str) -> io::Result<String>;
}

/// Transport over a connected TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TcpTransport {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// Connects to a serve endpoint.
    pub fn connect(addr: &str) -> io::Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(resp.trim_end_matches(['\r', '\n']).to_string())
    }
}

/// Transport into an in-process [`Server`] — no sockets, same bytes.
pub struct LocalTransport {
    server: Arc<Server>,
}

impl LocalTransport {
    /// Wraps a shared server.
    pub fn new(server: Arc<Server>) -> Self {
        Self { server }
    }
}

impl Transport for LocalTransport {
    fn round_trip(&mut self, line: &str) -> io::Result<String> {
        Ok(self.server.handle_line(line))
    }
}

/// A typed serve client over any [`Transport`].
pub struct Client<T: Transport> {
    transport: T,
    /// Client identity stamped on ingest batches.
    id: String,
    /// Next sequence number for this client's batches.
    next_seq: u64,
}

/// Error from one client call: transport failure or a server-side
/// `{"ok":false}` response.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server answered, but with an error.
    Server(String),
    /// The response line was not valid protocol JSON.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl<T: Transport> Client<T> {
    /// A client named `id` (its stable ingest identity) over
    /// `transport`.
    pub fn new(id: impl Into<String>, transport: T) -> Self {
        Self {
            transport,
            id: id.into(),
            next_seq: 0,
        }
    }

    /// This client's ingest identity.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Round-trips one request, returning the parsed `ok` response.
    pub fn call(&mut self, req: &Request) -> Result<Value, ClientError> {
        let (v, _raw) = self.call_raw(req)?;
        Ok(v)
    }

    /// Like [`Client::call`] but also returns the raw response line —
    /// the bytes equivalence tests compare.
    pub fn call_raw(&mut self, req: &Request) -> Result<(Value, String), ClientError> {
        let raw = self.transport.round_trip(&req.encode())?;
        let v = serde_json::from_str(&raw).map_err(|e| ClientError::Protocol(e.to_string()))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok((v, raw)),
            Some(false) => Err(ClientError::Server(
                v.get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol("response missing \"ok\"".into())),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Stages one batch with this client's next sequence number.
    pub fn ingest(&mut self, points: Vec<Point>) -> Result<(), ClientError> {
        let req = Request::Ingest {
            client: self.id.clone(),
            seq: self.next_seq,
            points,
        };
        self.call(&req)?;
        self.next_seq += 1;
        Ok(())
    }

    /// Requests a publish barrier; returns the published generation.
    pub fn publish(&mut self) -> Result<u64, ClientError> {
        let v = self.call(&Request::Publish)?;
        v.get("generation")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("publish response missing generation".into()))
    }

    /// Runs a query; returns the parsed response and its raw bytes.
    pub fn query(&mut self, spec: &QuerySpec) -> Result<(Value, String), ClientError> {
        self.call_raw(&Request::Query(spec.clone()))
    }

    /// Runs congestion detection; returns the parsed response and its
    /// raw bytes.
    pub fn congestion(&mut self, spec: &CongestionSpec) -> Result<(Value, String), ClientError> {
        self.call_raw(&Request::Congestion(spec.clone()))
    }

    /// Opens a tail subscription; returns its id.
    pub fn subscribe(&mut self, capacity: usize) -> Result<u64, ClientError> {
        let v = self.call(&Request::Subscribe { capacity })?;
        v.get("tail")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("subscribe response missing tail".into()))
    }

    /// Drains up to `max` points from subscription `tail`; returns the
    /// points plus `(overflow, remaining)` accounting.
    pub fn poll(&mut self, tail: u64, max: usize) -> Result<(Vec<Point>, u64, u64), ClientError> {
        let v = self.call(&Request::Poll { tail, max })?;
        let lines = v
            .get("points")
            .and_then(Value::as_array)
            .ok_or_else(|| ClientError::Protocol("poll response missing points".into()))?;
        let mut points = Vec::with_capacity(lines.len());
        for l in lines {
            let s = l
                .as_str()
                .ok_or_else(|| ClientError::Protocol("poll points must be strings".into()))?;
            points.push(tsdb::line::decode(s).map_err(|e| ClientError::Protocol(e.to_string()))?);
        }
        let overflow = v.get("overflow").and_then(Value::as_u64).unwrap_or(0);
        let remaining = v.get("remaining").and_then(Value::as_u64).unwrap_or(0);
        Ok((points, overflow, remaining))
    }

    /// Closes subscription `tail`.
    pub fn unsubscribe(&mut self, tail: u64) -> Result<(), ClientError> {
        self.call(&Request::Unsubscribe { tail }).map(|_| ())
    }

    /// Server stats object.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        let v = self.call(&Request::Stats)?;
        v.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats response missing stats".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use tsdb::Aggregate;

    fn point(t: u64, v: f64) -> Point {
        Point::new("m", t).tag("s", "a").field("f", v)
    }

    #[test]
    fn local_client_full_session() {
        let server = Arc::new(Server::new(ServerConfig::default()));
        let mut c = Client::new("c1", LocalTransport::new(Arc::clone(&server)));
        c.ping().unwrap();
        let tail = c.subscribe(8).unwrap();
        c.ingest((0..5).map(|t| point(t, t as f64)).collect())
            .unwrap();
        c.ingest(vec![point(5, 5.0)]).unwrap();
        let generation = c.publish().unwrap();
        assert_eq!(generation, 2);
        let (v, _) = c
            .query(&QuerySpec::select("m", "f").aggregate(Aggregate::Count))
            .unwrap();
        let rows = v.get("results").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        let (points, overflow, remaining) = c.poll(tail, 100).unwrap();
        assert_eq!(points.len(), 6);
        assert_eq!((overflow, remaining), (0, 0));
        c.unsubscribe(tail).unwrap();
        let stats = c.stats().unwrap();
        assert_eq!(
            stats
                .get("requests")
                .and_then(|r| r.get("ingest_batches"))
                .and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn sequencing_is_automatic_and_server_enforced() {
        let server = Arc::new(Server::new(ServerConfig::default()));
        let mut c = Client::new("c1", LocalTransport::new(Arc::clone(&server)));
        c.ingest(vec![point(0, 1.0)]).unwrap();
        c.ingest(vec![point(1, 2.0)]).unwrap();
        // A second client reusing the same identity and a stale seq is
        // rejected by the server, not silently double-applied.
        let mut imposter = Client::new("c1", LocalTransport::new(Arc::clone(&server)));
        let err = imposter.ingest(vec![point(9, 9.0)]).unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        c.publish().unwrap();
        assert_eq!(server.snapshot().points(), 2);
    }

    #[test]
    fn tcp_and_local_clients_get_identical_bytes() {
        let server = Arc::new(Server::new(ServerConfig::default()));
        {
            let mut seedc = Client::new("w", LocalTransport::new(Arc::clone(&server)));
            seedc
                .ingest((0..20).map(|t| point(t, (t * 7 % 5) as f64)).collect())
                .unwrap();
            seedc.publish().unwrap();
        }
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = Arc::clone(&server);
        let accept = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            crate::wire::serve_stream(&srv, stream).unwrap();
        });
        let spec = QuerySpec::select("m", "f")
            .group_by_time(5)
            .aggregate(Aggregate::Percentile(95.0));
        let mut tcp = Client::new("r1", TcpTransport::connect(&addr.to_string()).unwrap());
        let (_, tcp_bytes) = tcp.query(&spec).unwrap();
        drop(tcp);
        accept.join().unwrap();
        let mut local = Client::new("r2", LocalTransport::new(Arc::clone(&server)));
        let (_, local_bytes) = local.query(&spec).unwrap();
        assert_eq!(tcp_bytes, local_bytes);
    }
}
