//! Transport: line-delimited request/response over any byte stream.
//!
//! The event loop is deliberately wall-clock-free — no timeouts, no
//! deadlines, no `std::time` anywhere in this crate. A connection is a
//! pure function of the bytes it reads: block on the next line,
//! dispatch through [`Server::handle_line`] (the same entry point
//! in-process clients use), write the response, repeat until EOF.
//! Ordering comes from client sequence numbers and publish barriers,
//! never from when bytes happened to arrive, so a recorded session
//! replays to byte-identical responses.

use crate::server::Server;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Serves one connection: reads request lines until EOF, writes one
/// response line per request. Returns the number of requests served.
///
/// Malformed requests produce an error *response*, not a disconnect —
/// a client bug must not tear down its own session state.
pub fn serve_connection<R: BufRead, W: Write>(
    server: &Server,
    reader: R,
    mut writer: W,
) -> io::Result<u64> {
    let mut served = 0u64;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let resp = server.handle_line(&line);
        writer.write_all(resp.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        served += 1;
    }
    Ok(served)
}

/// Accept loop: serves every connection on `listener`, one thread per
/// connection, until the listener errors (e.g. the socket is closed).
/// Returns the number of connections accepted.
pub fn serve_listener(server: &Arc<Server>, listener: &TcpListener) -> io::Result<u64> {
    let mut accepted = 0u64;
    for stream in listener.incoming() {
        let stream = stream?;
        accepted += 1;
        let server = Arc::clone(server);
        std::thread::spawn(move || {
            let _ = serve_stream(&server, stream);
        });
    }
    Ok(accepted)
}

/// Serves one TCP stream (reader and writer halves of the same socket).
pub fn serve_stream(server: &Server, stream: TcpStream) -> io::Result<u64> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_connection(server, reader, stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    #[test]
    fn connection_maps_lines_to_responses() {
        let server = Server::new(ServerConfig::default());
        let input = concat!(
            "{\"op\":\"ping\"}\n",
            "\n", // blank lines are skipped, not answered
            "{\"op\":\"ingest\",\"client\":\"c\",\"seq\":0,",
            "\"points\":[\"m,s=a f=1.5 7\"]}\n",
            "{\"op\":\"publish\"}\n",
            "not json\n",
        );
        let mut out = Vec::new();
        let served = serve_connection(&server, input.as_bytes(), &mut out).unwrap();
        assert_eq!(served, 4);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"pong\":true"));
        assert!(lines[1].contains("\"staged\":1"));
        assert!(lines[2].contains("\"generation\":2"));
        assert!(lines[3].contains("\"ok\":false"));
    }

    #[test]
    fn wire_responses_match_in_process_handle() {
        // The transport adds framing only: the payload bytes are the
        // same ones Server::handle_line returns in process.
        let server = Server::new(ServerConfig::default());
        let line = "{\"op\":\"stats\"}";
        let direct = server.handle_line(line);
        let mut out = Vec::new();
        serve_connection(&server, format!("{line}\n").as_bytes(), &mut out).unwrap();
        let wired = std::str::from_utf8(&out).unwrap().trim_end();
        // Stats counters move between calls (queries counter etc. stay
        // equal here because stats is read-only); compare shape by
        // byte-equality of the two rendered responses.
        assert_eq!(direct, wired);
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead as _, Write as _};
        let server = Arc::new(Server::new(ServerConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = Arc::clone(&server);
        let accept = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_stream(&srv, stream).unwrap()
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |line: &str| {
            let mut s = &stream;
            s.write_all(line.as_bytes()).unwrap();
            s.write_all(b"\n").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            resp.trim_end().to_string()
        };
        assert!(send("{\"op\":\"ping\"}").contains("\"pong\":true"));
        assert!(send(
            "{\"op\":\"ingest\",\"client\":\"c\",\"seq\":0,\"points\":[\"m,s=a f=2.0 1\"]}"
        )
        .contains("\"staged\":1"));
        assert!(send("{\"op\":\"publish\"}").contains("\"generation\":2"));
        drop(stream);
        drop(reader);
        assert_eq!(accept.join().unwrap(), 3);
        assert_eq!(server.snapshot().points(), 1);
    }
}
