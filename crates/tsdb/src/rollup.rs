//! Continuous-query-style rollups and retention.
//!
//! InfluxDB deployments like CLASP's keep raw points briefly and persist
//! downsampled rollups (daily min/max/mean per series) under a longer
//! retention policy — the daily peak-to-trough variability `V(s,d)` is
//! exactly a min/max rollup. This module provides both halves:
//! [`rollup`] materialises windowed aggregates into a new measurement,
//! and [`enforce_retention`] drops raw samples older than a horizon.

use crate::db::Db;
use crate::point::Point;
use crate::query::Aggregate;

/// Which aggregates a rollup materialises for one source field.
#[derive(Debug, Clone)]
pub struct RollupSpec {
    /// Source field, e.g. `download`.
    pub field: String,
    /// Window length in seconds (86 400 for daily).
    pub window: u64,
    /// Aggregates to compute; each becomes `"<field>_<suffix>"`.
    pub aggregates: Vec<(Aggregate, &'static str)>,
}

impl RollupSpec {
    /// The daily min/max/mean rollup the congestion analysis consumes.
    pub fn daily(field: impl Into<String>) -> Self {
        Self {
            field: field.into(),
            window: 86_400,
            aggregates: vec![
                (Aggregate::Min, "min"),
                (Aggregate::Max, "max"),
                (Aggregate::Mean, "mean"),
                (Aggregate::Count, "count"),
            ],
        }
    }
}

/// Materialises `spec` over every series of `measurement` into
/// `<measurement>_<window>s`, preserving the tag set. Returns the number
/// of rollup points written.
pub fn rollup(db: &mut Db, measurement: &str, spec: &RollupSpec) -> u64 {
    // Collect per-series windows first (the borrow of matching_series
    // must end before we insert).
    struct SeriesWindows {
        tags: std::collections::BTreeMap<String, String>,
        // window start → field suffix → value
        windows: std::collections::BTreeMap<u64, Vec<(String, f64)>>,
    }
    let mut collected: Vec<SeriesWindows> = Vec::new();
    for series in db.matching_series(measurement, &[]) {
        let tags = series.tags.clone();
        let mut per_window: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
        for (t, fields) in series.samples() {
            if let Some(v) = fields.get(&spec.field) {
                per_window
                    .entry(t / spec.window * spec.window)
                    .or_default()
                    .push(*v);
            }
        }
        let mut windows = std::collections::BTreeMap::new();
        for (start, mut values) in per_window {
            let mut outs = Vec::new();
            for (agg, suffix) in &spec.aggregates {
                if let Some(v) = apply(agg, &mut values) {
                    outs.push((format!("{}_{}", spec.field, suffix), v));
                }
            }
            windows.insert(start, outs);
        }
        collected.push(SeriesWindows { tags, windows });
    }

    let target = format!("{}_{}s", measurement, spec.window);
    let mut written = 0;
    for sw in collected {
        for (start, fields) in sw.windows {
            let mut p = Point::new(target.clone(), start);
            for (k, v) in sw.tags.iter() {
                p = p.tag(k.clone(), v.clone());
            }
            for (k, v) in fields {
                p = p.field(k, v);
            }
            if !p.fields.is_empty() {
                db.insert(p);
                written += 1;
            }
        }
    }
    written
}

fn apply(agg: &Aggregate, values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(match agg {
        Aggregate::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
        Aggregate::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        Aggregate::Mean => values.iter().sum::<f64>() / values.len() as f64,
        Aggregate::Count => values.len() as f64,
        Aggregate::Sum => values.iter().sum(),
        Aggregate::Last => *values.last().expect("non-empty"),
        Aggregate::Percentile(p) => {
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let pos = (p / 100.0).clamp(0.0, 1.0) * (values.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            values[lo] + (values[hi] - values[lo]) * (pos - lo as f64)
        }
    })
}

/// Drops samples of `measurement` older than `horizon` (seconds).
/// Returns how many samples were dropped.
pub fn enforce_retention(db: &mut Db, measurement: &str, horizon: u64) -> u64 {
    let mut dropped = 0;
    for series in db.matching_series(measurement, &[]) {
        dropped += series.drop_before(horizon);
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn seeded_db() -> Db {
        let mut db = Db::new();
        for server in ["a", "b"] {
            for h in 0..48u64 {
                let v = if server == "a" && h % 24 == 20 {
                    50.0
                } else {
                    400.0 + h as f64
                };
                db.insert(
                    Point::new("speedtest", h * 3600)
                        .tag("server", server)
                        .field("download", v)
                        .field("latency", 20.0),
                );
            }
        }
        db
    }

    #[test]
    fn daily_rollup_materialises_min_max() {
        let mut db = seeded_db();
        let written = rollup(&mut db, "speedtest", &RollupSpec::daily("download"));
        // 2 servers × 2 days.
        assert_eq!(written, 4);
        let res = Query::select("speedtest_86400s", "download_min")
            .r#where("server", "a")
            .aggregate(Aggregate::Min)
            .run(&mut db);
        assert_eq!(res[0].rows[0].value, 50.0);
        let res = Query::select("speedtest_86400s", "download_count")
            .r#where("server", "b")
            .group_by_time(86_400)
            .aggregate(Aggregate::Last)
            .run(&mut db);
        assert!(res[0].rows.iter().all(|r| r.value == 24.0));
    }

    #[test]
    fn rollup_preserves_tags() {
        let mut db = seeded_db();
        rollup(&mut db, "speedtest", &RollupSpec::daily("download"));
        let servers = db.tag_values("speedtest_86400s", "server");
        assert_eq!(servers, vec!["a", "b"]);
    }

    #[test]
    fn variability_from_rollup_matches_direct() {
        let mut db = seeded_db();
        rollup(&mut db, "speedtest", &RollupSpec::daily("download"));
        // V(s,d) for server a, day 0: (max−min)/max with min 50.
        let min = Query::select("speedtest_86400s", "download_min")
            .r#where("server", "a")
            .time_range(0, 86_400)
            .aggregate(Aggregate::Last)
            .run(&mut db)[0]
            .rows[0]
            .value;
        let max = Query::select("speedtest_86400s", "download_max")
            .r#where("server", "a")
            .time_range(0, 86_400)
            .aggregate(Aggregate::Last)
            .run(&mut db)[0]
            .rows[0]
            .value;
        let v = (max - min) / max;
        assert!((v - (423.0 - 50.0) / 423.0).abs() < 1e-9, "V = {v}");
    }

    #[test]
    fn missing_field_writes_nothing() {
        let mut db = seeded_db();
        let written = rollup(&mut db, "speedtest", &RollupSpec::daily("nonexistent"));
        assert_eq!(written, 0);
    }

    #[test]
    fn retention_drops_old_samples() {
        let mut db = seeded_db();
        let dropped = enforce_retention(&mut db, "speedtest", 24 * 3600);
        // First 24 hours of both servers dropped.
        assert_eq!(dropped, 48);
        let res = Query::select("speedtest", "download")
            .r#where("server", "a")
            .aggregate(Aggregate::Count)
            .run(&mut db);
        assert_eq!(res[0].rows[0].value, 24.0);
    }

    #[test]
    fn retention_then_rollup_pipeline() {
        // The CLASP pattern: roll up daily, then drop raw older than the
        // horizon; the rollups survive.
        let mut db = seeded_db();
        rollup(&mut db, "speedtest", &RollupSpec::daily("download"));
        enforce_retention(&mut db, "speedtest", 48 * 3600);
        let rolled = Query::select("speedtest_86400s", "download_max")
            .aggregate(Aggregate::Count)
            .run(&mut db);
        assert_eq!(rolled.len(), 2, "rollups retained");
    }
}
