//! The query engine: filter → window → aggregate.
//!
//! A [`Query`] selects one field of one measurement, filters by tags and
//! time range, optionally groups into fixed windows (`group_by_time`), and
//! reduces each window (or the whole range) with an [`Aggregate`]. Results
//! come back per matching series, so `SELECT max(mbps) FROM throughput
//! WHERE region='us-west1' GROUP BY time(1d)` is one call.

use crate::db::{Db, Sample};
use crate::snapshot::Snapshot;

/// Reduction applied to the samples of one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregate {
    /// Smallest value.
    Min,
    /// Largest value.
    Max,
    /// Arithmetic mean.
    Mean,
    /// Number of samples.
    Count,
    /// Sum of values.
    Sum,
    /// Last value in time order.
    Last,
    /// Linear-interpolation percentile, `0.0 ..= 100.0`.
    ///
    /// The rank is clamped into `[0, 100]` (a NaN rank yields no row).
    /// Every window edge case is well-defined: an empty window produces
    /// no row (like every other aggregate), a single-point window
    /// returns that point for any rank, and non-finite sample values
    /// are ordered with IEEE total order instead of panicking.
    Percentile(f64),
}

impl Aggregate {
    fn apply(&self, values: &mut [f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        match self {
            Aggregate::Min => values.iter().copied().reduce(f64::min),
            Aggregate::Max => values.iter().copied().reduce(f64::max),
            Aggregate::Mean => Some(values.iter().sum::<f64>() / values.len() as f64),
            Aggregate::Count => Some(values.len() as f64),
            Aggregate::Sum => Some(values.iter().sum()),
            Aggregate::Last => values.last().copied(),
            Aggregate::Percentile(p) => {
                if p.is_nan() {
                    return None;
                }
                if values.len() == 1 {
                    // Any percentile of one sample is that sample; skip
                    // the interpolation entirely so the edge cannot
                    // produce `values[0] + 0 * garbage` artifacts.
                    return Some(values[0]);
                }
                // Total order: NaN/±inf fields (possible via decoded
                // line protocol, which bypasses the builder's finite
                // check) sort deterministically instead of panicking.
                values.sort_by(|a, b| a.total_cmp(b));
                let pos = (p / 100.0).clamp(0.0, 1.0) * (values.len() - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                if lo == hi {
                    // Exact rank: no interpolation, so an infinite value
                    // comes back as itself rather than `inf - inf`.
                    return Some(values[lo]);
                }
                Some(values[lo] + (values[hi] - values[lo]) * (pos - lo as f64))
            }
        }
    }
}

/// One output row: window start time and aggregated value.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Window start (or range start for un-grouped queries).
    pub time: u64,
    /// Aggregated value.
    pub value: f64,
}

/// Result for one matching series.
#[derive(Debug, Clone)]
pub struct SeriesResult {
    /// The series' tags rendered as the canonical key.
    pub series_key: String,
    /// One row per non-empty window.
    pub rows: Vec<Row>,
}

/// A query under construction.
#[derive(Debug, Clone)]
pub struct Query {
    measurement: String,
    field: String,
    filters: Vec<(String, String)>,
    start: u64,
    end: u64,
    window: Option<u64>,
    aggregate: Aggregate,
}

impl Query {
    /// Selects `field` from `measurement` with a [`Aggregate::Last`]
    /// reduction over the full time range (override with the builders).
    pub fn select(measurement: impl Into<String>, field: impl Into<String>) -> Self {
        Self {
            measurement: measurement.into(),
            field: field.into(),
            filters: Vec::new(),
            start: 0,
            end: u64::MAX,
            window: None,
            aggregate: Aggregate::Last,
        }
    }

    /// Requires `tag == value` on matching series.
    pub fn r#where(mut self, tag: impl Into<String>, value: impl Into<String>) -> Self {
        self.filters.push((tag.into(), value.into()));
        self
    }

    /// Restricts to samples with `start <= time < end`.
    pub fn time_range(mut self, start: u64, end: u64) -> Self {
        assert!(start <= end, "inverted time range");
        self.start = start;
        self.end = end;
        self
    }

    /// Groups samples into fixed windows of `seconds`.
    pub fn group_by_time(mut self, seconds: u64) -> Self {
        assert!(seconds > 0, "zero window");
        self.window = Some(seconds);
        self
    }

    /// Sets the reduction.
    pub fn aggregate(mut self, agg: Aggregate) -> Self {
        self.aggregate = agg;
        self
    }

    /// Evaluates the query over one series' time-ordered samples. This
    /// single code path backs both [`Query::run`] and
    /// [`Query::run_snapshot`], which is what makes their results
    /// identical by construction.
    fn eval_series(&self, key: &str, samples: &[Sample]) -> Option<SeriesResult> {
        // Binary search the time range bounds.
        let lo = samples.partition_point(|(t, _)| *t < self.start);
        let hi = samples.partition_point(|(t, _)| *t < self.end);
        let in_range = &samples[lo..hi];

        let mut rows = Vec::new();
        match self.window {
            None => {
                let mut values: Vec<f64> = in_range
                    .iter()
                    .filter_map(|(_, f)| f.get(&self.field).copied())
                    .collect();
                if let Some(v) = self.aggregate.apply(&mut values) {
                    rows.push(Row {
                        time: self.start,
                        value: v,
                    });
                }
            }
            Some(w) => {
                let mut i = 0;
                while i < in_range.len() {
                    let window_start = in_range[i].0 / w * w;
                    let window_end = window_start + w;
                    let mut values = Vec::new();
                    while i < in_range.len() && in_range[i].0 < window_end {
                        if let Some(v) = in_range[i].1.get(&self.field) {
                            values.push(*v);
                        }
                        i += 1;
                    }
                    if let Some(v) = self.aggregate.apply(&mut values) {
                        rows.push(Row {
                            time: window_start,
                            value: v,
                        });
                    }
                }
            }
        }
        if rows.is_empty() {
            return None;
        }
        Some(SeriesResult {
            series_key: key.to_string(),
            rows,
        })
    }

    /// Runs the query against a database.
    ///
    /// Needs `&mut` only because reading a [`Db`] may finalize lazy
    /// sorts; pure read-side callers should take a [`Db::snapshot`]
    /// once and use [`Query::run_snapshot`], which borrows immutably
    /// and can serve any number of threads.
    pub fn run(&self, db: &mut Db) -> Vec<SeriesResult> {
        let mut out = Vec::new();
        for series in db.matching_series(&self.measurement, &self.filters) {
            let key = series.key().to_string();
            if let Some(res) = self.eval_series(&key, series.samples()) {
                out.push(res);
            }
        }
        out.sort_by(|a, b| a.series_key.cmp(&b.series_key));
        out
    }

    /// Runs the query against an immutable [`Snapshot`].
    ///
    /// Results are identical to [`Query::run`] over the database the
    /// snapshot was taken from — both paths share the same per-series
    /// evaluation and the same canonical result ordering.
    pub fn run_snapshot(&self, snap: &Snapshot) -> Vec<SeriesResult> {
        let mut out = Vec::new();
        for series in snap.matching_series(&self.measurement, &self.filters) {
            if let Some(res) = self.eval_series(series.key(), series.samples()) {
                out.push(res);
            }
        }
        out.sort_by(|a, b| a.series_key.cmp(&b.series_key));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn db_with_day() -> Db {
        let mut db = Db::new();
        // 24 hourly samples for two servers; server "a" dips at hour 20.
        for h in 0..24u64 {
            let mbps_a = if h == 20 { 100.0 } else { 400.0 + h as f64 };
            db.insert(
                Point::new("throughput", h * 3600)
                    .tag("server", "a")
                    .field("mbps", mbps_a),
            );
            db.insert(
                Point::new("throughput", h * 3600)
                    .tag("server", "b")
                    .field("mbps", 300.0),
            );
        }
        db
    }

    #[test]
    fn ungrouped_max() {
        let mut db = db_with_day();
        let res = Query::select("throughput", "mbps")
            .r#where("server", "a")
            .aggregate(Aggregate::Max)
            .run(&mut db);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].rows[0].value, 423.0);
    }

    #[test]
    fn grouped_by_six_hours() {
        let mut db = db_with_day();
        let res = Query::select("throughput", "mbps")
            .r#where("server", "a")
            .group_by_time(6 * 3600)
            .aggregate(Aggregate::Min)
            .run(&mut db);
        let rows = &res[0].rows;
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].time, 0);
        assert_eq!(rows[3].value, 100.0, "the hour-20 dip");
    }

    #[test]
    fn time_range_excludes_end() {
        let mut db = db_with_day();
        let res = Query::select("throughput", "mbps")
            .r#where("server", "b")
            .time_range(0, 3 * 3600)
            .aggregate(Aggregate::Count)
            .run(&mut db);
        assert_eq!(res[0].rows[0].value, 3.0);
    }

    #[test]
    fn all_series_when_unfiltered() {
        let mut db = db_with_day();
        let res = Query::select("throughput", "mbps")
            .aggregate(Aggregate::Count)
            .run(&mut db);
        assert_eq!(res.len(), 2);
        // Sorted by series key.
        assert!(res[0].series_key < res[1].series_key);
    }

    #[test]
    fn percentile_aggregate() {
        let mut db = Db::new();
        for (i, v) in (0..=100).enumerate() {
            db.insert(Point::new("m", i as u64).tag("s", "x").field("f", v as f64));
        }
        let res = Query::select("m", "f")
            .aggregate(Aggregate::Percentile(95.0))
            .run(&mut db);
        assert_eq!(res[0].rows[0].value, 95.0);
    }

    #[test]
    fn percentile_single_point_window_is_that_point() {
        let mut db = Db::new();
        db.insert(Point::new("m", 10).tag("s", "x").field("f", 7.5));
        for p in [0.0, 37.0, 50.0, 100.0] {
            let res = Query::select("m", "f")
                .aggregate(Aggregate::Percentile(p))
                .run(&mut db);
            assert_eq!(res[0].rows[0].value, 7.5, "p = {p}");
        }
        // Grouped path too: each hourly window holds exactly one point.
        let res = Query::select("m", "f")
            .group_by_time(3600)
            .aggregate(Aggregate::Percentile(95.0))
            .run(&mut db);
        assert_eq!(
            res[0].rows,
            vec![Row {
                time: 0,
                value: 7.5
            }]
        );
    }

    #[test]
    fn percentile_empty_window_yields_no_row() {
        // A series whose samples lack the queried field: the candidate
        // value set is empty in both the grouped and ungrouped paths.
        // The well-defined result is "no row", never a panic.
        let mut db = Db::new();
        db.insert(Point::new("m", 0).tag("s", "x").field("other", 1.0));
        for q in [
            Query::select("m", "f").aggregate(Aggregate::Percentile(50.0)),
            Query::select("m", "f")
                .group_by_time(60)
                .aggregate(Aggregate::Percentile(50.0)),
        ] {
            assert!(q.run(&mut db).is_empty());
        }
    }

    #[test]
    fn percentile_rank_is_clamped_and_nan_rank_yields_no_row() {
        let mut db = Db::new();
        for (t, v) in [(0u64, 1.0), (1, 2.0), (2, 3.0)] {
            db.insert(Point::new("m", t).tag("s", "x").field("f", v));
        }
        let run = |p: f64, db: &mut Db| {
            Query::select("m", "f")
                .aggregate(Aggregate::Percentile(p))
                .run(db)
        };
        assert_eq!(run(-10.0, &mut db)[0].rows[0].value, 1.0);
        assert_eq!(run(500.0, &mut db)[0].rows[0].value, 3.0);
        assert!(run(f64::NAN, &mut db).is_empty());
    }

    #[test]
    fn percentile_tolerates_non_finite_values() {
        // Non-finite fields can enter via decoded line protocol, which
        // builds Points directly; total_cmp orders them deterministically
        // (-inf first, NaN last) instead of panicking mid-sort.
        let mut db = Db::new();
        let mut p = Point::new("m", 0).tag("s", "x").field("f", 1.0);
        p.fields.insert("g".into(), f64::INFINITY);
        db.insert(p);
        let mut q = Point::new("m", 1).tag("s", "x").field("f", 2.0);
        q.fields.insert("g".into(), f64::NAN);
        db.insert(q);
        let res = Query::select("m", "g")
            .aggregate(Aggregate::Percentile(0.0))
            .run(&mut db);
        assert_eq!(res[0].rows[0].value, f64::INFINITY);
    }

    #[test]
    fn missing_field_yields_no_rows() {
        let mut db = db_with_day();
        let res = Query::select("throughput", "nonexistent")
            .aggregate(Aggregate::Mean)
            .run(&mut db);
        assert!(res.is_empty());
    }

    #[test]
    fn mean_and_sum_and_last() {
        let mut db = Db::new();
        for (t, v) in [(0u64, 1.0), (1, 2.0), (2, 6.0)] {
            db.insert(Point::new("m", t).tag("s", "x").field("f", v));
        }
        let mut run = |agg| Query::select("m", "f").aggregate(agg).run(&mut db)[0].rows[0].value;
        assert_eq!(run(Aggregate::Mean), 3.0);
        assert_eq!(run(Aggregate::Sum), 9.0);
        assert_eq!(run(Aggregate::Last), 6.0);
        assert_eq!(run(Aggregate::Min), 1.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        Query::select("m", "f").time_range(10, 5);
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn zero_window_panics() {
        Query::select("m", "f").group_by_time(0);
    }

    #[test]
    fn run_snapshot_is_identical_to_run() {
        let mut db = db_with_day();
        let queries = [
            Query::select("throughput", "mbps").aggregate(Aggregate::Max),
            Query::select("throughput", "mbps")
                .r#where("server", "a")
                .group_by_time(6 * 3600)
                .aggregate(Aggregate::Percentile(95.0)),
            Query::select("throughput", "mbps")
                .time_range(3600, 20 * 3600)
                .aggregate(Aggregate::Mean),
            Query::select("throughput", "nope").aggregate(Aggregate::Sum),
        ];
        let snap = db.snapshot();
        for q in &queries {
            let direct = q.run(&mut db);
            let snapped = q.run_snapshot(&snap);
            assert_eq!(direct.len(), snapped.len());
            for (d, s) in direct.iter().zip(&snapped) {
                assert_eq!(d.series_key, s.series_key);
                assert_eq!(d.rows, s.rows);
            }
        }
    }

    #[test]
    fn every_aggregate_on_a_single_point_is_well_defined() {
        // A serve client can send any aggregate against any series; a
        // one-sample series must answer all of them without artifacts.
        let mut db = Db::new();
        db.insert(Point::new("m", 7).tag("s", "x").field("f", 3.25));
        for (agg, want) in [
            (Aggregate::Min, 3.25),
            (Aggregate::Max, 3.25),
            (Aggregate::Mean, 3.25),
            (Aggregate::Count, 1.0),
            (Aggregate::Sum, 3.25),
            (Aggregate::Last, 3.25),
            (Aggregate::Percentile(0.0), 3.25),
            (Aggregate::Percentile(50.0), 3.25),
            (Aggregate::Percentile(100.0), 3.25),
        ] {
            let res = Query::select("m", "f").aggregate(agg).run(&mut db);
            assert_eq!(res[0].rows[0].value, want, "{agg:?}");
        }
    }

    #[test]
    fn every_aggregate_on_an_empty_value_set_yields_no_row() {
        // The series exists but lacks the queried field: the candidate
        // set is empty for every aggregate, grouped or not.
        let mut db = Db::new();
        db.insert(Point::new("m", 0).tag("s", "x").field("other", 1.0));
        for agg in [
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Mean,
            Aggregate::Count,
            Aggregate::Sum,
            Aggregate::Last,
            Aggregate::Percentile(95.0),
        ] {
            assert!(
                Query::select("m", "f")
                    .aggregate(agg)
                    .run(&mut db)
                    .is_empty(),
                "{agg:?} ungrouped"
            );
            assert!(
                Query::select("m", "f")
                    .group_by_time(60)
                    .aggregate(agg)
                    .run(&mut db)
                    .is_empty(),
                "{agg:?} grouped"
            );
        }
    }

    #[test]
    fn finite_inputs_guarantee_finite_outputs() {
        // NaN-free guarantee: for finite stored fields, no aggregate at
        // any rank may produce NaN or infinity — serve responses encode
        // through JSON, where non-finite values degrade to null.
        let mut db = Db::new();
        for (t, v) in [(0u64, -5.0), (1, 0.0), (2, 1e300), (3, -1e300), (4, 2.5)] {
            db.insert(Point::new("m", t).tag("s", "x").field("f", v));
        }
        let ranks = [0.0, 0.1, 33.3, 50.0, 66.7, 99.9, 100.0, -3.0, 250.0];
        for agg in [
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Mean,
            Aggregate::Count,
            Aggregate::Last,
        ]
        .into_iter()
        .chain(ranks.into_iter().map(Aggregate::Percentile))
        {
            for q in [
                Query::select("m", "f").aggregate(agg),
                Query::select("m", "f").group_by_time(2).aggregate(agg),
            ] {
                for series in q.run(&mut db) {
                    for row in &series.rows {
                        assert!(row.value.is_finite(), "{agg:?} -> {}", row.value);
                    }
                }
            }
        }
    }

    #[test]
    fn windows_align_to_epoch() {
        let mut db = Db::new();
        db.insert(Point::new("m", 3599).tag("s", "x").field("f", 1.0));
        db.insert(Point::new("m", 3600).tag("s", "x").field("f", 2.0));
        let res = Query::select("m", "f")
            .group_by_time(3600)
            .aggregate(Aggregate::Count)
            .run(&mut db);
        let rows = &res[0].rows;
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].time, 0);
        assert_eq!(rows[1].time, 3600);
    }
}
