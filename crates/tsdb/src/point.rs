//! The data model: measurements, tags, fields, timestamps.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// One timestamped observation: a measurement name, a sorted tag set
/// (indexing dimensions), numeric fields, and a timestamp in seconds.
///
/// Tags are `BTreeMap`s so the serialised series key is canonical.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Point {
    /// Measurement name, e.g. `"throughput"`.
    pub measurement: String,
    /// Indexed dimensions, e.g. `region=us-west1, server=ookla-123`.
    pub tags: BTreeMap<String, String>,
    /// Numeric observations, e.g. `mbps=412.3, loss=0.002`.
    pub fields: BTreeMap<String, f64>,
    /// Seconds since the campaign epoch.
    pub time: u64,
    /// Lazily memoized canonical series key. Built on the first
    /// [`Self::series_key`] call and reused afterwards, so repeated
    /// keying of the same point is free. The builder methods reset it;
    /// callers that mutate `tags` directly must key the point only
    /// afterwards (all in-tree constructors go through the builder).
    #[serde(skip)]
    key: OnceLock<String>,
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        // The memoized key is derived state: ignore it.
        self.measurement == other.measurement
            && self.tags == other.tags
            && self.fields == other.fields
            && self.time == other.time
    }
}

impl Point {
    /// Starts building a point for `measurement` at `time`.
    pub fn new(measurement: impl Into<String>, time: u64) -> Self {
        Self {
            measurement: measurement.into(),
            tags: BTreeMap::new(),
            fields: BTreeMap::new(),
            time,
            key: OnceLock::new(),
        }
    }

    /// Assembles a point from already-built parts (decoders, benches).
    pub fn from_parts(
        measurement: String,
        tags: BTreeMap<String, String>,
        fields: BTreeMap<String, f64>,
        time: u64,
    ) -> Self {
        Self {
            measurement,
            tags,
            fields,
            time,
            key: OnceLock::new(),
        }
    }

    /// Adds a tag.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.insert(key.into(), value.into());
        self.key.take(); // the memoized series key is stale now
        self
    }

    /// Adds a field. Non-finite values are rejected.
    ///
    /// # Panics
    /// Panics on NaN/infinite values: persisting them silently would
    /// poison downstream aggregates.
    pub fn field(mut self, key: impl Into<String>, value: f64) -> Self {
        assert!(value.is_finite(), "field value must be finite");
        self.fields.insert(key.into(), value);
        self
    }

    /// The canonical series key: `measurement,tag1=v1,tag2=v2`.
    /// Memoized: the string is built once per point and then borrowed.
    pub fn series_key(&self) -> &str {
        self.key
            .get_or_init(|| series_key(&self.measurement, &self.tags))
    }
}

/// Builds a canonical series key from a measurement and tag set.
pub fn series_key(measurement: &str, tags: &BTreeMap<String, String>) -> String {
    let mut key = String::with_capacity(measurement.len() + tags.len() * 16);
    key.push_str(measurement);
    for (k, v) in tags {
        key.push(',');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let p = Point::new("throughput", 3600)
            .tag("region", "us-west1")
            .tag("server", "s1")
            .field("mbps", 412.5)
            .field("loss", 0.01);
        assert_eq!(p.measurement, "throughput");
        assert_eq!(p.tags.len(), 2);
        assert_eq!(p.fields["mbps"], 412.5);
        assert_eq!(p.time, 3600);
    }

    #[test]
    fn series_key_is_canonical_regardless_of_insertion_order() {
        let a = Point::new("m", 0).tag("b", "2").tag("a", "1");
        let b = Point::new("m", 0).tag("a", "1").tag("b", "2");
        assert_eq!(a.series_key(), b.series_key());
        assert_eq!(a.series_key(), "m,a=1,b=2");
    }

    #[test]
    fn series_key_without_tags_is_measurement() {
        assert_eq!(Point::new("cpu", 0).series_key(), "cpu");
    }

    #[test]
    fn series_key_memoized_and_reset_by_tag() {
        let p = Point::new("m", 0).tag("a", "1");
        assert_eq!(p.series_key(), "m,a=1");
        // Memoized: same borrow again.
        assert_eq!(p.series_key(), "m,a=1");
        // Builder invalidates the cache.
        let p = p.tag("b", "2");
        assert_eq!(p.series_key(), "m,a=1,b=2");
    }

    #[test]
    fn clone_and_eq_ignore_memoized_key() {
        let a = Point::new("m", 0).tag("a", "1").field("x", 1.0);
        let b = a.clone();
        let _ = a.series_key(); // memoize on one side only
        assert_eq!(a, b);
        assert_eq!(b.series_key(), "m,a=1");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_field_rejected() {
        Point::new("m", 0).field("x", f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_field_rejected() {
        Point::new("m", 0).field("x", f64::INFINITY);
    }

    #[test]
    fn duplicate_tag_overwrites() {
        let p = Point::new("m", 0).tag("a", "1").tag("a", "2");
        assert_eq!(p.tags["a"], "2");
    }
}
