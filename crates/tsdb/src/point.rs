//! The data model: measurements, tags, fields, timestamps.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One timestamped observation: a measurement name, a sorted tag set
/// (indexing dimensions), numeric fields, and a timestamp in seconds.
///
/// Tags are `BTreeMap`s so the serialised series key is canonical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Measurement name, e.g. `"throughput"`.
    pub measurement: String,
    /// Indexed dimensions, e.g. `region=us-west1, server=ookla-123`.
    pub tags: BTreeMap<String, String>,
    /// Numeric observations, e.g. `mbps=412.3, loss=0.002`.
    pub fields: BTreeMap<String, f64>,
    /// Seconds since the campaign epoch.
    pub time: u64,
}

impl Point {
    /// Starts building a point for `measurement` at `time`.
    pub fn new(measurement: impl Into<String>, time: u64) -> Self {
        Self {
            measurement: measurement.into(),
            tags: BTreeMap::new(),
            fields: BTreeMap::new(),
            time,
        }
    }

    /// Adds a tag.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.insert(key.into(), value.into());
        self
    }

    /// Adds a field. Non-finite values are rejected.
    ///
    /// # Panics
    /// Panics on NaN/infinite values: persisting them silently would
    /// poison downstream aggregates.
    pub fn field(mut self, key: impl Into<String>, value: f64) -> Self {
        assert!(value.is_finite(), "field value must be finite");
        self.fields.insert(key.into(), value);
        self
    }

    /// The canonical series key: `measurement,tag1=v1,tag2=v2`.
    pub fn series_key(&self) -> String {
        series_key(&self.measurement, &self.tags)
    }
}

/// Builds a canonical series key from a measurement and tag set.
pub fn series_key(measurement: &str, tags: &BTreeMap<String, String>) -> String {
    let mut key = String::with_capacity(measurement.len() + tags.len() * 16);
    key.push_str(measurement);
    for (k, v) in tags {
        key.push(',');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let p = Point::new("throughput", 3600)
            .tag("region", "us-west1")
            .tag("server", "s1")
            .field("mbps", 412.5)
            .field("loss", 0.01);
        assert_eq!(p.measurement, "throughput");
        assert_eq!(p.tags.len(), 2);
        assert_eq!(p.fields["mbps"], 412.5);
        assert_eq!(p.time, 3600);
    }

    #[test]
    fn series_key_is_canonical_regardless_of_insertion_order() {
        let a = Point::new("m", 0).tag("b", "2").tag("a", "1");
        let b = Point::new("m", 0).tag("a", "1").tag("b", "2");
        assert_eq!(a.series_key(), b.series_key());
        assert_eq!(a.series_key(), "m,a=1,b=2");
    }

    #[test]
    fn series_key_without_tags_is_measurement() {
        assert_eq!(Point::new("cpu", 0).series_key(), "cpu");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_field_rejected() {
        Point::new("m", 0).field("x", f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_field_rejected() {
        Point::new("m", 0).field("x", f64::INFINITY);
    }

    #[test]
    fn duplicate_tag_overwrites() {
        let p = Point::new("m", 0).tag("a", "1").tag("a", "2");
        assert_eq!(p.tags["a"], "2");
    }
}
