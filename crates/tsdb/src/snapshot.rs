//! Immutable, generation-stamped snapshots of a [`Db`](crate::Db).
//!
//! A [`Snapshot`] is the read side of the serve architecture: the writer
//! calls [`Db::snapshot`](crate::Db::snapshot) at publish barriers, and
//! any number of readers
//! query the returned value concurrently without touching the writer's
//! lock again — everything inside is behind `Arc`s, so cloning a
//! snapshot is two pointer bumps and queries never block ingest.
//!
//! Snapshots are *epoch/generation-based*: every materialisation of a
//! changed database bumps [`Snapshot::generation`], and an unchanged
//! database returns the previous snapshot (same generation, same Arcs).
//! The generation therefore uniquely identifies snapshot *content* for
//! a given `(seed, config)` pair, which is what makes deterministic
//! query responses cacheable forever (see `clasp-serve`).
//!
//! Construction reuses per-series [`SeriesSnap`] Arcs for series that
//! have not changed since the last snapshot, so the steady-state cost of
//! a publish is proportional to the data that actually arrived, not to
//! the whole database.

use crate::db::Sample;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One series frozen at snapshot time: the shared tag set plus its
/// time-ordered samples. Immutable by construction — the samples were
/// sorted before the snapshot was taken.
#[derive(Debug)]
pub struct SeriesSnap {
    /// Measurement name.
    pub measurement: String,
    /// The series' tag set.
    pub tags: BTreeMap<String, String>,
    /// Interned canonical series key (`measurement,tag1=v1,...`).
    key: String,
    /// Time-ordered samples.
    samples: Vec<Sample>,
}

impl SeriesSnap {
    pub(crate) fn new(
        measurement: String,
        tags: BTreeMap<String, String>,
        key: String,
        samples: Vec<Sample>,
    ) -> Self {
        Self {
            measurement,
            tags,
            key,
            samples,
        }
    }

    /// The canonical series key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Time-ordered view of the samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// An immutable view of the whole database at one publish epoch.
///
/// Cheap to clone (`Arc` internally); safe to hand to any number of
/// reader threads. See the [module docs](self) for the generation
/// contract.
#[derive(Debug, Clone)]
pub struct Snapshot {
    generation: u64,
    points: u64,
    series: Arc<Vec<Arc<SeriesSnap>>>,
}

impl Snapshot {
    pub(crate) fn new(generation: u64, points: u64, series: Vec<Arc<SeriesSnap>>) -> Self {
        Self {
            generation,
            points,
            series: Arc::new(series),
        }
    }

    /// The publish epoch this snapshot materialises. Strictly
    /// monotonically increasing across *changed* snapshots of one
    /// [`Db`](crate::Db); repeated snapshots of an unchanged database
    /// share a generation (and the underlying storage).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total points across all series at snapshot time.
    pub fn points(&self) -> u64 {
        self.points
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// All series, in first-insertion order (i.e. by
    /// [`SeriesId`](crate::SeriesId)).
    pub fn series(&self) -> impl Iterator<Item = &SeriesSnap> {
        self.series.iter().map(|s| s.as_ref())
    }

    /// The series of a measurement that match all `filters`
    /// (tag key → required value), in first-insertion order.
    pub fn matching_series(
        &self,
        measurement: &str,
        filters: &[(String, String)],
    ) -> Vec<&SeriesSnap> {
        self.series
            .iter()
            .filter(|s| {
                s.measurement == measurement
                    && filters
                        .iter()
                        .all(|(k, v)| s.tags.get(k).is_some_and(|tv| tv == v))
            })
            .map(|s| s.as_ref())
            .collect()
    }

    /// Looks a series up by measurement and exact tag set.
    pub fn series_by_tags(
        &self,
        measurement: &str,
        tags: &BTreeMap<String, String>,
    ) -> Option<&SeriesSnap> {
        self.series
            .iter()
            .find(|s| s.measurement == measurement && s.tags == *tags)
            .map(|s| s.as_ref())
    }

    /// Distinct values of `tag` across all series of a measurement.
    pub fn tag_values(&self, measurement: &str, tag: &str) -> Vec<String> {
        let mut vals: Vec<String> = self
            .series
            .iter()
            .filter(|s| s.measurement == measurement)
            .filter_map(|s| s.tags.get(tag).cloned())
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use crate::db::Db;
    use crate::point::Point;

    fn point(server: &str, t: u64, mbps: f64) -> Point {
        Point::new("throughput", t)
            .tag("server", server)
            .field("mbps", mbps)
    }

    #[test]
    fn snapshot_freezes_state() {
        let mut db = Db::new();
        db.insert(point("a", 0, 1.0));
        let snap = db.snapshot();
        db.insert(point("a", 1, 2.0));
        db.insert(point("b", 0, 3.0));
        // The snapshot still sees the world as it was.
        assert_eq!(snap.series_count(), 1);
        assert_eq!(snap.points(), 1);
        let later = db.snapshot();
        assert_eq!(later.series_count(), 2);
        assert_eq!(later.points(), 3);
        assert!(later.generation() > snap.generation());
    }

    #[test]
    fn unchanged_db_reuses_generation_and_storage() {
        let mut db = Db::new();
        db.insert(point("a", 0, 1.0));
        let s1 = db.snapshot();
        let s2 = db.snapshot();
        assert_eq!(s1.generation(), s2.generation());
        // Same Arc underneath, not merely equal content.
        let a1 = s1.matching_series("throughput", &[])[0] as *const _;
        let a2 = s2.matching_series("throughput", &[])[0] as *const _;
        assert_eq!(a1, a2);
    }

    #[test]
    fn untouched_series_are_shared_across_generations() {
        let mut db = Db::new();
        db.insert(point("a", 0, 1.0));
        db.insert(point("b", 0, 2.0));
        let s1 = db.snapshot();
        db.insert(point("b", 1, 3.0));
        let s2 = db.snapshot();
        assert!(s2.generation() > s1.generation());
        let tags = |n: &str| [("server".to_string(), n.to_string())];
        // "a" did not change: the snapshots share its storage.
        let a1 = s1.matching_series("throughput", &tags("a"))[0] as *const _;
        let a2 = s2.matching_series("throughput", &tags("a"))[0] as *const _;
        assert_eq!(a1, a2);
        // "b" did change: fresh storage, updated contents.
        let b1 = s1.matching_series("throughput", &tags("b"))[0];
        let b2 = s2.matching_series("throughput", &tags("b"))[0];
        assert_ne!(b1 as *const _, b2 as *const _);
        assert_eq!(b1.len(), 1);
        assert_eq!(b2.len(), 2);
    }

    #[test]
    fn snapshot_samples_are_time_sorted() {
        let mut db = Db::new();
        db.insert(point("a", 100, 1.0));
        db.insert(point("a", 50, 2.0));
        db.insert(point("a", 75, 3.0));
        let snap = db.snapshot();
        let s = snap.matching_series("throughput", &[])[0];
        let times: Vec<u64> = s.samples().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![50, 75, 100]);
    }

    #[test]
    fn matching_and_tag_values_mirror_db_semantics() {
        let mut db = Db::new();
        for s in ["b", "a", "c"] {
            db.insert(point(s, 0, 1.0));
        }
        let snap = db.snapshot();
        assert_eq!(snap.tag_values("throughput", "server"), vec!["a", "b", "c"]);
        assert!(snap.tag_values("latency", "server").is_empty());
        assert_eq!(
            snap.matching_series("throughput", &[("server".to_string(), "a".to_string())])
                .len(),
            1
        );
        let tags: std::collections::BTreeMap<String, String> =
            [("server".to_string(), "b".to_string())].into();
        assert!(snap.series_by_tags("throughput", &tags).is_some());
        assert!(snap.series_by_tags("latency", &tags).is_none());
    }

    #[test]
    fn retention_invalidates_series_cache() {
        let mut db = Db::new();
        for t in 0..10 {
            db.insert(point("a", t, 1.0));
        }
        let s1 = db.snapshot();
        crate::rollup::enforce_retention(&mut db, "throughput", 5);
        let s2 = db.snapshot();
        assert_eq!(s1.matching_series("throughput", &[])[0].len(), 10);
        assert_eq!(s2.matching_series("throughput", &[])[0].len(), 5);
        assert!(s2.generation() > s1.generation());
    }
}
