//! A small embedded time-series database.
//!
//! CLASP "index\[es\] the processed results into InfluxDB and visualize\[s\]
//! them with Grafana" (§3.3). This crate supplies the same role locally:
//! tagged, timestamped points, an Influx-style line protocol for durable
//! export, and a query engine with tag filtering, time ranges, group-by
//! window aggregation, and percentile aggregators — enough to express the
//! whole congestion analysis as queries.
//!
//! * [`point`] — the data model ([`Point`], tags, fields);
//! * [`line`](mod@line) — line-protocol encode/parse;
//! * [`db`] — storage and series indexing ([`Db`]);
//! * [`snapshot`] — immutable generation-stamped views for lock-free
//!   concurrent reads ([`Snapshot`]);
//! * [`query`] — the query builder and aggregation engine;
//! * [`rollup`] — continuous-query-style downsampling and retention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod line;
pub mod point;
pub mod query;
pub mod rollup;
pub mod snapshot;

pub use db::{Db, DbStats, Sample, Series, SeriesId, Tail};
pub use point::Point;
pub use query::{Aggregate, Query, Row, SeriesResult};
pub use snapshot::{SeriesSnap, Snapshot};
