//! Influx-style line protocol: `measurement,tag=v field=1.5 1620000000`.
//!
//! Used to persist raw campaign results to the storage bucket and read
//! them back in the analysis pipeline. The dialect is a subset of
//! InfluxDB's: numeric fields only, whitespace-free tag values (the writer
//! escapes spaces as `\ `), integer-second timestamps.

use crate::point::Point;
use std::collections::BTreeMap;

/// Serialises a point to one protocol line.
///
/// ```
/// let p = tsdb::Point::new("speedtest", 3600)
///     .tag("server", "ookla-1")
///     .field("download", 412.5);
/// let line = tsdb::line::encode(&p);
/// assert_eq!(line, "speedtest,server=ookla-1 download=412.5 3600");
/// assert_eq!(tsdb::line::decode(&line).unwrap(), p);
/// ```
pub fn encode(p: &Point) -> String {
    let mut out = String::new();
    out.push_str(&escape(&p.measurement));
    for (k, v) in &p.tags {
        out.push(',');
        out.push_str(&escape(k));
        out.push('=');
        out.push_str(&escape(v));
    }
    out.push(' ');
    let mut first = true;
    for (k, v) in &p.fields {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&escape(k));
        out.push('=');
        out.push_str(&format_float(*v));
    }
    out.push(' ');
    out.push_str(&p.time.to_string());
    out
}

fn format_float(v: f64) -> String {
    // Shortest representation that round-trips.
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace(' ', "\\ ")
        .replace(',', "\\,")
        .replace('=', "\\=")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Errors from parsing a protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Line had fewer than three space-separated sections.
    MissingSection,
    /// A tag or field was not `key=value`.
    BadKeyValue(String),
    /// A field value was not a number.
    BadNumber(String),
    /// The timestamp was not an integer.
    BadTimestamp(String),
    /// The field set was empty.
    NoFields,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::MissingSection => write!(f, "line has fewer than 3 sections"),
            ParseError::BadKeyValue(s) => write!(f, "bad key=value pair: {s}"),
            ParseError::BadNumber(s) => write!(f, "bad numeric value: {s}"),
            ParseError::BadTimestamp(s) => write!(f, "bad timestamp: {s}"),
            ParseError::NoFields => write!(f, "no fields"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Splits on `sep` outside escape sequences.
fn split_unescaped(s: &str, sep: char) -> Vec<String> {
    let mut parts = vec![String::new()];
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            let part = parts.last_mut().expect("non-empty");
            part.push(c);
            if let Some(n) = chars.next() {
                part.push(n);
            }
        } else if c == sep {
            parts.push(String::new());
        } else {
            parts.last_mut().expect("non-empty").push(c);
        }
    }
    parts
}

/// Parses one protocol line back into a [`Point`].
pub fn decode(line: &str) -> Result<Point, ParseError> {
    let sections = split_unescaped(line.trim(), ' ');
    if sections.len() != 3 {
        return Err(ParseError::MissingSection);
    }
    let head = split_unescaped(&sections[0], ',');
    let measurement = unescape(&head[0]);
    let mut tags = BTreeMap::new();
    for kv in &head[1..] {
        let pair = split_unescaped(kv, '=');
        if pair.len() != 2 {
            return Err(ParseError::BadKeyValue(kv.clone()));
        }
        tags.insert(unescape(&pair[0]), unescape(&pair[1]));
    }
    let mut fields = BTreeMap::new();
    for kv in split_unescaped(&sections[1], ',') {
        let pair = split_unescaped(&kv, '=');
        if pair.len() != 2 {
            return Err(ParseError::BadKeyValue(kv.clone()));
        }
        let v: f64 = pair[1]
            .parse()
            .map_err(|_| ParseError::BadNumber(pair[1].clone()))?;
        fields.insert(unescape(&pair[0]), v);
    }
    if fields.is_empty() {
        return Err(ParseError::NoFields);
    }
    let time: u64 = sections[2]
        .parse()
        .map_err(|_| ParseError::BadTimestamp(sections[2].clone()))?;
    Ok(Point::from_parts(measurement, tags, fields, time))
}

/// Encodes many points, one per line.
pub fn encode_batch(points: &[Point]) -> String {
    let mut out = String::new();
    for p in points {
        out.push_str(&encode(p));
        out.push('\n');
    }
    out
}

/// Decodes a batch, skipping blank lines; fails on the first bad line.
pub fn decode_batch(text: &str) -> Result<Vec<Point>, ParseError> {
    decode_batch_lines(text).map_err(|(_, e)| e)
}

/// Like [`decode_batch`], but a failure also reports the 1-based line
/// number of the offending line, so ingestion errors can name exactly
/// which record of which object was malformed.
pub fn decode_batch_lines(text: &str) -> Result<Vec<Point>, (usize, ParseError)> {
    let mut points = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        points.push(decode(line).map_err(|e| (i + 1, e))?);
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Point {
        Point::new("throughput", 1234)
            .tag("region", "us-west1")
            .tag("server", "s 1") // space to exercise escaping
            .field("mbps", 412.5)
            .field("loss", 0.01)
    }

    #[test]
    fn encode_shape() {
        let line = encode(&sample());
        assert!(line.starts_with("throughput,region=us-west1,server=s\\ 1 "));
        assert!(line.ends_with(" 1234"));
        assert!(line.contains("mbps=412.5"));
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let q = decode(&encode(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_special_characters() {
        let p = Point::new("m,x=y", 7)
            .tag("k=1", "v,2 z")
            .field("f 1", -3.25e-4);
        let q = decode(&encode(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn integer_valued_field_roundtrips_as_float() {
        let p = Point::new("m", 0).field("n", 100.0);
        let line = encode(&p);
        assert!(line.contains("n=100.0"), "{line}");
        assert_eq!(decode(&line).unwrap().fields["n"], 100.0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode("nope"), Err(ParseError::MissingSection));
        assert!(matches!(decode("m f=x 0"), Err(ParseError::BadNumber(_))));
        assert!(matches!(
            decode("m f=1 tomorrow"),
            Err(ParseError::BadTimestamp(_))
        ));
        assert!(matches!(
            decode("m,oops f=1 0"),
            Err(ParseError::BadKeyValue(_))
        ));
    }

    #[test]
    fn batch_roundtrip_skips_blanks() {
        let pts = vec![sample(), Point::new("m", 1).field("x", 1.0)];
        let text = format!("\n{}\n\n", encode_batch(&pts));
        let back = decode_batch(&text).unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn batch_fails_on_bad_line() {
        assert!(decode_batch("m f=1 0\nbroken\n").is_err());
    }

    #[test]
    fn batch_error_carries_line_number() {
        // Line 3 is the bad one; blank lines still count toward numbering.
        let text = "m f=1 0\n\nbroken\nm f=2 1\n";
        match decode_batch_lines(text) {
            Err((line, ParseError::MissingSection)) => assert_eq!(line, 3),
            other => panic!("expected line-3 failure, got {other:?}"),
        }
        assert_eq!(decode_batch_lines("m f=1 0\n").unwrap().len(), 1);
    }
}
