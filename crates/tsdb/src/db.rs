//! Storage: series-indexed, time-ordered point store, with an optional
//! bounded tail for streaming consumers.

use crate::point::Point;
use crate::snapshot::{SeriesSnap, Snapshot};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, Weak};

/// A stored sample inside one series: `(time, fields)`.
pub type Sample = (u64, BTreeMap<String, f64>);

/// Stable identifier of one series within a [`Db`]: the index of the
/// series in first-insertion order. Interning series keys down to ids
/// keeps the hot ingest path free of per-point `String` allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u32);

/// One series: the shared tag set plus its time-ordered samples.
#[derive(Debug, Clone)]
pub struct Series {
    /// Measurement name.
    pub measurement: String,
    /// The series' tag set.
    pub tags: BTreeMap<String, String>,
    /// Interned canonical series key (built once, at registration).
    key: String,
    /// Time-ordered samples. Out-of-order inserts are re-sorted lazily.
    samples: Vec<Sample>,
    sorted: bool,
    /// Frozen copy of this series from the last [`Db::snapshot`],
    /// invalidated by any mutation. Its presence doubles as the
    /// per-series "unchanged" bit, so an idle series costs nothing at
    /// the next snapshot (the Arc is reused wholesale).
    snap: Option<Arc<SeriesSnap>>,
}

impl Series {
    fn new(measurement: String, tags: BTreeMap<String, String>, key: String) -> Self {
        Self {
            measurement,
            tags,
            key,
            samples: Vec::new(),
            sorted: true,
            snap: None,
        }
    }

    /// The canonical series key (`measurement,tag1=v1,...`), interned
    /// when the series was first seen.
    pub fn key(&self) -> &str {
        &self.key
    }

    fn push(&mut self, time: u64, fields: BTreeMap<String, f64>) {
        if let Some((last, _)) = self.samples.last() {
            if time < *last {
                self.sorted = false;
            }
        }
        self.samples.push((time, fields));
        self.snap = None;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by_key(|(t, _)| *t);
            self.sorted = true;
        }
    }

    /// Time-ordered view of the samples.
    pub fn samples(&mut self) -> &[Sample] {
        self.ensure_sorted();
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Drops samples with `time < horizon`; returns how many were
    /// removed (used by retention enforcement).
    pub fn drop_before(&mut self, horizon: u64) -> u64 {
        self.ensure_sorted();
        let cut = self.samples.partition_point(|(t, _)| *t < horizon);
        self.samples.drain(..cut);
        if cut > 0 {
            self.snap = None;
        }
        cut as u64
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Hashes a (measurement, tags) pair without materialising the canonical
/// key string. `DefaultHasher::new()` is deterministic (fixed keys), so
/// the same series always lands in the same index bucket.
fn key_hash(measurement: &str, tags: &BTreeMap<String, String>) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    measurement.hash(&mut h);
    for (k, v) in tags {
        k.hash(&mut h);
        v.hash(&mut h);
    }
    h.finish()
}

/// Ingest-side observability counters for a [`Db`].
///
/// Plain data, updated under locks the hot paths already hold, so
/// scraping them costs nothing. All values are deterministic functions
/// of the insert/publish call sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Calls to [`Db::insert_batch`].
    pub insert_batches: u64,
    /// Points mirrored into tail buffers (excludes overflow).
    pub points_published: u64,
    /// Deepest any tail buffer has been at publish time.
    pub tail_peak_depth: u64,
    /// Points lost to backpressure across all tails.
    pub tail_overflow: u64,
    /// Tails handed out by [`Db::subscribe`].
    pub tails_opened: u64,
    /// Tails pruned from the publish list (dropped or closed).
    pub tails_closed: u64,
}

/// Shared state of one tail subscription: a bounded FIFO of inserted
/// points plus an overflow tally.
#[derive(Debug)]
struct TailShared {
    buf: VecDeque<Point>,
    capacity: usize,
    overflow: u64,
    /// Set when the subscriber goes away ([`Tail::close`] or last
    /// handle dropped); the publisher prunes closed tails eagerly.
    closed: bool,
    /// Live [`Tail`] handles sharing this subscription. Tracked
    /// explicitly (not via `Arc::strong_count`) because the publisher
    /// holds a temporary strong reference while it mirrors a point: a
    /// strong-count check in `Drop` would race with publish and skip
    /// the close, leaving a zombie subscription that counts phantom
    /// overflow forever.
    handles: usize,
}

impl TailShared {
    /// Buffers `p` if there is room; returns whether it was buffered.
    fn offer(&mut self, p: &Point) -> bool {
        if self.buf.len() < self.capacity {
            self.buf.push_back(p.clone());
            true
        } else {
            self.overflow += 1;
            false
        }
    }
}

/// A bounded subscription to a [`Db`]'s insert stream.
///
/// Every point inserted after [`Db::subscribe`] is appended to the
/// tail's buffer. The buffer is *bounded*: when the consumer falls more
/// than `capacity` points behind, further inserts are counted in
/// [`Tail::overflow`] instead of buffered — the publisher never blocks
/// and never reorders, so an overflowing consumer sees a gap, knows its
/// exact size, and can fall back to a batch rescan. Dropping the tail
/// unsubscribes it.
#[derive(Debug)]
pub struct Tail {
    shared: Arc<Mutex<TailShared>>,
}

impl Clone for Tail {
    fn clone(&self) -> Self {
        self.shared.lock().expect("tail lock").handles += 1;
        Tail {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Tail {
    /// Pops the oldest buffered point, if any.
    pub fn try_recv(&self) -> Option<Point> {
        self.shared.lock().expect("tail lock").buf.pop_front()
    }

    /// Drains every buffered point into `f`, in insert order; returns
    /// how many were delivered.
    pub fn drain(&self, mut f: impl FnMut(Point)) -> u64 {
        let mut n = 0;
        // Take the whole buffer in one lock so `f` runs unlocked.
        let batch = {
            let mut shared = self.shared.lock().expect("tail lock");
            std::mem::take(&mut shared.buf)
        };
        for p in batch {
            f(p);
            n += 1;
        }
        n
    }

    /// Points currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().expect("tail lock").buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points lost to backpressure (inserted while the buffer was full).
    pub fn overflow(&self) -> u64 {
        self.shared.lock().expect("tail lock").overflow
    }

    /// Unsubscribes now: the buffer is cleared and the publisher prunes
    /// this tail on its next publish instead of feeding a buffer nobody
    /// will drain. Dropping the last handle does the same implicitly.
    pub fn close(&self) {
        let mut shared = self.shared.lock().expect("tail lock");
        shared.closed = true;
        shared.buf.clear();
    }
}

impl Drop for Tail {
    fn drop(&mut self) {
        // Only the last handle closes the subscription; clones share
        // it. The handle count lives under the subscription lock, so a
        // drop racing a publish serializes: either the publisher sees
        // `closed` and prunes without counting, or it finished its
        // offer before the subscriber went away — never a phantom
        // overflow against a dead tail.
        let Ok(mut shared) = self.shared.lock() else {
            return;
        };
        shared.handles -= 1;
        if shared.handles == 0 {
            shared.closed = true;
            shared.buf.clear();
        }
    }
}

/// The database: an in-memory, single-writer time-series store.
#[derive(Debug, Default)]
pub struct Db {
    series: Vec<Series>,
    /// Key-hash → candidate series ids (collisions resolved by exact
    /// measurement + tag comparison). Lookups never build a key string.
    index: HashMap<u64, Vec<u32>>,
    /// Live tail subscriptions; dead ones are pruned on insert.
    tails: Vec<Weak<Mutex<TailShared>>>,
    /// Points accepted in total.
    pub points_written: u64,
    /// Ingest/publish counters (see [`DbStats`]).
    pub stats: DbStats,
    /// Publish epoch of the last *changed* snapshot (see
    /// [`Db::snapshot`]).
    generation: u64,
    /// The last snapshot taken, returned again while the database is
    /// unchanged so repeated publishes of an idle store are free.
    last_snapshot: Option<Snapshot>,
}

impl Db {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes a bounded tail to the insert stream: every subsequent
    /// [`Db::insert`] is mirrored into the returned [`Tail`] until it
    /// holds `capacity` undrained points, after which new points are
    /// counted as overflow rather than buffered.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn subscribe(&mut self, capacity: usize) -> Tail {
        assert!(capacity > 0, "tail capacity must be positive");
        let shared = Arc::new(Mutex::new(TailShared {
            buf: VecDeque::new(),
            capacity,
            overflow: 0,
            closed: false,
            handles: 1,
        }));
        self.tails.push(Arc::downgrade(&shared));
        self.stats.tails_opened += 1;
        Tail { shared }
    }

    /// Mirrors an inserted point to the live tails.
    fn publish(&mut self, p: &Point) {
        if self.tails.is_empty() {
            return;
        }
        let stats = &mut self.stats;
        self.tails.retain(|weak| {
            let Some(shared) = weak.upgrade() else {
                stats.tails_closed += 1;
                return false;
            };
            let mut shared = shared.lock().expect("tail lock");
            if shared.closed {
                stats.tails_closed += 1;
                return false;
            }
            if shared.offer(p) {
                stats.points_published += 1;
                stats.tail_peak_depth = stats.tail_peak_depth.max(shared.buf.len() as u64);
            } else {
                stats.tail_overflow += 1;
            }
            true
        });
    }

    /// Mirrors a whole batch to the live tails, acquiring each
    /// subscriber's lock once per batch rather than once per point —
    /// the per-point order every tail observes is unchanged.
    ///
    /// A subscriber whose buffer is already full costs O(1) for the
    /// whole batch (one bulk overflow add) instead of a per-point
    /// offer/overflow walk, so a stalled consumer cannot drag
    /// `publish_batch` down to per-point work.
    fn publish_batch(&mut self, points: &[Point]) {
        if self.tails.is_empty() || points.is_empty() {
            return;
        }
        let stats = &mut self.stats;
        self.tails.retain(|weak| {
            let Some(shared) = weak.upgrade() else {
                stats.tails_closed += 1;
                return false;
            };
            let mut shared = shared.lock().expect("tail lock");
            if shared.closed {
                stats.tails_closed += 1;
                return false;
            }
            let free = shared.capacity.saturating_sub(shared.buf.len());
            let take = free.min(points.len());
            for p in &points[..take] {
                shared.buf.push_back(p.clone());
            }
            let spill = (points.len() - take) as u64;
            shared.overflow += spill;
            stats.tail_overflow += spill;
            stats.points_published += take as u64;
            stats.tail_peak_depth = stats.tail_peak_depth.max(shared.buf.len() as u64);
            true
        });
    }

    /// Resolves (or registers) the series a point belongs to. The only
    /// allocation on a hit is none at all; a miss interns the canonical
    /// key once for the lifetime of the series.
    fn series_id_or_create(&mut self, p: &Point) -> SeriesId {
        let h = key_hash(&p.measurement, &p.tags);
        if let Some(candidates) = self.index.get(&h) {
            for &i in candidates {
                let s = &self.series[i as usize];
                if s.measurement == p.measurement && s.tags == p.tags {
                    return SeriesId(i);
                }
            }
        }
        let i = u32::try_from(self.series.len()).expect("series count fits u32");
        self.series.push(Series::new(
            p.measurement.clone(),
            p.tags.clone(),
            p.series_key().to_string(),
        ));
        self.index.entry(h).or_default().push(i);
        SeriesId(i)
    }

    /// Looks up the id of an existing series.
    pub fn series_id(
        &self,
        measurement: &str,
        tags: &BTreeMap<String, String>,
    ) -> Option<SeriesId> {
        let h = key_hash(measurement, tags);
        self.index.get(&h)?.iter().copied().find_map(|i| {
            let s = &self.series[i as usize];
            (s.measurement == measurement && s.tags == *tags).then_some(SeriesId(i))
        })
    }

    /// Routes a point to its series without mirroring it to the tails.
    fn insert_unpublished(&mut self, p: Point) {
        let id = self.series_id_or_create(&p);
        self.series[id.0 as usize].push(p.time, p.fields);
        self.points_written += 1;
    }

    /// Inserts one point, routing it to its series.
    pub fn insert(&mut self, p: Point) {
        self.publish(&p);
        self.insert_unpublished(p);
    }

    /// Inserts many points. Tail subscribers are locked once for the
    /// whole batch, so batched flushes don't serialize on subscriber
    /// locks point by point.
    pub fn insert_batch(&mut self, points: impl IntoIterator<Item = Point>) {
        let points: Vec<Point> = points.into_iter().collect();
        self.stats.insert_batches += 1;
        self.publish_batch(&points);
        for p in points {
            self.insert_unpublished(p);
        }
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Freezes the current contents into an immutable, cheaply-clonable
    /// [`Snapshot`] for lock-free concurrent reads.
    ///
    /// Generations are content-addressed per [`Db`]: a changed database
    /// yields a new snapshot with `generation + 1`; an unchanged one
    /// returns the previous snapshot (same generation, same storage).
    /// Series untouched since the last snapshot share their frozen
    /// storage across generations, so the cost of a snapshot tracks the
    /// freshly-ingested data, not the store size.
    ///
    /// Needs `&mut self` only to finalize lazy sorts and maintain the
    /// per-series caches; the returned value is pure read-side state.
    pub fn snapshot(&mut self) -> Snapshot {
        let unchanged = self
            .last_snapshot
            .as_ref()
            .is_some_and(|s| s.series_count() == self.series.len())
            && self.series.iter().all(|s| s.snap.is_some());
        if unchanged {
            return self.last_snapshot.clone().expect("checked above");
        }
        let mut frozen = Vec::with_capacity(self.series.len());
        let mut points = 0u64;
        for s in &mut self.series {
            s.ensure_sorted();
            points += s.samples.len() as u64;
            let snap = s.snap.get_or_insert_with(|| {
                Arc::new(SeriesSnap::new(
                    s.measurement.clone(),
                    s.tags.clone(),
                    s.key.clone(),
                    s.samples.clone(),
                ))
            });
            frozen.push(Arc::clone(snap));
        }
        self.generation += 1;
        let snap = Snapshot::new(self.generation, points, frozen);
        self.last_snapshot = Some(snap.clone());
        snap
    }

    /// Looks a series up by measurement and exact tag set.
    pub fn series_mut(
        &mut self,
        measurement: &str,
        tags: &BTreeMap<String, String>,
    ) -> Option<&mut Series> {
        let id = self.series_id(measurement, tags)?;
        Some(&mut self.series[id.0 as usize])
    }

    /// Iterates over the series of a measurement that match all `filters`
    /// (tag key → required value). Yields mutable references because
    /// reading samples may trigger a lazy re-sort.
    pub fn matching_series(
        &mut self,
        measurement: &str,
        filters: &[(String, String)],
    ) -> Vec<&mut Series> {
        self.series
            .iter_mut()
            .filter(|s| {
                s.measurement == measurement
                    && filters
                        .iter()
                        .all(|(k, v)| s.tags.get(k).is_some_and(|tv| tv == v))
            })
            .collect()
    }

    /// Distinct values of `tag` across all series of a measurement.
    pub fn tag_values(&self, measurement: &str, tag: &str) -> Vec<String> {
        let mut vals: Vec<String> = self
            .series
            .iter()
            .filter(|s| s.measurement == measurement)
            .filter_map(|s| s.tags.get(tag).cloned())
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::series_key;

    fn point(server: &str, t: u64, mbps: f64) -> Point {
        Point::new("throughput", t)
            .tag("server", server)
            .field("mbps", mbps)
    }

    #[test]
    fn insert_routes_to_series() {
        let mut db = Db::new();
        db.insert(point("a", 0, 1.0));
        db.insert(point("a", 10, 2.0));
        db.insert(point("b", 5, 3.0));
        assert_eq!(db.series_count(), 2);
        assert_eq!(db.points_written, 3);
        let tags: BTreeMap<String, String> = [("server".to_string(), "a".to_string())].into();
        let s = db.series_mut("throughput", &tags).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn series_ids_follow_first_insertion_order() {
        let mut db = Db::new();
        db.insert(point("b", 0, 1.0));
        db.insert(point("a", 1, 2.0));
        db.insert(point("b", 2, 3.0));
        let b_tags: BTreeMap<String, String> = [("server".to_string(), "b".to_string())].into();
        let a_tags: BTreeMap<String, String> = [("server".to_string(), "a".to_string())].into();
        assert_eq!(db.series_id("throughput", &b_tags), Some(SeriesId(0)));
        assert_eq!(db.series_id("throughput", &a_tags), Some(SeriesId(1)));
        assert_eq!(db.series_id("latency", &b_tags), None);
    }

    #[test]
    fn interned_key_matches_canonical_form() {
        let mut db = Db::new();
        db.insert(
            Point::new("throughput", 0)
                .tag("server", "a")
                .tag("region", "r1")
                .field("mbps", 1.0),
        );
        let all = db.matching_series("throughput", &[]);
        assert_eq!(all[0].key(), "throughput,region=r1,server=a");
        assert_eq!(
            all[0].key(),
            series_key(&all[0].measurement, &all[0].tags.clone())
        );
    }

    #[test]
    fn out_of_order_inserts_are_sorted_on_read() {
        let mut db = Db::new();
        db.insert(point("a", 100, 1.0));
        db.insert(point("a", 50, 2.0));
        db.insert(point("a", 75, 3.0));
        let tags: BTreeMap<String, String> = [("server".to_string(), "a".to_string())].into();
        let s = db.series_mut("throughput", &tags).unwrap();
        let times: Vec<u64> = s.samples().iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![50, 75, 100]);
    }

    #[test]
    fn matching_series_filters_by_tags() {
        let mut db = Db::new();
        db.insert(
            Point::new("throughput", 0)
                .tag("region", "us-west1")
                .tag("server", "a")
                .field("mbps", 1.0),
        );
        db.insert(
            Point::new("throughput", 0)
                .tag("region", "us-east1")
                .tag("server", "b")
                .field("mbps", 2.0),
        );
        let matched = db.matching_series(
            "throughput",
            &[("region".to_string(), "us-west1".to_string())],
        );
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].tags["server"], "a");
    }

    #[test]
    fn matching_series_requires_measurement() {
        let mut db = Db::new();
        db.insert(point("a", 0, 1.0));
        assert!(db.matching_series("latency", &[]).is_empty());
    }

    #[test]
    fn tag_values_are_sorted_distinct() {
        let mut db = Db::new();
        for s in ["b", "a", "b", "c"] {
            db.insert(point(s, 0, 1.0));
        }
        assert_eq!(db.tag_values("throughput", "server"), vec!["a", "b", "c"]);
        assert!(db.tag_values("throughput", "nope").is_empty());
    }

    #[test]
    fn tail_receives_inserts_in_order() {
        let mut db = Db::new();
        db.insert(point("a", 0, 1.0)); // before subscribe: not mirrored
        let tail = db.subscribe(16);
        db.insert(point("a", 10, 2.0));
        db.insert(point("b", 5, 3.0));
        let mut seen = Vec::new();
        assert_eq!(
            tail.drain(|p| seen.push((p.time, p.tags["server"].clone()))),
            2
        );
        assert_eq!(seen, vec![(10, "a".to_string()), (5, "b".to_string())]);
        assert!(tail.is_empty());
        assert_eq!(tail.overflow(), 0);
    }

    #[test]
    fn tail_bounded_with_overflow_count() {
        let mut db = Db::new();
        let tail = db.subscribe(2);
        for t in 0..5 {
            db.insert(point("a", t, 1.0));
        }
        // The first two buffered, the other three counted as overflow.
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.overflow(), 3);
        assert_eq!(tail.try_recv().unwrap().time, 0);
        // Draining frees capacity for later inserts.
        db.insert(point("a", 9, 1.0));
        let times: Vec<u64> = std::iter::from_fn(|| tail.try_recv())
            .map(|p| p.time)
            .collect();
        assert_eq!(times, vec![1, 9]);
    }

    #[test]
    fn batch_insert_mirrors_to_tails_in_order() {
        let mut db = Db::new();
        let tail = db.subscribe(3);
        db.insert_batch((0..5).map(|t| point("a", t, 1.0)));
        // Capacity bounds the batch exactly as per-point publishing.
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.overflow(), 2);
        let times: Vec<u64> = std::iter::from_fn(|| tail.try_recv())
            .map(|p| p.time)
            .collect();
        assert_eq!(times, vec![0, 1, 2]);
        assert_eq!(db.points_written, 5);
    }

    #[test]
    fn dropped_tail_unsubscribes() {
        let mut db = Db::new();
        let tail = db.subscribe(4);
        drop(tail);
        db.insert(point("a", 0, 1.0)); // must not panic or leak
        let live = db.subscribe(4);
        db.insert(point("a", 1, 2.0));
        assert_eq!(live.len(), 1);
        // Batch inserts prune dropped tails too.
        drop(live);
        db.insert_batch(vec![point("a", 2, 3.0)]);
        assert_eq!(db.points_written, 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_tail_rejected() {
        Db::new().subscribe(0);
    }

    #[test]
    fn closed_tail_is_pruned_while_handle_lives() {
        let mut db = Db::new();
        let tail = db.subscribe(2);
        db.insert(point("a", 0, 1.0));
        assert_eq!(tail.len(), 1);
        tail.close();
        // Close clears the buffer and the next publish prunes the tail,
        // so a stalled-but-alive subscriber can't absorb publish work.
        assert_eq!(tail.len(), 0);
        db.insert(point("a", 1, 2.0));
        db.insert(point("a", 2, 3.0));
        assert_eq!(tail.len(), 0);
        assert_eq!(db.stats.tails_closed, 1);
        assert_eq!(db.stats.tails_opened, 1);
    }

    #[test]
    fn dropping_one_clone_keeps_subscription() {
        let mut db = Db::new();
        let tail = db.subscribe(4);
        let clone = tail.clone();
        drop(clone);
        db.insert(point("a", 0, 1.0));
        assert_eq!(tail.len(), 1);
        drop(tail);
        db.insert(point("a", 1, 2.0));
        assert_eq!(db.stats.tails_closed, 1);
    }

    #[test]
    fn full_buffer_batch_is_bulk_overflow() {
        let mut db = Db::new();
        let tail = db.subscribe(2);
        db.insert_batch((0..5).map(|t| point("a", t, 1.0)));
        assert_eq!((tail.len(), tail.overflow()), (2, 3));
        // Buffer already full: the whole second batch overflows in one
        // O(1) bulk add, order and counts identical to per-point offers.
        db.insert_batch((5..9).map(|t| point("a", t, 1.0)));
        assert_eq!((tail.len(), tail.overflow()), (2, 7));
        let times: Vec<u64> = std::iter::from_fn(|| tail.try_recv())
            .map(|p| p.time)
            .collect();
        assert_eq!(times, vec![0, 1]);
        assert_eq!(db.stats.tail_overflow, 7);
        assert_eq!(db.stats.points_published, 2);
    }

    #[test]
    fn stats_track_batches_and_peak_depth() {
        let mut db = Db::new();
        assert_eq!(db.stats, DbStats::default());
        let tail = db.subscribe(8);
        db.insert_batch((0..3).map(|t| point("a", t, 1.0)));
        db.insert_batch((3..5).map(|t| point("a", t, 1.0)));
        assert_eq!(db.stats.insert_batches, 2);
        assert_eq!(db.stats.points_published, 5);
        assert_eq!(db.stats.tail_peak_depth, 5);
        tail.drain(|_| {});
        db.insert(point("a", 9, 1.0));
        // Peak is a high-water mark: draining doesn't lower it.
        assert_eq!(db.stats.tail_peak_depth, 5);
        assert_eq!(db.stats.tail_overflow, 0);
    }

    #[test]
    fn drop_during_publish_never_counts_phantom_overflow() {
        let mut db = Db::new();
        let tail = db.subscribe(1);
        db.insert(point("a", 0, 1.0)); // fills the one-slot buffer
                                       // Simulate the publisher's mid-publish state: it holds a
                                       // temporary strong reference (the upgraded Weak) at the moment
                                       // the subscriber drops its last handle. A strong-count-based
                                       // close check would see two owners here, skip the close, and
                                       // leave a zombie subscription counting overflow forever.
        let publisher_ref = Arc::clone(&tail.shared);
        drop(tail);
        drop(publisher_ref);
        let before = db.stats.tail_overflow;
        db.insert(point("a", 1, 1.0)); // prunes the closed tail
        db.insert_batch((2..10).map(|t| point("a", t, 1.0)));
        assert_eq!(db.stats.tail_overflow, before, "phantom overflow");
        assert_eq!(db.stats.tails_closed, 1);
    }

    #[test]
    fn concurrent_drop_stops_overflow_accrual() {
        // Stress the same race with a real publisher thread: once the
        // drop has been observed (the tail is pruned), later inserts
        // must never add overflow.
        let db = Arc::new(Mutex::new(Db::new()));
        let tail = db.lock().unwrap().subscribe(1);
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for t in 0..500u64 {
                    db.lock().unwrap().insert(point("a", t, 1.0));
                }
            })
        };
        drop(tail); // races the writer's publishes
        writer.join().unwrap();
        let mut db = db.lock().unwrap();
        // One more publish is guaranteed to observe the drop and prune.
        db.insert(point("a", 1000, 1.0));
        assert_eq!(db.stats.tails_closed, 1);
        let settled = db.stats.tail_overflow;
        db.insert_batch((500..600).map(|t| point("a", t, 1.0)));
        assert_eq!(db.stats.tail_overflow, settled, "phantom overflow");
    }

    #[test]
    fn clone_handles_are_counted_not_guessed() {
        let mut db = Db::new();
        let tail = db.subscribe(2);
        let clone = tail.clone();
        // An outstanding foreign Arc (publisher mid-publish) must not
        // keep the subscription alive once both handles are gone.
        let foreign = Arc::clone(&tail.shared);
        drop(tail);
        db.insert(point("a", 0, 1.0));
        assert_eq!(clone.len(), 1, "one handle left: still subscribed");
        drop(clone);
        drop(foreign);
        db.insert(point("a", 1, 2.0));
        assert_eq!(db.stats.tails_closed, 1);
        assert_eq!(db.stats.points_published, 1);
    }

    #[test]
    fn different_tag_sets_are_distinct_series() {
        let mut db = Db::new();
        db.insert(point("a", 0, 1.0));
        db.insert(
            Point::new("throughput", 0)
                .tag("server", "a")
                .tag("tier", "premium")
                .field("mbps", 2.0),
        );
        assert_eq!(db.series_count(), 2);
    }
}
