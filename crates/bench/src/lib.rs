//! Shared fixtures for the benchmark suite.
//!
//! The paper-scale world and campaign take seconds to build, so the
//! benches construct them once per process and time only the regeneration
//! of each table/figure on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

/// Scaled-down campaign days used by the figure benches: long enough for
/// every statistic to be well-defined, short enough to keep the bench
/// suite minutes-scale. The analysis binaries use the full 153 days.
pub const BENCH_DAYS: u64 = 7;

static WORLD: OnceLock<clasp_core::world::World> = OnceLock::new();

/// The shared full-scale world.
pub fn world() -> &'static clasp_core::world::World {
    WORLD.get_or_init(analysis::harness::paper_world)
}

/// Runs a fresh bench-scale campaign (callers that mutate the result need
/// their own copy; the db is consumed mutably by the analyses).
pub fn campaign() -> clasp_core::campaign::CampaignResult {
    analysis::harness::quick_campaign(world(), BENCH_DAYS)
}

/// Environment metadata stamped into every `BENCH_*.json` summary, so
/// recorded numbers can be compared apples-to-apples across machines
/// and toolchains: the rustc that built the bench, the machine's
/// available parallelism, and the seed / worker count the bench ran
/// with.
pub fn environment(seed: u64, jobs: u64) -> serde_json::Map {
    let mut m = serde_json::Map::new();
    m.insert("rustc".into(), rustc_version().into());
    m.insert(
        "available_parallelism".into(),
        (std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1))
        .into(),
    );
    m.insert("seed".into(), seed.into());
    m.insert("jobs".into(), jobs.into());
    m
}

/// `rustc --version` of the toolchain (honouring `$RUSTC`), or
/// `"unknown"` when the compiler cannot be invoked.
fn rustc_version() -> String {
    std::process::Command::new(std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into()))
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}
