//! Shared fixtures for the benchmark suite.
//!
//! The paper-scale world and campaign take seconds to build, so the
//! benches construct them once per process and time only the regeneration
//! of each table/figure on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

/// Scaled-down campaign days used by the figure benches: long enough for
/// every statistic to be well-defined, short enough to keep the bench
/// suite minutes-scale. The analysis binaries use the full 153 days.
pub const BENCH_DAYS: u64 = 7;

static WORLD: OnceLock<clasp_core::world::World> = OnceLock::new();

/// The shared full-scale world.
pub fn world() -> &'static clasp_core::world::World {
    WORLD.get_or_init(analysis::harness::paper_world)
}

/// Runs a fresh bench-scale campaign (callers that mutate the result need
/// their own copy; the db is consumed mutably by the analyses).
pub fn campaign() -> clasp_core::campaign::CampaignResult {
    analysis::harness::quick_campaign(world(), BENCH_DAYS)
}
