//! Serve load bench: 64 concurrent readers + 8 tail subscribers + one
//! sequenced campaign feeder against a single `clasp-serve` server.
//!
//! The bench is a correctness gate as much as a speed probe. While the
//! writer streams a bench-scale campaign through the ingest front door
//! (publishing every few batches so readers see the generation advance
//! live), it asserts:
//!
//! * **zero lost points** — the final published snapshot holds exactly
//!   the points fed;
//! * **exact tail accounting** — for every tail subscribed before the
//!   first batch, `drained + overflow == applied`; backpressure may
//!   drop points but never silently;
//! * **byte-stability under concurrency** — any two responses a reader
//!   gets for the same spec at the same generation are identical bytes.
//!
//! Like `campaign_parallel`, this bench times by hand (the vendored
//! criterion stand-in does not expose samples) and writes a JSON
//! summary to `target/BENCH_serve.json` (override with the
//! `CLASP_BENCH_JSON` environment variable), recording query latency
//! percentiles and the machine's available parallelism.
//!
//! ```text
//! cargo bench -p clasp-bench --bench serve_load            # measure
//! cargo bench -p clasp-bench --bench serve_load -- --test  # smoke
//! ```

use analysis::harness::PAPER_SEED;
use clasp_bench::world;
use clasp_serve::{Client, LocalTransport, QuerySpec, Server, ServerConfig};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsdb::{Aggregate, Point};

const READERS: usize = 64;
const TAILS: usize = 8;
const TAIL_CAPACITY: usize = 4096;
const BATCH: usize = 512;
const PUBLISH_EVERY: usize = 4;

/// The fixed reader query rotation: campaign-shaped specs of varying
/// cost. Indexed by `(reader, iteration)` so the mix is deterministic.
fn spec(i: usize) -> QuerySpec {
    match i % 4 {
        0 => QuerySpec::select("speedtest", "download")
            .r#where("method", "topo")
            .group_by_time(3600)
            .aggregate(Aggregate::Percentile(95.0)),
        1 => QuerySpec::select("speedtest", "upload").aggregate(Aggregate::Mean),
        2 => QuerySpec::select("speedtest", "latency")
            .group_by_time(86400)
            .aggregate(Aggregate::Percentile(5.0)),
        _ => QuerySpec::select("speedtest", "download").aggregate(Aggregate::Count),
    }
}

/// Flattens a campaign database snapshot back into its point stream.
fn campaign_points(days: u64) -> Vec<Point> {
    let mut res = analysis::harness::quick_campaign(world(), days);
    let snap = res.db.snapshot();
    let mut points = Vec::with_capacity(snap.points() as usize);
    for series in snap.series() {
        for (time, fields) in series.samples() {
            points.push(Point::from_parts(
                series.measurement.clone(),
                series.tags.clone(),
                fields.clone(),
                *time,
            ));
        }
    }
    points
}

struct ReaderReport {
    latencies: Vec<f64>,
    queries: u64,
}

/// One reader: query in rotation until the feeder finishes, timing
/// each call and asserting same-generation responses never diverge.
/// A short pause between queries keeps 64 readers concurrent without
/// starving the single writer of CPU on small machines.
fn reader(server: Arc<Server>, idx: usize, done: Arc<AtomicBool>) -> ReaderReport {
    let mut client = Client::new(format!("reader-{idx:03}"), LocalTransport::new(server));
    let mut seen: BTreeMap<(usize, u64), String> = BTreeMap::new();
    let mut latencies = Vec::new();
    let mut queries = 0u64;
    let mut i = idx; // stagger the rotation start per reader
    while !done.load(Ordering::Acquire) {
        let s = spec(i);
        let t = Instant::now();
        let (v, bytes) = client.query(&s).expect("queries cannot fail under load");
        latencies.push(t.elapsed().as_secs_f64());
        queries += 1;
        let generation = v
            .get("generation")
            .and_then(Value::as_u64)
            .expect("query responses carry a generation");
        match seen.get(&(i % 4, generation)) {
            Some(prev) => assert_eq!(
                prev, &bytes,
                "reader {idx}: same spec, same generation, different bytes"
            ),
            None => {
                seen.insert((i % 4, generation), bytes);
            }
        }
        i += 1;
        std::thread::sleep(Duration::from_micros(500));
    }
    ReaderReport { latencies, queries }
}

struct TailReport {
    drained: u64,
    overflow: u64,
}

/// One tail subscriber: drains continuously. The per-tail overflow
/// counter is cumulative, so only the final poll's value matters.
fn tail(server: Arc<Server>, id: u64, done: Arc<AtomicBool>) -> TailReport {
    let mut drained = 0u64;
    loop {
        let (points, _of, _remaining) = server.poll(id, 8192).expect("tail stays registered");
        drained += points.len() as u64;
        if points.is_empty() {
            if done.load(Ordering::Acquire) {
                // `done` is set after the final publish, so one more
                // empty poll means the buffer is truly dry.
                let (rest, overflow, _) = server.poll(id, 8192).expect("tail stays registered");
                drained += rest.len() as u64;
                if rest.is_empty() {
                    return TailReport { drained, overflow };
                }
            } else {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    }
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            smoke = true;
        }
    }
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Smoke keeps the full 64+8 thread structure — that is what the
    // gate is about — and shrinks only the fed workload.
    let days = if smoke { 1 } else { clasp_bench::BENCH_DAYS };
    let mut points = campaign_points(days);
    if smoke {
        points.truncate(4 * BATCH * PUBLISH_EVERY);
    }
    let total = points.len() as u64;
    println!("serve_load: {total} campaign points, {READERS} readers, {TAILS} tails");

    let server = Arc::new(Server::new(ServerConfig {
        seed: PAPER_SEED,
        config_hash: days,
        ..ServerConfig::default()
    }));
    let done = Arc::new(AtomicBool::new(false));

    // Tails subscribe before the first batch so their accounting spans
    // the whole stream.
    let tail_ids: Vec<u64> = (0..TAILS)
        .map(|_| server.subscribe(TAIL_CAPACITY).expect("subscribe"))
        .collect();
    let tail_threads: Vec<_> = tail_ids
        .iter()
        .map(|&id| {
            let srv = Arc::clone(&server);
            let flag = Arc::clone(&done);
            std::thread::spawn(move || tail(srv, id, flag))
        })
        .collect();
    let reader_threads: Vec<_> = (0..READERS)
        .map(|idx| {
            let srv = Arc::clone(&server);
            let flag = Arc::clone(&done);
            std::thread::spawn(move || reader(srv, idx, flag))
        })
        .collect();

    // The single logical writer: sequenced batches, periodic barriers.
    let t0 = Instant::now();
    let mut feeder = Client::new("feeder", LocalTransport::new(Arc::clone(&server)));
    let mut publishes = 0u64;
    for (i, batch) in points.chunks(BATCH).enumerate() {
        feeder.ingest(batch.to_vec()).expect("ingest");
        if (i + 1) % PUBLISH_EVERY == 0 {
            feeder.publish().expect("publish");
            publishes += 1;
        }
    }
    feeder.publish().expect("final publish");
    publishes += 1;
    let ingest_secs = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);

    let mut latencies = Vec::new();
    let mut queries = 0u64;
    for t in reader_threads {
        let r = t.join().expect("reader thread");
        latencies.extend(r.latencies);
        queries += r.queries;
    }
    let mut tails_drained = 0u64;
    let mut tails_overflow = 0u64;
    for t in tail_threads {
        let r = t.join().expect("tail thread");
        // Exact per-tail accounting: delivered or counted, never lost.
        assert_eq!(
            r.drained + r.overflow,
            total,
            "tail saw {} drained + {} overflow of {total} applied",
            r.drained,
            r.overflow
        );
        tails_drained += r.drained;
        tails_overflow += r.overflow;
    }
    for id in tail_ids {
        server.unsubscribe(id).expect("unsubscribe");
    }

    // Zero lost points: the published snapshot is exactly the stream.
    let snap = server.snapshot();
    assert_eq!(snap.points(), total, "published points != fed points");

    let p50 = clasp_stats::percentile(&latencies, 50.0).unwrap_or(0.0);
    let p95 = clasp_stats::percentile(&latencies, 95.0).unwrap_or(0.0);
    let cache = server.cache_stats();
    println!(
        "serve_load: ingest {ingest_secs:.3}s ({publishes} publishes, generation {}), \
         {queries} queries (p50 {:.1}us p95 {:.1}us), cache {}/{} hit/miss, \
         tails drained {tails_drained} overflow {tails_overflow}",
        snap.generation(),
        p50 * 1e6,
        p95 * 1e6,
        cache.hits,
        cache.misses,
    );

    let mut summary = Map::new();
    summary.insert("bench".into(), "serve_load".into());
    summary.insert("seed".into(), PAPER_SEED.into());
    summary.insert("days".into(), days.into());
    summary.insert("smoke".into(), smoke.into());
    summary.insert("available_parallelism".into(), parallelism.into());
    summary.insert(
        "environment".into(),
        Value::Object(clasp_bench::environment(PAPER_SEED, READERS as u64)),
    );
    summary.insert("readers".into(), READERS.into());
    summary.insert("tails".into(), TAILS.into());
    summary.insert("points".into(), total.into());
    summary.insert("publishes".into(), publishes.into());
    summary.insert("generation".into(), snap.generation().into());
    summary.insert("ingest_secs".into(), ingest_secs.into());
    summary.insert("queries".into(), queries.into());
    summary.insert("query_p50_secs".into(), p50.into());
    summary.insert("query_p95_secs".into(), p95.into());
    summary.insert("cache_hits".into(), cache.hits.into());
    summary.insert("cache_misses".into(), cache.misses.into());
    summary.insert("cache_evictions".into(), cache.evictions.into());
    summary.insert("tail_drained".into(), tails_drained.into());
    summary.insert("tail_overflow".into(), tails_overflow.into());
    let summary = Value::Object(summary);
    let path = std::env::var("CLASP_BENCH_JSON").unwrap_or_else(|_| {
        let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| {
            format!(
                "{}/../../target",
                std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
            )
        });
        format!("{target}/BENCH_serve.json")
    });
    if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(&summary)) {
        eprintln!("serve_load: could not write {path}: {e}");
    } else {
        println!("serve_load: summary written to {path}");
    }
}
