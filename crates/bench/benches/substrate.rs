//! Micro-benchmarks of the substrate crates: the discrete-event engine,
//! the packet-level TCP flow, routing-table computation, path
//! construction, the fluid TCP model, tsdb ingest/query, and bdrmap
//! inference.
//!
//! ```text
//! cargo bench -p clasp-bench --bench substrate
//! ```

use clasp_bench::world;
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::load::LoadModel;
use simnet::perf::{FlowSpec, PerfModel};
use simnet::routing::{Direction, Paths, Tier};
use simnet::time::SimTime;
use std::hint::black_box;

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("engine/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = simtcp::engine::EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule_in_ns((i * 7919) % 100_000, i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_packet_tcp(c: &mut Criterion) {
    let mut g = c.benchmark_group("simtcp");
    g.sample_size(10);
    g.bench_function("bulk_flow_2s_100mbps", |b| {
        let path = simtcp::flow::PathSpec::symmetric(vec![
            simtcp::link::LinkSpec::new(1000.0, 0.1, 256, 0.0),
            simtcp::link::LinkSpec::new(100.0, 10.0, 128, 0.001),
            simtcp::link::LinkSpec::new(1000.0, 0.1, 256, 0.0),
        ]);
        b.iter(|| {
            black_box(simtcp::flow::run_flow(
                &path,
                &simtcp::flow::FlowConfig {
                    duration_s: 2.0,
                    ..Default::default()
                },
            ))
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let w = world();
    c.bench_function("routing/table_one_destination", |b| {
        let dst = w.topo.non_cloud_ases().nth(100).unwrap();
        b.iter(|| {
            // Fresh Routing each iteration so the cache doesn't absorb
            // the work being measured.
            let r = simnet::routing::Routing::new(&w.topo);
            black_box(r.routes_to(dst))
        })
    });
    c.bench_function("routing/router_path_construction", |b| {
        let paths = Paths::new(&w.topo);
        let region = w.topo.cities.by_name("The Dalles").unwrap();
        let servers = w.registry.in_country("US");
        let mut i = 0;
        b.iter(|| {
            let s = servers[i % servers.len()];
            i += 1;
            black_box(paths.vm_host_path(
                region,
                w.topo.vm_ip(region, 0),
                s.as_id,
                s.city,
                s.ip,
                Tier::Premium,
                Direction::ToCloud,
            ))
        })
    });
}

fn bench_fluid_model(c: &mut Criterion) {
    let w = world();
    let paths = Paths::new(&w.topo);
    let perf = PerfModel::new(&w.topo, LoadModel::new(1));
    let region = w.topo.cities.by_name("The Dalles").unwrap();
    let s = w.registry.in_country("US")[10];
    let down = paths
        .vm_host_path(
            region,
            w.topo.vm_ip(region, 0),
            s.as_id,
            s.city,
            s.ip,
            Tier::Premium,
            Direction::ToCloud,
        )
        .unwrap();
    let up = paths
        .vm_host_path(
            region,
            w.topo.vm_ip(region, 0),
            s.as_id,
            s.city,
            s.ip,
            Tier::Premium,
            Direction::ToServer,
        )
        .unwrap();
    c.bench_function("perf/fluid_tcp_throughput", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 3600;
            black_box(perf.tcp_throughput(&down, &up, SimTime(t), &FlowSpec::download()))
        })
    });
}

fn bench_tsdb(c: &mut Criterion) {
    c.bench_function("tsdb/insert_10k_points", |b| {
        b.iter(|| {
            let mut db = tsdb::Db::new();
            for i in 0..10_000u64 {
                db.insert(
                    tsdb::Point::new("speedtest", i * 3600)
                        .tag("server", format!("s{}", i % 50))
                        .field("download", (i % 700) as f64),
                );
            }
            black_box(db.points_written)
        })
    });
    c.bench_function("tsdb/group_by_day_max", |b| {
        let mut db = tsdb::Db::new();
        for i in 0..50_000u64 {
            db.insert(
                tsdb::Point::new("speedtest", i * 3600)
                    .tag("server", format!("s{}", i % 50))
                    .field("download", (i % 700) as f64),
            );
        }
        b.iter(|| {
            black_box(
                tsdb::Query::select("speedtest", "download")
                    .group_by_time(86_400)
                    .aggregate(tsdb::Aggregate::Max)
                    .run(&mut db),
            )
        })
    });
}

fn bench_bdrmap(c: &mut Criterion) {
    let w = world();
    let mut g = c.benchmark_group("bdrmap");
    g.sample_size(10);
    // Pre-generate a trace corpus once; time the inference.
    let paths = Paths::new(&w.topo);
    let region = w.topo.cities.by_name("The Dalles").unwrap();
    let vm = w.topo.vm_ip(region, 0);
    let targets: Vec<nettools::scamper::Target> = w
        .topo
        .non_cloud_ases()
        .take(800)
        .map(|id| {
            let city = w.topo.as_node(id).home_city;
            nettools::scamper::Target {
                as_id: id,
                city,
                ip: w.topo.host_ip(id, city, 0),
            }
        })
        .collect();
    let traces = nettools::scamper::Scamper::default().trace_many(
        &paths,
        region,
        vm,
        &targets,
        Tier::Premium,
        nettools::traceroute::TraceMode::Paris,
        4,
        1,
    );
    g.bench_function("infer_3200_traces", |b| {
        let aliases = nettools::bdrmap::SimAliasResolver::new(&w.topo, 0.85);
        b.iter(|| {
            black_box(nettools::bdrmap::BdrMap::infer(
                &traces,
                &w.p2a,
                simnet::topology::CLOUD_ASN,
                &aliases,
            ))
        })
    });
    g.finish();
}

fn bench_prefix2as(c: &mut Criterion) {
    let w = world();
    c.bench_function("prefix2as/lookup", |b| {
        let ips: Vec<std::net::Ipv4Addr> =
            w.registry.servers.iter().map(|s| s.ip).take(1000).collect();
        let mut i = 0;
        b.iter(|| {
            let ip = ips[i % ips.len()];
            i += 1;
            black_box(w.p2a.lookup(ip))
        })
    });
}

criterion_group!(
    substrate,
    bench_event_engine,
    bench_packet_tcp,
    bench_routing,
    bench_fluid_model,
    bench_tsdb,
    bench_bdrmap,
    bench_prefix2as,
);
criterion_main!(substrate);
