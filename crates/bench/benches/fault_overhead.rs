//! Fault-injection overhead bench: the faultsim hooks threaded through
//! the campaign loop must cost nothing when no faults are configured.
//!
//! Three variants of the same 7-day bench-scale campaign:
//!
//! * `baseline`  — `FaultPlan::none()`, the default: every hook
//!   short-circuits on `is_none()` before hashing anything;
//! * `zero_rate` — a plan with a seed but all rates zero: hooks hash
//!   and compare, never fire (the worst pristine case);
//! * `moderate`  — the built-in 1% profile: faults inject, the
//!   orchestrator retries, the completeness report reconciles.
//!
//! `baseline` vs `zero_rate` bounds the overhead of the injection
//! points themselves; `moderate` shows the full resilience machinery is
//! still campaign-scale cheap.
//!
//! ```text
//! cargo bench -p clasp-bench --bench fault_overhead
//! ```

use analysis::harness::PAPER_SEED;
use clasp_bench::{world, BENCH_DAYS};
use clasp_core::campaign::{Campaign, CampaignConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use faultsim::FaultPlan;
use std::hint::black_box;

fn bench_config(plan: FaultPlan) -> CampaignConfig {
    let mut cfg = CampaignConfig::paper(PAPER_SEED);
    cfg.days = BENCH_DAYS;
    cfg.diff_days = cfg.diff_days.min(BENCH_DAYS);
    cfg.fault_plan = plan;
    cfg
}

fn bench_fault_overhead(c: &mut Criterion) {
    let w = world();
    let mut g = c.benchmark_group("fault_overhead");
    g.sample_size(10);
    g.bench_function("campaign_7d_baseline", |b| {
        b.iter(|| {
            black_box(
                Campaign::new(w, bench_config(FaultPlan::none()))
                    .runner()
                    .run()
                    .expect("fresh runs cannot fail"),
            )
        })
    });
    g.bench_function("campaign_7d_zero_rate", |b| {
        b.iter(|| {
            black_box(
                Campaign::new(w, bench_config(FaultPlan::uniform(PAPER_SEED, 0.0)))
                    .runner()
                    .run()
                    .expect("fresh runs cannot fail"),
            )
        })
    });
    g.bench_function("campaign_7d_moderate", |b| {
        let plan = FaultPlan::builtin("moderate").expect("built-in profile");
        b.iter(|| {
            black_box(
                Campaign::new(w, bench_config(plan.clone()))
                    .runner()
                    .run()
                    .expect("fresh runs cannot fail"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fault_overhead);
criterion_main!(benches);
