//! Streaming-engine benchmarks: the amortized per-point cost of online
//! detection, and the full-campaign comparison against the workflow it
//! replaces — rebuilding the batch `CongestionAnalysis` at every hourly
//! tick.
//!
//! * `ingest_4k_prefix`   — a fresh engine over the first 4096 points of
//!   the stream; divide by 4096 for the early-stream per-point cost.
//! * `stream_full_pass`   — one engine over the whole bench campaign
//!   (plus `finalize`); divide by the point count for the steady-state
//!   per-point cost. O(1) amortized ingest means the two per-point
//!   figures stay in the same ballpark even though the stream is ~20×
//!   longer.
//! * `batch_rebuild_tick` — one batch analysis over the full campaign
//!   db: the cost of a single end-of-campaign hourly tick under the
//!   rebuild-everything workflow.
//! * `hourly_batch_rebuilds_7d` — that tick run once per campaign hour
//!   (24 × 7). Each tick rebuilds over the *full* db rather than the
//!   prefix visible at that hour, which overstates the total by at most
//!   2× — the streaming pass has to beat it by far more than that
//!   margin (≥10×) for the comparison to count.
//!
//! ```text
//! cargo bench -p clasp-bench --bench stream_engine
//! ```

use clasp_bench::BENCH_DAYS;
use clasp_core::congestion::CongestionAnalysis;
use clasp_stream::{EngineConfig, StreamEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;
use tsdb::{Db, Point};

/// The bench campaign's speed-test points in arrival order (hour-major:
/// per-series time-ordered samples, stably merged by timestamp).
fn points() -> &'static [Point] {
    static PTS: OnceLock<Vec<Point>> = OnceLock::new();
    PTS.get_or_init(|| {
        let mut result = clasp_bench::campaign();
        let mut pts = Vec::new();
        for s in result.db.matching_series("speedtest", &[]) {
            let measurement = s.measurement.clone();
            let tags = s.tags.clone();
            for (t, fields) in s.samples() {
                pts.push(Point::from_parts(
                    measurement.clone(),
                    tags.clone(),
                    fields.clone(),
                    *t,
                ));
            }
        }
        pts.sort_by_key(|p| p.time);
        pts
    })
}

fn fresh_engine() -> StreamEngine {
    StreamEngine::new(
        EngineConfig::paper(),
        clasp_bench::world().server_utc_offsets(),
    )
}

fn bench_stream_engine(c: &mut Criterion) {
    let pts = points();
    let world = clasp_bench::world();
    // A private db copy for the batch side (build needs `&mut`).
    let mut db = Db::new();
    for p in pts {
        db.insert(p.clone());
    }
    let filters = vec![("method".to_string(), "topo".to_string())];

    let mut g = c.benchmark_group("stream_engine");
    g.sample_size(10);
    g.bench_function("ingest_4k_prefix", |b| {
        let prefix = &pts[..4096.min(pts.len())];
        b.iter(|| {
            let mut e = fresh_engine();
            for p in prefix {
                e.ingest(p);
            }
            black_box(e.stats().points_matched)
        })
    });
    g.bench_function("stream_full_pass", |b| {
        b.iter(|| {
            let mut e = fresh_engine();
            for p in pts {
                e.ingest(p);
            }
            e.finalize();
            black_box(e.labels().len())
        })
    });
    g.bench_function("batch_rebuild_tick", |b| {
        b.iter(|| {
            black_box(
                CongestionAnalysis::build(&mut db, world, "download", &filters)
                    .samples
                    .len(),
            )
        })
    });
    g.bench_function("hourly_batch_rebuilds_7d", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for _tick in 0..BENCH_DAYS * 24 {
                total += CongestionAnalysis::build(&mut db, world, "download", &filters)
                    .samples
                    .len();
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stream_engine);
criterion_main!(benches);
