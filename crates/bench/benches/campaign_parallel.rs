//! Parallel campaign scaling bench: wall-clock at `--jobs` 1/2/4/8 on
//! the bench-scale `paper` config and the `small` config.
//!
//! Every combination must produce the bit-identical final checkpoint —
//! the bench asserts that before it reports a single number, so a
//! "speedup" that diverges from the serial run fails loudly instead of
//! landing in the tracking data.
//!
//! Unlike the criterion-driven benches this one times whole campaign
//! runs by hand (the vendored criterion stand-in does not expose its
//! samples) and writes a JSON summary for `BENCH_*.json` tracking to
//! `target/BENCH_campaign_parallel.json` (override the path with the
//! `CLASP_BENCH_JSON` environment variable). The summary records the
//! machine's available parallelism: on a single-core runner the
//! speedups are expected to hover around 1.0 and the tracking side
//! should gate on `available_parallelism` before judging them.
//!
//! ```text
//! cargo bench -p clasp-bench --bench campaign_parallel            # measure
//! cargo bench -p clasp-bench --bench campaign_parallel -- --test  # smoke
//! ```

use analysis::harness::PAPER_SEED;
use clasp_bench::{world, BENCH_DAYS};
use clasp_core::campaign::{Campaign, CampaignConfig};
use serde_json::{Map, Value};
use std::hint::black_box;
use std::time::Instant;

const JOBS: [usize; 4] = [1, 2, 4, 8];

fn paper_cfg(jobs: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::paper(PAPER_SEED);
    cfg.days = BENCH_DAYS;
    cfg.diff_days = cfg.diff_days.min(BENCH_DAYS);
    cfg.jobs = jobs;
    cfg
}

fn small_cfg(jobs: usize) -> CampaignConfig {
    let mut cfg = CampaignConfig::small(PAPER_SEED);
    cfg.jobs = jobs;
    cfg
}

/// Times one (config, jobs) combination: `reps` full campaign runs,
/// reporting the minimum and the final checkpoint of the last run.
fn time_combo(cfg: &CampaignConfig, reps: usize) -> (f64, String) {
    let w = world();
    let mut best = f64::INFINITY;
    let mut checkpoint = String::new();
    for _ in 0..reps {
        let t = Instant::now();
        let result = black_box(
            Campaign::new(w, cfg.clone())
                .runner()
                .run()
                .expect("fresh runs cannot fail"),
        );
        best = best.min(t.elapsed().as_secs_f64());
        checkpoint = serde_json::to_string(result.checkpoints.last().expect("checkpoints"));
    }
    (best, checkpoint)
}

fn main() {
    let mut smoke = false;
    let mut filter = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => smoke = true,
            "--bench" => {}
            a if a.starts_with("--") => {}
            a => filter = Some(a.to_string()),
        }
    }
    let reps = if smoke { 1 } else { 3 };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for (config, build) in [
        ("paper", paper_cfg as fn(usize) -> CampaignConfig),
        ("small", small_cfg),
    ] {
        let mut serial_secs = None;
        let mut serial_checkpoint = None;
        for jobs in JOBS {
            let id = format!("campaign_parallel/{config}/jobs_{jobs}");
            if filter.as_deref().is_some_and(|f| !id.contains(f)) {
                continue;
            }
            let (secs, checkpoint) = time_combo(&build(jobs), reps);
            match &serial_checkpoint {
                None => {
                    serial_secs = Some(secs);
                    serial_checkpoint = Some(checkpoint);
                }
                Some(serial) => assert_eq!(
                    serial, &checkpoint,
                    "{id}: final checkpoint diverged from the serial run"
                ),
            }
            let speedup = serial_secs.map(|s| s / secs).unwrap_or(1.0);
            if smoke {
                println!("{id}: ok (smoke)");
            } else {
                println!("{id:<50} min {secs:>9.3}s  speedup {speedup:>5.2}x");
            }
            let mut row = Map::new();
            row.insert("config".into(), config.into());
            row.insert("jobs".into(), jobs.into());
            row.insert("secs".into(), secs.into());
            row.insert("speedup_vs_serial".into(), speedup.into());
            rows.push(Value::Object(row));
        }
    }

    let mut summary = Map::new();
    summary.insert("bench".into(), "campaign_parallel".into());
    summary.insert("seed".into(), PAPER_SEED.into());
    summary.insert("bench_days".into(), BENCH_DAYS.into());
    summary.insert("available_parallelism".into(), parallelism.into());
    summary.insert(
        "environment".into(),
        Value::Object(clasp_bench::environment(
            PAPER_SEED,
            *JOBS.last().expect("JOBS is non-empty") as u64,
        )),
    );
    summary.insert("smoke".into(), smoke.into());
    summary.insert("results".into(), Value::Array(rows));
    let summary = Value::Object(summary);
    // cargo runs benches with the package directory as cwd; resolve the
    // workspace target dir explicitly so the summary lands in one place.
    let path = std::env::var("CLASP_BENCH_JSON").unwrap_or_else(|_| {
        let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| {
            format!(
                "{}/../../target",
                std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
            )
        });
        format!("{target}/BENCH_campaign_parallel.json")
    });
    if let Err(e) = std::fs::write(&path, serde_json::to_string_pretty(&summary)) {
        eprintln!("campaign_parallel: could not write {path}: {e}");
    } else {
        println!("campaign_parallel: summary written to {path}");
    }
}
