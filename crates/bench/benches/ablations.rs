//! Ablation benches for the design decisions DESIGN.md calls out:
//!
//! * fluid vs packet-level TCP (the campaign's central substitution);
//! * hot- vs cold-potato egress selection;
//! * paris vs classic traceroute;
//! * elbow threshold sweep resolution;
//! * topology-based vs random server selection (coverage quality, timed
//!   as the cost of the smarter method).
//!
//! ```text
//! cargo bench -p clasp-bench --bench ablations
//! ```

use clasp_bench::world;
use criterion::{criterion_group, criterion_main, Criterion};
use simnet::load::LoadModel;
use simnet::perf::{FlowSpec, PerfModel};
use simnet::routing::{Direction, Paths, Tier};
use simnet::time::SimTime;
use std::hint::black_box;

fn bench_fluid_vs_packet(c: &mut Criterion) {
    let w = world();
    let paths = Paths::new(&w.topo);
    let perf = PerfModel::new(&w.topo, LoadModel::new(1));
    let region = w.topo.cities.by_name("The Dalles").unwrap();
    let s = w.registry.in_country("US")[3];
    let down = paths
        .vm_host_path(
            region,
            w.topo.vm_ip(region, 0),
            s.as_id,
            s.city,
            s.ip,
            Tier::Premium,
            Direction::ToCloud,
        )
        .unwrap();
    let up = paths
        .vm_host_path(
            region,
            w.topo.vm_ip(region, 0),
            s.as_id,
            s.city,
            s.ip,
            Tier::Premium,
            Direction::ToServer,
        )
        .unwrap();
    let t = SimTime::from_day_hour(2, 9);

    let mut g = c.benchmark_group("tcp_model");
    g.bench_function("fluid", |b| {
        b.iter(|| black_box(perf.tcp_throughput(&down, &up, t, &FlowSpec::download())))
    });
    g.sample_size(10);
    g.bench_function("packet_level_5s", |b| {
        let spec = speedtest::packetize::packetize(&perf, &down, &up, t, 512);
        b.iter(|| {
            black_box(simtcp::flow::run_flow(
                &spec,
                &simtcp::flow::FlowConfig {
                    n_connections: 8,
                    duration_s: 5.0,
                    ..Default::default()
                },
            ))
        })
    });
    g.finish();
}

fn bench_potato_policies(c: &mut Criterion) {
    let w = world();
    let paths = Paths::new(&w.topo);
    let region = w.topo.cities.by_name("Council Bluffs").unwrap();
    let servers = w.registry.in_country("US");
    let mut g = c.benchmark_group("egress_policy");
    for (name, tier) in [
        ("cold_potato_premium", Tier::Premium),
        ("hot_potato_standard", Tier::Standard),
    ] {
        g.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let s = servers[i % servers.len()];
                i += 1;
                black_box(paths.vm_host_path(
                    region,
                    w.topo.vm_ip(region, 0),
                    s.as_id,
                    s.city,
                    s.ip,
                    tier,
                    Direction::ToServer,
                ))
            })
        });
    }
    g.finish();
}

fn bench_traceroute_modes(c: &mut Criterion) {
    let w = world();
    let paths = Paths::new(&w.topo);
    let region = w.topo.cities.by_name("The Dalles").unwrap();
    let s = w.registry.in_country("US")[7];
    let mut g = c.benchmark_group("traceroute_mode");
    for (name, mode) in [
        ("paris", nettools::traceroute::TraceMode::Paris),
        ("classic", nettools::traceroute::TraceMode::Classic),
    ] {
        g.bench_function(name, |b| {
            let mut flow = 0u64;
            b.iter(|| {
                flow += 1;
                black_box(nettools::traceroute::traceroute(
                    &paths,
                    region,
                    w.topo.vm_ip(region, 0),
                    s.as_id,
                    s.city,
                    s.ip,
                    Tier::Premium,
                    mode,
                    flow,
                    1,
                ))
            })
        });
    }
    g.finish();
}

fn bench_elbow_resolution(c: &mut Criterion) {
    // The elbow sweep cost scales with threshold resolution; the paper's
    // Fig. 2 uses a coarse sweep. Synthetic day-variability sample.
    let day_vars: Vec<f64> = (0..60_000)
        .map(|i| ((i * 37) % 1000) as f64 / 1000.0)
        .collect();
    let mut g = c.benchmark_group("elbow_sweep");
    for steps in [10usize, 20, 100] {
        g.bench_function(format!("steps_{steps}"), |b| {
            b.iter(|| {
                let thresholds: Vec<f64> = (0..=steps).map(|i| i as f64 / steps as f64).collect();
                black_box(clasp_stats::elbow::threshold_sweep(&thresholds, |h| {
                    day_vars.iter().filter(|v| **v > h).count() as f64 / day_vars.len() as f64
                }))
            })
        });
    }
    g.finish();
}

fn bench_selection_strategies(c: &mut Criterion) {
    let w = world();
    let mut g = c.benchmark_group("server_selection");
    g.sample_size(10);
    let region = w.topo.cities.by_name("The Dalles").unwrap();
    g.bench_function("topology_based", |b| {
        b.iter(|| {
            let session = w.session();
            black_box(clasp_core::select::topology::select(
                w,
                &session.paths,
                "us-west1",
                region,
                106,
                &clasp_core::select::topology::PilotConfig::default(),
            ))
        })
    });
    g.bench_function("random_baseline", |b| {
        // The naive alternative the topology method replaces: pick 106
        // US servers uniformly (deterministic hash order).
        b.iter(|| {
            let mut us: Vec<&speedtest::platform::Server> = w.registry.in_country("US");
            us.sort_by_key(|s| {
                simnet::routing::load_key(b"rand-sel", u64::from(u32::from(s.ip)), 0)
            });
            let picked: Vec<String> = us.iter().take(106).map(|s| s.id.clone()).collect();
            black_box(picked)
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_fluid_vs_packet,
    bench_potato_policies,
    bench_traceroute_modes,
    bench_elbow_resolution,
    bench_selection_strategies,
);
criterion_main!(ablations);
