//! One bench per paper table/figure: times the regeneration of each
//! artifact from a bench-scale campaign (the campaign itself is timed
//! once as `campaign/run`).
//!
//! ```text
//! cargo bench -p clasp-bench --bench figures
//! ```

use clasp_bench::{campaign, world, BENCH_DAYS};
use clasp_core::select::topology::PilotConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| black_box(analysis::harness::quick_campaign(world(), BENCH_DAYS)))
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    // The heavy part of Table 1 is the selection itself (bdrmap pilot
    // scan + traceroutes + grouping); time it for one region.
    g.bench_function("topology_selection_us_west1", |b| {
        let w = world();
        let region = w.topo.cities.by_name("The Dalles").unwrap();
        b.iter(|| {
            let session = w.session();
            black_box(clasp_core::select::topology::select(
                w,
                &session.paths,
                "us-west1",
                region,
                106,
                &PilotConfig::default(),
            ))
        })
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut result = campaign();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("variability_sweep_all_regions", |b| {
        b.iter(|| black_box(analysis::experiments::fig2(world(), &mut result, 20)))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut result = campaign();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("congested_series_extraction", |b| {
        b.iter(|| black_box(analysis::experiments::fig3(world(), &mut result, 0.5)))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut result = campaign();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("scatter_topology_premium", |b| {
        b.iter(|| black_box(analysis::experiments::fig4(&mut result, "topo", "premium")))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut result = campaign();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("tier_comparison_europe_west1", |b| {
        b.iter(|| black_box(analysis::experiments::fig5(&mut result, "europe-west1")))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut result = campaign();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("hourly_probability_us_east1", |b| {
        b.iter(|| {
            black_box(analysis::experiments::fig6(
                world(),
                &mut result,
                "us-east1",
                "topo",
                0.5,
                10,
            ))
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let result = campaign();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(20);
    g.bench_function("geolocation_tables", |b| {
        b.iter(|| black_box(analysis::experiments::fig7(world(), &result)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut result = campaign();
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("business_type_congestion", |b| {
        b.iter(|| black_box(analysis::experiments::fig8(world(), &mut result, 0.5)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_campaign,
    bench_table1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
);
criterion_main!(figures);
