//! UI tests: every fixture under `tests/ui/*.rs` is linted (with the
//! default config, i.e. no wall-clock allowlist) and its rendered
//! output — diagnostics plus the allow table — must match the sibling
//! `.stderr` file byte-for-byte.
//!
//! Regenerate expectations after an intentional change with
//! `UPDATE_EXPECT=1 cargo test -p clasp-lint --test ui`.

use clasp_lint::{lint_source, Config};
use std::fmt::Write as _;
use std::path::Path;

fn render(file: &str, source: &str) -> String {
    let report = lint_source(file, source, &Config::default());
    let mut out = String::new();
    for d in &report.diagnostics {
        writeln!(out, "{d}").unwrap();
    }
    for a in &report.allows {
        writeln!(
            out,
            "allow {}:{} {} {} -- {}",
            a.file,
            a.target_line,
            a.code,
            if a.used { "used" } else { "unused" },
            a.reason
        )
        .unwrap();
    }
    out
}

#[test]
fn fixtures_match_expected_diagnostics() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/ui");
    let update = std::env::var_os("UPDATE_EXPECT").is_some();
    let mut fixtures: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/ui exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "no fixtures found in {dir:?}");

    let mut failures = Vec::new();
    for fixture in fixtures {
        let name = fixture.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&fixture).expect("fixture readable");
        let got = render(&name, &source);
        let expected_path = fixture.with_extension("stderr");
        if update {
            std::fs::write(&expected_path, &got).expect("write expectation");
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!("missing {expected_path:?}; run with UPDATE_EXPECT=1 to create")
        });
        if got != expected {
            failures.push(format!(
                "== {name}\n-- expected --\n{expected}\n-- got --\n{got}"
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn every_lint_code_has_a_firing_fixture() {
    // The acceptance bar: each of D001–D005 (and D006) must have at
    // least one fixture that fires it, proven by its .stderr.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/ui");
    let mut all = String::new();
    for entry in std::fs::read_dir(&dir).expect("tests/ui exists") {
        let p = entry.expect("entry").path();
        if p.extension().is_some_and(|e| e == "stderr") {
            all.push_str(&std::fs::read_to_string(&p).expect("readable"));
        }
    }
    for code in ["D001", "D002", "D003", "D004", "D005", "D006", "L000"] {
        assert!(
            all.lines()
                .any(|l| !l.starts_with("allow ") && l.contains(code)),
            "no firing fixture covers {code}"
        );
        assert!(
            code == "L000"
                || all
                    .lines()
                    .any(|l| l.starts_with("allow ") && l.contains(code)),
            "no fixture covers an allow of {code}"
        );
    }
}
