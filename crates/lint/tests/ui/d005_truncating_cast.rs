// D005: truncating `as` casts on series-id/key material must fire;
// widening casts and casts on non-key values must not.

pub struct SeriesId(pub u32);

fn intern(count: usize) -> SeriesId {
    SeriesId(count as u32)
}

fn shard_of(series_idx: usize, shards: usize) -> u16 {
    (series_idx % shards) as u16
}

fn checked(count: usize) -> SeriesId {
    // try_from fails loudly instead of aliasing keys: no finding.
    SeriesId(u32::try_from(count).expect("series count fits u32"))
}

fn unrelated(bytes: u64) -> u32 {
    // No key material in the statement: no finding.
    (bytes / 1024) as u32
}
