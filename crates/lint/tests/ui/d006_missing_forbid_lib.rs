// D006: a crate root (file name ending in lib.rs) without
// #![forbid(unsafe_code)] must fire at line 1, and an unsafe block must
// fire where it occurs.

pub fn read_unchecked(xs: &[u8], i: usize) -> u8 {
    unsafe { *xs.get_unchecked(i) }
}
