// D002: wall-clock reads must fire (the workspace allowlist for bench
// and the obs span internals does not apply under the test config).
use std::time::{Duration, Instant, SystemTime};

fn stamp() -> u64 {
    let t0 = Instant::now();
    let wall = SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or(Duration::ZERO);
    t0.elapsed().as_nanos() as u64 + wall.as_secs()
}

fn logical(now: u64) -> u64 {
    // Logical clocks are the sanctioned time source: no finding.
    now + 1
}
