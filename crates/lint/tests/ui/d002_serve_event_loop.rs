// D002 in serve-shaped code: a connection event loop that stamps
// requests with real time and enforces a wall-clock read deadline.
// All three reads must fire — the serve crate is deliberately absent
// from the wall-clock allowlist, because replaying a recorded session
// must produce byte-identical responses, and any real-time input
// breaks that. Generation counters (the sanctioned logical clock) are
// fine, and the operator-log read at the bottom carries an allow.

use std::time::{Duration, Instant, SystemTime};

struct Conn {
    generation: u64,
    opened: Instant,
}

fn handle_connection(conn: &mut Conn, lines: &[&str]) -> Vec<String> {
    let mut responses = Vec::new();
    for line in lines {
        // Stamping the response with arrival time leaks the wall clock
        // into served bytes: fires.
        let stamp = SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or(Duration::ZERO);
        responses.push(format!("{{\"t\":{},\"echo\":{line:?}}}", stamp.as_secs()));
        // Logical epochs are the sanctioned ordering: no finding.
        conn.generation += 1;
    }
    // A read-deadline check against real time: fires.
    if Instant::now().duration_since(conn.opened) > Duration::from_secs(30) {
        responses.push("{\"ok\":false,\"error\":\"deadline\"}".to_string());
    }
    responses
}

fn drain_allowed(conn: &Conn) -> u64 {
    // clasp-lint: allow(D002) -- operator log line only, never part of a response body
    let _uptime = Instant::now() - conn.opened;
    conn.generation
}
