// D004: order-sensitive float accumulation inside scatter/merge
// contexts must fire; the identical code outside such a context is the
// serial path and is fine.

fn merge_worker_shards(shards: &[Vec<f64>]) -> f64 {
    let mut total: f64 = 0.0;
    for shard in shards {
        for x in shard {
            total += x;
        }
    }
    total
}

fn scatter_reduce(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

fn serial_sum(xs: &[f64]) -> f64 {
    // Not a scatter/merge context: the task order is fixed, so the
    // reduction order is too. No finding.
    let mut total: f64 = 0.0;
    for x in xs {
        total += x;
    }
    total
}

fn merge_counts(counts: &[u64]) -> u64 {
    // Integer accumulation is associative: no finding. (The float table
    // is file-wide, so reusing a name that is float-typed elsewhere in
    // the file — e.g. `total` above — would be flagged conservatively.)
    let mut merged: u64 = 0;
    for c in counts {
        merged += c;
    }
    merged
}
