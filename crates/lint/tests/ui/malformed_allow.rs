// Malformed control comments must be rejected loudly (L000), and a
// malformed allow must NOT suppress the finding it sits next to.

fn missing_reason() -> std::time::SystemTime {
    // clasp-lint: allow(D002)
    std::time::SystemTime::now()
}

fn unknown_code(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
    // clasp-lint: allow(D099) -- no such lint
    m.keys().copied().collect()
}

fn wrong_verb() {
    // clasp-lint: deny(D001) -- only allow() exists
}

fn missing_colon() {
    // clasp-lint allow(D003) -- the colon is part of the grammar
}
