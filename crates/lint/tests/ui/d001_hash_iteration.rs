// D001: iteration over hash-ordered containers must fire, in all three
// recognized shapes: method chain, for-loop, and via a type alias.
use std::collections::{HashMap, HashSet};

type Tables = HashMap<u32, Vec<u32>>;

fn chain(metrics: &HashMap<String, f64>) -> Vec<String> {
    metrics.keys().cloned().collect()
}

fn loop_over(seen: &HashSet<u64>) -> u64 {
    let mut acc = 0;
    for s in seen.iter() {
        acc ^= s;
    }
    acc
}

fn alias(tables: &Tables) {
    for t in tables.values() {
        drop(t);
    }
}

fn lookup_only(index: &HashMap<String, u32>) -> Option<u32> {
    // Point lookups never observe hash order: no finding.
    index.get("key").copied()
}

fn order_insensitive(seen: &HashSet<u64>) -> usize {
    // A count cannot observe order either: no finding.
    seen.iter().count()
}

fn resorted(metrics: &HashMap<String, f64>) -> Vec<String> {
    let mut keys: Vec<String> = metrics.keys().cloned().collect();
    keys.sort();
    keys
}
