// D003: ambient randomness must fire; seeded RNG use must not.
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn ambient() -> f64 {
    let mut rng = rand::thread_rng();
    let a: f64 = rng.gen();
    a + rand::random::<f64>()
}

fn reseeded() -> SmallRng {
    SmallRng::from_entropy()
}

fn seeded(seed: u64) -> f64 {
    // Derived from the campaign seed: no finding (`.random()` is a
    // method on the seeded generator, not the ambient free function).
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.random()
}
