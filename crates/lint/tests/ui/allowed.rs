// Every lint code suppressed by a well-formed allow comment: no
// diagnostics, and every allow must show as `used`.

use std::collections::HashMap;
use std::time::Instant;

fn histogram(samples: &HashMap<u64, u64>) -> u64 {
    // clasp-lint: allow(D001) -- xor-fold is commutative, order never observable
    samples.values().fold(0, |a, b| a ^ b)
}

fn bench_clock() -> u64 {
    // clasp-lint: allow(D002) -- reporting-only wall clock, never fed back into results
    Instant::now().elapsed().as_nanos() as u64
}

fn jitter() -> f64 {
    // clasp-lint: allow(D003) -- operator-facing demo path, excluded from campaigns
    rand::random::<f64>()
}

fn merge_gauges(gauges: &[f64]) -> f64 {
    let mut total: f64 = 0.0;
    for g in gauges {
        // clasp-lint: allow(D004) -- shards are merged in canonical worker order
        total += g;
    }
    total
}

fn intern(series_idx: usize) -> u32 {
    // clasp-lint: allow(D005) -- series_idx bounded by the registration guard below u32::MAX
    series_idx as u32
}

fn peek(xs: &[u8]) -> u8 {
    // clasp-lint: allow(D006) -- bounds proven by caller; audited 2026-08
    unsafe { *xs.get_unchecked(0) }
}
