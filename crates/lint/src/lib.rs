//! clasp-lint — a determinism static-analysis pass for the CLASP
//! workspace.
//!
//! Every result reproduced from the paper rides on a hard invariant:
//! campaign output is byte-identical across `--jobs N`, checkpoint
//! resume and batch-vs-stream execution (DESIGN.md §10–11). The runtime
//! equivalence suites only catch a nondeterminism bug when a seed
//! happens to trigger it; this pass rejects the *patterns* that produce
//! such bugs, at source level, before any seed runs:
//!
//! * **D001** — iteration over `HashMap`/`HashSet` (hash order is
//!   seeded per process and per instance). Use `BTreeMap`/`BTreeSet`,
//!   or sort/re-key in the same statement.
//! * **D002** — wall-clock reads (`Instant::now`, `SystemTime`,
//!   `UNIX_EPOCH`). All simulated time flows through `SimTime` and the
//!   observability logical clock.
//! * **D003** — ambient randomness (`thread_rng`, `rand::random`,
//!   `OsRng`, `from_entropy`, `from_os_rng`). All randomness must come
//!   from a seeded RNG reachable from the campaign seed.
//! * **D004** — order-sensitive float accumulation (`+=`/`-=` on
//!   floats, float `fold`/`sum`) inside scatter/merge contexts, where
//!   worker interleaving could reorder the reduction.
//! * **D005** — truncating `as` casts on series-id/key material; use
//!   `try_from` so overflow is an error, not silent key aliasing.
//! * **D006** — `unsafe` code, and crate roots (`lib.rs`) missing
//!   `#![forbid(unsafe_code)]`.
//!
//! A finding is suppressed only by a scoped allow comment on the same
//! line or the line directly above the offending code:
//!
//! ```text
//! // clasp-lint: allow(D002) -- reporting-only wall clock, not replayed
//! let t0 = Instant::now();
//! ```
//!
//! The grammar is exactly `clasp-lint: allow(Dnnn) -- reason`; anything
//! else mentioning `clasp-lint` is itself an error (L000), so a typoed
//! suppression cannot silently disable a lint. Every allow is reported
//! in the run summary with its reason, and unused allows are called out.
//!
//! The analysis is a token-level scanner (strings and comments are
//! masked, brace depth and `fn` scopes are tracked), not a full parse:
//! the build environment vendors no `syn`, and the lint vocabulary —
//! identifiers, method calls, casts — is recognizable at token level.
//! The cost of the approximation is a conservative bias: a few
//! provably-fine sites need an allow comment, and each one documents
//! *why* it is fine, which is the review trail we want anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};

mod scan;

pub use scan::{mask_source, Line};

/// A lint code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Iteration over a hash-ordered container.
    D001,
    /// Wall-clock read.
    D002,
    /// Ambient (unseeded) randomness.
    D003,
    /// Order-sensitive float accumulation in a scatter/merge context.
    D004,
    /// Truncating cast on series-id/key material.
    D005,
    /// `unsafe` code or a crate root missing `#![forbid(unsafe_code)]`.
    D006,
    /// Malformed `clasp-lint:` control comment.
    L000,
}

impl Code {
    /// All real lint codes (excludes the machinery error L000).
    pub const ALL: [Code; 6] = [
        Code::D001,
        Code::D002,
        Code::D003,
        Code::D004,
        Code::D005,
        Code::D006,
    ];

    /// The stable textual form, e.g. `"D001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::D001 => "D001",
            Code::D002 => "D002",
            Code::D003 => "D003",
            Code::D004 => "D004",
            Code::D005 => "D005",
            Code::D006 => "D006",
            Code::L000 => "L000",
        }
    }

    /// Parses `"D001"`-style text into a code (L000 is not nameable in
    /// allow comments).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// File label as given to [`lint_source`].
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint code.
    pub code: Code,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.code, self.message
        )
    }
}

/// One parsed `clasp-lint: allow(...)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// File label.
    pub file: String,
    /// Line the comment sits on.
    pub line: usize,
    /// Line of code the allow covers (same line for trailing comments,
    /// the next non-blank code line otherwise).
    pub target_line: usize,
    /// Suppressed code.
    pub code: Code,
    /// The mandatory justification after `--`.
    pub reason: String,
    /// Whether the allow actually suppressed a finding.
    pub used: bool,
}

/// Lint configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path substrings for which D002 (wall clock) is pre-authorized:
    /// benchmarking code and the observability span internals, which
    /// measure wall time *about* the run without feeding it back in.
    pub wall_clock_allowlist: Vec<String>,
}

impl Config {
    /// The workspace policy: D002 is pre-authorized for the bench crate
    /// and the tracer's wall-span internals (whose wall readings are
    /// excluded from canonical output; see `clasp-obs`).
    pub fn workspace() -> Config {
        Config {
            wall_clock_allowlist: vec!["crates/bench/".into(), "crates/obs/src/span.rs".into()],
        }
    }
}

/// Everything the pass produced for one file.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    /// Findings that survived allow-comment suppression (includes L000
    /// malformed-comment errors).
    pub diagnostics: Vec<Diagnostic>,
    /// All parsed allow comments, with usage flags.
    pub allows: Vec<Allow>,
}

/// Iteration-producing method names on hash containers.
const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Markers identifying series-id/key material for D005.
const KEY_MARKERS: [&str; 4] = ["SeriesId", "series_idx", "series_id", "series_key"];

/// Integer targets considered truncating for D005.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Lints one file. `file` is only used as the diagnostic label; the
/// D006 crate-root check applies when it ends in `lib.rs`.
pub fn lint_source(file: &str, source: &str, cfg: &Config) -> FileReport {
    let lines = mask_source(source);
    let mut allows = parse_allows(file, &lines);
    let mut raw: Vec<Diagnostic> = Vec::new();

    // Malformed control comments are findings in their own right and
    // can never be suppressed.
    let mut report = FileReport::default();
    for line in &lines {
        if let Some(c) = &line.comment {
            if let Some(err) = malformed_control(c) {
                report.diagnostics.push(Diagnostic {
                    file: file.to_string(),
                    line: line.number,
                    code: Code::L000,
                    message: err,
                });
            }
        }
    }

    check_d001(file, &lines, &mut raw);
    check_d002(file, &lines, cfg, &mut raw);
    check_d003(file, &lines, &mut raw);
    check_d004(file, &lines, &mut raw);
    check_d005(file, &lines, &mut raw);
    check_d006(file, &lines, &mut raw, &allows);

    // Apply allows: a finding at an allow's target line with a matching
    // code is suppressed (first unused allow wins, so stacked allows of
    // the same code each count once).
    for d in raw {
        let slot = allows.iter_mut().find(|a| {
            a.code == d.code && (a.target_line == d.line || (a.code == Code::D006 && d.line == 1))
        });
        match slot {
            Some(a) => a.used = true,
            None => report.diagnostics.push(d),
        }
    }
    report.diagnostics.sort_by_key(|d| (d.line, d.code));
    report.allows = allows;
    report
}

/// Parses every allow comment; malformed ones are handled separately.
fn parse_allows(file: &str, lines: &[Line]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(c) = &line.comment else { continue };
        let Some((code, reason)) = parse_allow(c) else {
            continue;
        };
        // Trailing comment covers its own line; a standalone comment
        // covers the next line that contains code.
        let target_line = if !line.code.trim().is_empty() {
            line.number
        } else {
            lines[i + 1..]
                .iter()
                .find(|l| !l.code.trim().is_empty())
                .map_or(line.number, |l| l.number)
        };
        allows.push(Allow {
            file: file.to_string(),
            line: line.number,
            target_line,
            code,
            reason: reason.to_string(),
            used: false,
        });
    }
    allows
}

/// The control-comment payload, when the comment is one: the trimmed
/// text (after an optional doc marker `/` or `!`) starts with
/// `clasp-lint`. Prose that merely *mentions* clasp-lint mid-sentence,
/// and doc-comment examples of the form `//! // clasp-lint: ...`
/// (whose payload starts with `//`), are not control comments.
fn control_payload(comment: &str) -> Option<&str> {
    let t = comment.trim_start();
    let t = t
        .strip_prefix('/')
        .or_else(|| t.strip_prefix('!'))
        .unwrap_or(t);
    let text = t.trim_start();
    let rest = text.strip_prefix("clasp-lint")?.trim_start();
    // Directive shapes only: `clasp-lint: ...` or the colon-less typo
    // `clasp-lint allow(...)`. Prose *about* clasp-lint is not one.
    (rest.starts_with(':') || rest.starts_with("allow")).then_some(text)
}

/// Parses a well-formed `clasp-lint: allow(Dnnn) -- reason` comment.
fn parse_allow(comment: &str) -> Option<(Code, &str)> {
    let rest = control_payload(comment)?
        .strip_prefix("clasp-lint:")?
        .trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let (name, rest) = rest.split_once(')')?;
    let code = Code::parse(name.trim())?;
    let reason = rest.trim_start().strip_prefix("--")?.trim();
    if reason.is_empty() {
        return None;
    }
    Some((code, reason))
}

/// Returns an error message when a comment mentions `clasp-lint` but is
/// not a well-formed allow. Typos must fail loudly, or they would
/// silently stop suppressing (or never start).
fn malformed_control(comment: &str) -> Option<String> {
    control_payload(comment)?;
    if parse_allow(comment).is_some() {
        return None;
    }
    Some(format!(
        "malformed clasp-lint control comment {:?}; the grammar is \
         `clasp-lint: allow(Dnnn) -- reason` with a non-empty reason",
        comment.trim()
    ))
}

// ---------------------------------------------------------------------
// Identifier utilities.

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Occurrences of `word` as a whole identifier in `line`, as byte
/// offsets.
fn ident_positions(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let start = from + rel;
        let end = start + word.len();
        let ok_left = start == 0 || !is_ident_char(bytes[start - 1] as char);
        let ok_right = end == bytes.len() || !is_ident_char(bytes[end] as char);
        if ok_left && ok_right {
            out.push(start);
        }
        from = end;
    }
    out
}

fn contains_ident(line: &str, word: &str) -> bool {
    !ident_positions(line, word).is_empty()
}

/// The identifier ending at byte offset `end` (exclusive), if any.
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let mut start = end;
    for (i, c) in line[..end].char_indices().rev() {
        if is_ident_char(c) {
            start = i;
        } else {
            break;
        }
    }
    if start == end {
        return None;
    }
    let id = &line[start..end];
    id.chars().next().filter(|c| !c.is_ascii_digit())?;
    Some(id)
}

/// Strips trailing whitespace and returns the new end offset.
fn skip_ws_back(line: &str, mut end: usize) -> usize {
    while end > 0 && line.as_bytes()[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    end
}

// ---------------------------------------------------------------------
// D001 — hash-container iteration.

/// Collects identifiers bound to hash containers plus type aliases of
/// them, then flags iteration sites whose statement does not restore a
/// canonical order.
fn check_d001(file: &str, lines: &[Line], out: &mut Vec<Diagnostic>) {
    let mut hash_types: BTreeSet<String> = ["HashMap", "HashSet"]
        .into_iter()
        .map(str::to_string)
        .collect();
    // Two passes over alias declarations so aliases of aliases resolve
    // regardless of declaration order.
    for _ in 0..2 {
        for line in lines {
            let code = &line.code;
            for tpos in ident_positions(code, "type") {
                let rest = &code[tpos + 4..];
                let Some(eqrel) = rest.find('=') else {
                    continue;
                };
                let (lhs, rhs) = rest.split_at(eqrel);
                let names: Vec<String> = hash_types.iter().cloned().collect();
                if names.iter().any(|t| contains_ident(rhs, t)) {
                    let name = lhs
                        .trim()
                        .split(|c: char| !is_ident_char(c))
                        .next()
                        .unwrap_or("");
                    if !name.is_empty() {
                        hash_types.insert(name.to_string());
                    }
                }
            }
        }
    }

    // Bindings: `name: [&][mut] Hash...` (let/param/field) and
    // `name = Hash...::new()` style initializations.
    let mut bindings: BTreeSet<String> = BTreeSet::new();
    let types: Vec<String> = hash_types.iter().cloned().collect();
    for line in lines {
        for ty in &types {
            for pos in ident_positions(&line.code, ty) {
                if let Some(name) = binding_before(&line.code, pos) {
                    bindings.insert(name.to_string());
                }
            }
        }
    }

    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        for b in &bindings {
            for pos in ident_positions(code, b) {
                let after = &code[pos + b.len()..];
                let iterated = iter_method_follows(after)
                    || (in_for_expr(code, pos) && !after.trim_start().starts_with('('));
                if !iterated {
                    continue;
                }
                if statement_restores_order(lines, i, pos) {
                    continue;
                }
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: line.number,
                    code: Code::D001,
                    message: format!(
                        "iteration over hash-ordered container `{b}` — hash order is \
                         per-instance-seeded and breaks bit-identity; use \
                         BTreeMap/BTreeSet or sort in the same statement"
                    ),
                });
            }
        }
    }
}

/// The identifier a hash-type occurrence is bound to, when the
/// occurrence is the type of a `name: T` declaration or the value of a
/// `name = T::...` initialization.
fn binding_before(code: &str, ty_pos: usize) -> Option<&str> {
    let mut end = skip_ws_back(code, ty_pos);
    // Strip a leading path (`std::collections::`), references and `mut`.
    loop {
        if code[..end].ends_with("::") {
            end = skip_ws_back(code, end - 2);
            if let Some(seg) = ident_ending_at(code, end) {
                end = skip_ws_back(code, end - seg.len());
                continue;
            }
            return None;
        }
        if code[..end].ends_with('&') {
            end = skip_ws_back(code, end - 1);
            continue;
        }
        if let Some(id) = ident_ending_at(code, end) {
            if id == "mut" {
                end = skip_ws_back(code, end - 3);
                continue;
            }
        }
        break;
    }
    let sep = code[..end].chars().next_back()?;
    if sep != ':' && sep != '=' {
        return None;
    }
    if sep == ':' && code[..end].ends_with("::") {
        return None;
    }
    if sep == '=' && (code[..end].ends_with("==") || code[..end].ends_with("=>")) {
        return None;
    }
    let mut end = skip_ws_back(code, end - 1);
    // `name = Hash...` may really be `let mut name = ...`.
    let name = ident_ending_at(code, end)?;
    if name == "mut" {
        return None;
    }
    if sep == '=' {
        // Reject compound assignment contexts like `+=` (impossible for
        // a type) and pattern arms; accept plain `name =`.
        end -= name.len();
        let prev = skip_ws_back(code, end);
        if prev > 0 && !code[..prev].ends_with("let") && code.as_bytes()[prev - 1] == b'.' {
            return None;
        }
    }
    Some(name)
}

/// True when the text after a binding occurrence is a call to an
/// iteration-producing method.
fn iter_method_follows(after: &str) -> bool {
    let Some(rest) = after.trim_start().strip_prefix('.') else {
        return false;
    };
    let rest = rest.trim_start();
    ITER_METHODS.iter().any(|m| {
        rest.strip_prefix(m)
            .is_some_and(|r| r.trim_start().starts_with('(') || r.trim_start().starts_with("::"))
    })
}

/// True when `pos` lies in the expression of a `for ... in` header on
/// the same line.
fn in_for_expr(code: &str, pos: usize) -> bool {
    for fp in ident_positions(code, "for") {
        if fp >= pos {
            continue;
        }
        if let Some(inrel) = code[fp..pos].rfind(" in ") {
            // Ensure the `in` belongs to this `for`, not a nested call.
            if fp + inrel < pos {
                return true;
            }
        }
    }
    false
}

/// Order-insensitive or re-ordering continuations: if the statement
/// containing the iteration (or the statement right after it — the
/// common collect-then-sort idiom) sorts, rebuilds a BTree collection,
/// or reduces order-insensitively, hash order never becomes observable.
/// A `{` ends the scan: the body of a `for` loop over hash order is
/// already order-exposed, whatever it does inside.
fn statement_restores_order(lines: &[Line], line_idx: usize, pos: usize) -> bool {
    const EXEMPT: [&str; 11] = [
        ".sort()",
        ".sort_by",
        ".sort_unstable",
        ".sort_by_key",
        "BTreeMap",
        "BTreeSet",
        ".count()",
        ".len()",
        ".any(",
        ".all(",
        ".contains",
    ];
    let mut budget = 4usize; // statements are short; cap the scan
    let mut first = true;
    for line in &lines[line_idx..] {
        let code: &str = if first { &line.code[pos..] } else { &line.code };
        first = false;
        if let Some(brace) = code.find('{') {
            return EXEMPT.iter().any(|p| code[..brace].contains(p));
        }
        if EXEMPT.iter().any(|p| code.contains(p)) {
            return true;
        }
        budget -= 1;
        if budget == 0 {
            return false;
        }
    }
    false
}

// ---------------------------------------------------------------------
// D002 — wall-clock reads.

fn check_d002(file: &str, lines: &[Line], cfg: &Config, out: &mut Vec<Diagnostic>) {
    if cfg
        .wall_clock_allowlist
        .iter()
        .any(|p| file.contains(p.as_str()))
    {
        return;
    }
    for line in lines {
        let code = &line.code;
        let hit = (contains_ident(code, "Instant")
            && code.contains("Instant") // fast path
            && ident_positions(code, "Instant").iter().any(|&p| {
                code[p + "Instant".len()..].trim_start().starts_with("::")
            }))
            || contains_ident(code, "SystemTime")
            || contains_ident(code, "UNIX_EPOCH");
        if hit {
            out.push(Diagnostic {
                file: file.to_string(),
                line: line.number,
                code: Code::D002,
                message: "wall-clock read — replay and resume cannot reproduce real time; \
                          use SimTime or the obs logical clock"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// D003 — ambient randomness.

fn check_d003(file: &str, lines: &[Line], out: &mut Vec<Diagnostic>) {
    const AMBIENT: [&str; 4] = ["thread_rng", "OsRng", "from_entropy", "from_os_rng"];
    for line in lines {
        let code = &line.code;
        let mut hit = AMBIENT.iter().any(|w| contains_ident(code, w));
        // `rand::random` free function (a `.random()` method call on a
        // seeded RNG is fine and must not match).
        if !hit {
            hit = ident_positions(code, "random").iter().any(|&p| {
                let before = skip_ws_back(code, p);
                code[..before].ends_with("rand::")
            });
        }
        if hit {
            out.push(Diagnostic {
                file: file.to_string(),
                line: line.number,
                code: Code::D003,
                message: "ambient randomness — draws are not reachable from the campaign \
                          seed; use a seeded RNG (SmallRng::seed_from_u64 or derived)"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// D004 — float accumulation in scatter/merge contexts.

fn check_d004(file: &str, lines: &[Line], out: &mut Vec<Diagnostic>) {
    // Float-typed names: declarations/fields/params `name: f64/f32` and
    // `let name = <float literal>`.
    let mut floats: BTreeSet<String> = BTreeSet::new();
    for line in lines {
        let code = &line.code;
        for ty in ["f64", "f32"] {
            for pos in ident_positions(code, ty) {
                if let Some(name) = binding_before(code, pos) {
                    floats.insert(name.to_string());
                }
            }
        }
        if let Some(eq) = code.find('=') {
            let rhs = code[eq + 1..].trim_start();
            let is_float_lit = rhs
                .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '_'))
                .next()
                .is_some_and(|t| {
                    t.contains('.') && t.chars().next().is_some_and(|c| c.is_ascii_digit())
                });
            if is_float_lit && !code[..eq].ends_with(['=', '!', '<', '>', '+', '-', '*', '/']) {
                let end = skip_ws_back(code, eq);
                if let Some(name) = ident_ending_at(code, end) {
                    floats.insert(name.to_string());
                }
            }
        }
    }

    // Function-scope tracking: a stack of (name, depth-at-entry).
    let mut depth: i32 = 0;
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    for line in lines {
        let code = &line.code;
        if let Some(&p) = ident_positions(code, "fn").first() {
            let after = code[p + 2..].trim_start();
            let name: String = after.chars().take_while(|&c| is_ident_char(c)).collect();
            if !name.is_empty() {
                pending_fn = Some(name);
            }
        }
        let in_ctx = fn_stack
            .iter()
            .any(|(n, _)| n.contains("scatter") || n.contains("merge"));
        if in_ctx {
            for op in ["+=", "-="] {
                let mut from = 0;
                while let Some(rel) = code[from..].find(op) {
                    let p = from + rel;
                    from = p + op.len();
                    let end = skip_ws_back(code, p);
                    if let Some(name) = ident_ending_at(code, end) {
                        if floats.contains(name) {
                            out.push(Diagnostic {
                                file: file.to_string(),
                                line: line.number,
                                code: Code::D004,
                                message: format!(
                                    "float accumulation `{name} {op}` inside a scatter/merge \
                                     context — float addition is not associative, so any \
                                     order change alters bits; accumulate per worker and \
                                     merge in canonical order"
                                ),
                            });
                        }
                    }
                }
            }
            for pat in [
                "sum::<f64>",
                "sum::<f32>",
                "fold(0.0",
                "fold(0f64",
                "fold(0f32",
            ] {
                if code.contains(pat) {
                    out.push(Diagnostic {
                        file: file.to_string(),
                        line: line.number,
                        code: Code::D004,
                        message: format!(
                            "float reduction `{pat}` inside a scatter/merge context — \
                             reduce in canonical task order instead"
                        ),
                    });
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push((name, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if fn_stack.last().is_some_and(|&(_, d)| d >= depth) {
                        fn_stack.pop();
                    }
                }
                ';' => {
                    // `fn f();` in a trait: the pending fn never opens.
                    pending_fn = None;
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// D005 — truncating casts on key material.

fn check_d005(file: &str, lines: &[Line], out: &mut Vec<Diagnostic>) {
    for line in lines {
        let code = &line.code;
        if !KEY_MARKERS.iter().any(|m| contains_ident(code, m)) {
            continue;
        }
        for pos in ident_positions(code, "as") {
            let after = code[pos + 2..].trim_start();
            if NARROW_INTS.iter().any(|t| {
                after
                    .strip_prefix(t)
                    .is_some_and(|r| !r.starts_with(|c: char| is_ident_char(c)))
            }) {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: line.number,
                    code: Code::D005,
                    message: "truncating `as` cast on series-id/key material — overflow \
                              silently aliases keys; use try_from and fail loudly"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// D006 — unsafe code / missing forbid attribute.

fn check_d006(file: &str, lines: &[Line], out: &mut Vec<Diagnostic>, allows: &[Allow]) {
    for line in lines {
        if contains_ident(&line.code, "unsafe") {
            out.push(Diagnostic {
                file: file.to_string(),
                line: line.number,
                code: Code::D006,
                message: "unsafe code — the workspace forbids it; if genuinely required, \
                          justify with a scoped allow and audit the invariants"
                    .to_string(),
            });
        }
    }
    if file.ends_with("lib.rs") {
        let has_forbid = lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
        let has_file_allow = allows.iter().any(|a| a.code == Code::D006);
        if !has_forbid && !has_file_allow {
            out.push(Diagnostic {
                file: file.to_string(),
                line: 1,
                code: Code::D006,
                message: "crate root lacks #![forbid(unsafe_code)] — add it (or a \
                          clasp-lint allow with the audit rationale if the crate \
                          must contain unsafe)"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Workspace driver helpers.

/// Recursively collects `.rs` files under `root`, skipping `target/`,
/// `vendor/` (API stand-ins for crates.io deps, not our code) and the
/// lint UI fixtures (which violate on purpose). Results are sorted so
/// reports are themselves deterministic.
pub fn collect_rs_files(root: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name == "target" || name == "vendor" || name == ".git" {
                    continue;
                }
                if name == "ui" && dir.file_name().and_then(|n| n.to_str()) == Some("tests") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every collected file and returns per-file reports keyed by the
/// path label (relative to `root` when possible).
pub fn lint_workspace(
    root: &std::path::Path,
    cfg: &Config,
) -> std::io::Result<BTreeMap<String, FileReport>> {
    let mut reports = BTreeMap::new();
    for path in collect_rs_files(root)? {
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        let source = std::fs::read_to_string(&path)?;
        let report = lint_source(&label, &source, cfg);
        if !report.diagnostics.is_empty() || !report.allows.is_empty() {
            reports.insert(label, report);
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> FileReport {
        lint_source("test.rs", src, &Config::default())
    }

    fn codes(r: &FileReport) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn allow_grammar_round_trips() {
        assert_eq!(
            parse_allow(" clasp-lint: allow(D001) -- lookup only"),
            Some((Code::D001, "lookup only"))
        );
        assert_eq!(parse_allow("clasp-lint: allow(D001) --"), None);
        assert_eq!(parse_allow("clasp-lint: allow(D009) -- x"), None);
        assert_eq!(parse_allow("clasp-lint: allowed(D001) -- x"), None);
        assert_eq!(parse_allow("unrelated"), None);
    }

    #[test]
    fn hashmap_iteration_fires_and_btreemap_does_not() {
        let r = lint(
            "use std::collections::HashMap;\n\
             fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                 m.keys().copied().collect()\n\
             }\n",
        );
        assert_eq!(codes(&r), vec![Code::D001]);
        let ok = lint(
            "use std::collections::BTreeMap;\n\
             fn f(m: &BTreeMap<u32, u32>) -> Vec<u32> {\n\
                 m.keys().copied().collect()\n\
             }\n",
        );
        assert!(ok.diagnostics.is_empty());
    }

    #[test]
    fn hash_iteration_with_sort_in_statement_is_exempt() {
        let r = lint(
            "fn f(m: &std::collections::HashMap<u32, u32>) {\n\
                 let mut v: Vec<u32> = m.keys().copied().collect();\n\
                 v.sort();\n\
             }\n",
        );
        // The collect-then-sort idiom is exempt (the sort on the next
        // statement restores canonical order), as is a one-statement
        // order-insensitive reduction.
        assert!(r.diagnostics.is_empty());
        let chained = lint(
            "fn f(m: &std::collections::HashMap<u32, u32>) -> usize {\n\
                 m.keys().count()\n\
             }\n",
        );
        assert!(chained.diagnostics.is_empty());
    }

    #[test]
    fn for_loop_over_hash_binding_fires() {
        let r = lint(
            "fn f() {\n\
                 let mut m = std::collections::HashMap::new();\n\
                 m.insert(1u32, 2u32);\n\
                 for (k, v) in &m { println!(\"{k}{v}\"); }\n\
             }\n",
        );
        assert_eq!(codes(&r), vec![Code::D001]);
    }

    #[test]
    fn type_alias_of_hashmap_is_tracked() {
        let r = lint(
            "type Tables = std::collections::HashMap<u32, u32>;\n\
             fn f(t: &Tables) { for x in t.values() { let _ = x; } }\n",
        );
        assert_eq!(codes(&r), vec![Code::D001]);
    }

    #[test]
    fn lookup_only_hashmap_is_clean() {
        let r = lint(
            "fn f(m: &std::collections::HashMap<u32, u32>) -> Option<&u32> {\n\
                 m.get(&1)\n\
             }\n",
        );
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn wall_clock_fires_and_allowlist_suppresses() {
        let src = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(codes(&lint(src)), vec![Code::D002]);
        let cfg = Config {
            wall_clock_allowlist: vec!["crates/bench/".into()],
        };
        let r = lint_source("crates/bench/src/clock.rs", src, &cfg);
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn seeded_rng_method_named_random_is_clean() {
        let r = lint("fn f(rng: &mut R) -> f64 { rng.random() }\n");
        assert!(r.diagnostics.is_empty());
        let bad = lint("fn f() -> f64 { rand::random() }\n");
        assert_eq!(codes(&bad), vec![Code::D003]);
    }

    #[test]
    fn float_accumulation_only_fires_in_scatter_context() {
        let in_ctx = lint(
            "fn merge_shards(total: f64, xs: &[f64]) -> f64 {\n\
                 let mut total = total;\n\
                 for x in xs { total += x; }\n\
                 total\n\
             }\n",
        );
        assert_eq!(codes(&in_ctx), vec![Code::D004]);
        let outside = lint(
            "fn plain(total: f64, xs: &[f64]) -> f64 {\n\
                 let mut total = total;\n\
                 for x in xs { total += x; }\n\
                 total\n\
             }\n",
        );
        assert!(outside.diagnostics.is_empty());
    }

    #[test]
    fn truncating_cast_on_series_id_fires() {
        let r = lint("fn f(n: usize) -> SeriesId { SeriesId(n as u32) }\n");
        assert_eq!(codes(&r), vec![Code::D005]);
        let ok = lint("fn f(n: usize) -> u32 { n as u32 }\n");
        assert!(ok.diagnostics.is_empty());
    }

    #[test]
    fn unsafe_and_missing_forbid_fire() {
        let r = lint("fn f() { unsafe { std::hint::unreachable_unchecked() } }\n");
        assert_eq!(codes(&r), vec![Code::D006]);
        let lib = lint_source("src/lib.rs", "pub fn f() {}\n", &Config::default());
        assert_eq!(codes(&lib), vec![Code::D006]);
        let good = lint_source(
            "src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            &Config::default(),
        );
        assert!(good.diagnostics.is_empty());
    }

    #[test]
    fn allow_comment_suppresses_and_is_marked_used() {
        let r = lint(
            "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
                 // clasp-lint: allow(D001) -- order erased by histogram fill\n\
                 m.keys().copied().collect()\n\
             }\n",
        );
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.allows.len(), 1);
        assert!(r.allows[0].used);
        assert_eq!(r.allows[0].target_line, 3);
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let r = lint(
            "fn f() { let _ = std::time::SystemTime::now(); } \
             // clasp-lint: allow(D002) -- display only\n",
        );
        assert!(r.diagnostics.is_empty());
        assert!(r.allows[0].used);
    }

    #[test]
    fn wrong_code_allow_does_not_suppress() {
        let r = lint(
            "// clasp-lint: allow(D003) -- not the right code\n\
             fn f() { let _ = std::time::SystemTime::now(); }\n",
        );
        assert_eq!(codes(&r), vec![Code::D002]);
        assert!(!r.allows[0].used);
    }

    #[test]
    fn malformed_control_comment_is_an_error() {
        let r = lint("// clasp-lint: allow(D001)\nfn f() {}\n");
        assert_eq!(codes(&r), vec![Code::L000]);
        let r = lint("// clasp-lint allow(D001) -- missing colon\nfn f() {}\n");
        assert_eq!(codes(&r), vec![Code::L000]);
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let r = lint(
            "fn f() -> &'static str {\n\
                 // HashMap iteration mentioned in a comment is fine\n\
                 \"thread_rng Instant::now HashMap\"\n\
             }\n",
        );
        assert!(r.diagnostics.is_empty());
    }
}
