//! Source masking: splits a Rust file into per-line *code* (with
//! string/char literals blanked and comments removed) and *comment*
//! text, so the lint passes never match inside literals or prose, and
//! the allow-comment parser only ever sees comments.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw (and byte/raw-byte) strings with `#` fences, char
//! literals, and the lifetime-vs-char ambiguity (`'a` vs `'a'`).

/// One masked source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Code with literals blanked to spaces and comments stripped.
    pub code: String,
    /// Concatenated comment text on the line (without `//`/`/*`).
    pub comment: Option<String>,
}

/// Masks `source` into lines. Literal contents become spaces (so byte
/// offsets within a line stay meaningful), comments move to the
/// comment channel of the line they start on.
pub fn mask_source(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut number = 1usize;

    let flush = |lines: &mut Vec<Line>, code: &mut String, comment: &mut String, number: usize| {
        lines.push(Line {
            number,
            code: std::mem::take(code),
            comment: if comment.is_empty() {
                None
            } else {
                Some(std::mem::take(comment))
            },
        });
    };

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                flush(&mut lines, &mut code, &mut comment, number);
                number += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                i += 2;
                while i < chars.len() && chars[i] != '\n' {
                    comment.push(chars[i]);
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            flush(&mut lines, &mut code, &mut comment, number);
                            number += 1;
                        } else {
                            comment.push(chars[i]);
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                code.push('"');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            code.push(' ');
                            if i + 1 < chars.len() && chars[i + 1] != '\n' {
                                code.push(' ');
                            }
                            i += 2;
                        }
                        '"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            flush(&mut lines, &mut code, &mut comment, number);
                            number += 1;
                            i += 1;
                        }
                        _ => {
                            code.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            'r' | 'b' if raw_string_fence(&chars, i).is_some() => {
                let (open_len, hashes) = raw_string_fence(&chars, i).expect("checked");
                for _ in 0..open_len {
                    code.push(' ');
                }
                i += open_len;
                let close: String = std::iter::once('"')
                    .chain(std::iter::repeat_n('#', hashes))
                    .collect();
                let close: Vec<char> = close.chars().collect();
                while i < chars.len() {
                    if chars[i..].starts_with(&close[..]) {
                        for _ in 0..close.len() {
                            code.push(' ');
                        }
                        i += close.len();
                        break;
                    }
                    if chars[i] == '\n' {
                        flush(&mut lines, &mut code, &mut comment, number);
                        number += 1;
                    } else {
                        code.push(' ');
                    }
                    i += 1;
                }
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`).
                let next = chars.get(i + 1).copied();
                let is_char = match next {
                    Some('\\') => true,
                    Some(_) => chars.get(i + 2) == Some(&'\''), // 'x'
                    None => false,
                };
                if is_char {
                    code.push(' ');
                    i += 1;
                    if chars.get(i) == Some(&'\\') {
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        // Multi-char escapes like '\u{1F600}'.
                        while i < chars.len() && chars[i] != '\'' {
                            code.push(' ');
                            i += 1;
                        }
                    } else if i < chars.len() {
                        code.push(' ');
                        i += 1;
                    }
                    if chars.get(i) == Some(&'\'') {
                        code.push(' ');
                        i += 1;
                    }
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        flush(&mut lines, &mut code, &mut comment, number);
    }
    lines
}

/// Detects `r"`, `r#"`, `br##"` … at `i`; returns (opening length,
/// hash count).
fn raw_string_fence(chars: &[char], i: usize) -> Option<(usize, usize)> {
    // Must not be the tail of a longer identifier.
    if i > 0 {
        let p = chars[i - 1];
        if p.is_ascii_alphanumeric() || p == '_' {
            return None;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    Some((j + 1 - i, hashes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        mask_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked_but_quotes_remain() {
        let lines = code_of("let x = \"HashMap\";\n");
        assert_eq!(lines[0], "let x = \"       \";");
    }

    #[test]
    fn escapes_do_not_end_strings() {
        let lines = code_of(r#"let x = "a\"b"; let y = 1;"#);
        assert!(lines[0].contains("let y = 1;"));
        assert!(!lines[0].contains('a'));
    }

    #[test]
    fn raw_strings_with_fences() {
        let lines = code_of("let x = r#\"thread_rng \"quoted\"\"#; let y = 2;\n");
        assert!(lines[0].contains("let y = 2;"));
        assert!(!lines[0].contains("thread_rng"));
    }

    #[test]
    fn line_and_block_comments_move_to_comment_channel() {
        let lines =
            mask_source("let a = 1; // tail comment\n/* block\nstill block */ let b = 2;\n");
        assert_eq!(lines[0].code, "let a = 1; ");
        assert_eq!(lines[0].comment.as_deref(), Some(" tail comment"));
        assert!(lines[1].comment.as_deref().unwrap().contains("block"));
        assert!(lines[2].code.contains("let b = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = mask_source("/* outer /* inner */ still */ let a = 1;\n");
        assert!(lines[0].code.contains("let a = 1;"));
        assert!(!lines[0].code.contains("inner"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let lines = code_of("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(lines[0].contains("'a str"));
        assert!(!lines[0].contains("'x'"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let lines = mask_source("let x = \"one\ntwo\";\nlet y = 3;\n");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2].number, 3);
        assert_eq!(lines[2].code, "let y = 3;");
    }

    #[test]
    fn char_escape_literal() {
        let lines = code_of("let c = '\\n'; let d = 1;\n");
        assert!(lines[0].contains("let d = 1;"));
    }
}
