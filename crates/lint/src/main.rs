//! The `clasp-lint` binary: runs the determinism pass over the
//! workspace (or explicit paths) and prints findings plus the allow
//! summary table.
//!
//! ```text
//! cargo run -p clasp-lint -- --deny          # CI gate: exit 1 on findings
//! cargo run -p clasp-lint                    # report only
//! cargo run -p clasp-lint -- crates/stream   # restrict the scan
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use clasp_lint::{lint_workspace, Code, Config};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: clasp-lint [--deny] [--no-allow-table] [PATH ...]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut allow_table = true;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--no-allow-table" => allow_table = false,
            "--help" | "-h" => usage(),
            p if p.starts_with('-') => usage(),
            p => roots.push(PathBuf::from(p)),
        }
    }
    if roots.is_empty() {
        // Default: the whole workspace (collect_rs_files already skips
        // target/, vendor/ and the UI fixtures), resolved from the
        // workspace root so labels are stable from any cwd.
        roots.push(workspace_root());
    }

    let cfg = Config::workspace();
    let mut files = 0usize;
    let mut findings = 0usize;
    let mut errors = 0usize;
    let mut allows = Vec::new();
    for root in &roots {
        let reports = match lint_workspace(root, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("clasp-lint: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        files += clasp_lint::collect_rs_files(root).map_or(0, |v| v.len());
        for report in reports.values() {
            for d in &report.diagnostics {
                println!("{d}");
                if d.code == Code::L000 {
                    errors += 1;
                } else {
                    findings += 1;
                }
            }
            allows.extend(report.allows.iter().cloned());
        }
    }

    if allow_table && !allows.is_empty() {
        println!("\nallow table ({} suppression sites):", allows.len());
        for a in &allows {
            println!(
                "  {}:{}  {}  {}  -- {}",
                a.file,
                a.target_line,
                a.code,
                if a.used { "used  " } else { "UNUSED" },
                a.reason
            );
        }
    }
    let unused = allows.iter().filter(|a| !a.used).count();
    println!(
        "\nclasp-lint: {files} files, {findings} finding(s), {errors} malformed \
         control comment(s), {} allow(s) ({unused} unused)",
        allows.len()
    );

    if deny && (findings > 0 || errors > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root: walk up from the current directory to the first
/// ancestor holding a `Cargo.toml` with a `[workspace]` table, falling
/// back to the manifest dir's parent-of-parent (crates/lint → root).
fn workspace_root() -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: Option<&Path> = Some(start.as_path());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return d.to_path_buf();
            }
        }
        dir = d.parent();
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}
