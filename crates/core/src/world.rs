//! The shared measurement environment.
//!
//! A [`World`] owns everything the campaign needs that outlives a borrow:
//! the generated topology, the crawled speed-test server registry, the
//! prefix-to-AS dataset and the load-model seed. A [`Session`] borrows a
//! world and adds the per-run machinery (routing caches, the perf model).
//!
//! Construction is deterministic in the seed: two worlds with the same
//! seed are identical, which is what makes every figure regenerable.

use simnet::load::LoadModel;
use simnet::perf::PerfModel;
use simnet::prefix2as::PrefixToAs;
use simnet::routing::Paths;
use simnet::topology::{Topology, TopologyConfig};
use speedtest::platform::ServerRegistry;

/// The default campaign seed used across examples and experiments.
pub const DEFAULT_SEED: u64 = 0x5EED_CA1D;

/// Owned measurement environment.
pub struct World {
    /// The generated Internet + cloud.
    pub topo: Topology,
    /// Crawled speed-test servers.
    pub registry: ServerRegistry,
    /// Prefix-to-AS dataset built from the topology.
    pub p2a: PrefixToAs,
    /// Seed for the link-load model.
    pub load_seed: u64,
}

impl World {
    /// Builds the full-scale world for a seed.
    pub fn new(seed: u64) -> Self {
        Self::with_config(TopologyConfig {
            seed,
            ..TopologyConfig::default()
        })
    }

    /// Builds a world from an explicit topology configuration.
    pub fn with_config(config: TopologyConfig) -> Self {
        let seed = config.seed;
        let topo = Topology::generate(config);
        let registry = ServerRegistry::crawl(&topo, seed ^ 0x7e57);
        let p2a = PrefixToAs::build(&topo);
        Self {
            topo,
            registry,
            p2a,
            load_seed: seed ^ 0x10ad,
        }
    }

    /// A scaled-down world for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self::with_config(TopologyConfig::tiny(seed))
    }

    /// Server id → local UTC offset (hours), the map streaming consumers
    /// need to reckon days and hours in server-local time without holding
    /// a `World`. Servers absent from the map default to offset 0, which
    /// is also what the batch analysis does for unknown ids.
    pub fn server_utc_offsets(&self) -> std::collections::BTreeMap<String, i32> {
        self.registry
            .servers
            .iter()
            .map(|s| (s.id.clone(), self.topo.cities.get(s.city).utc_offset_hours))
            .collect()
    }

    /// Opens a session: routing caches + perf model borrowed from self.
    pub fn session(&self) -> Session<'_> {
        Session {
            paths: Paths::new(&self.topo),
            perf: PerfModel::new(&self.topo, LoadModel::new(self.load_seed)),
        }
    }

    /// Opens a session whose routing cache starts out seeded with
    /// pre-computed tables (see [`simnet::routing::Routing::with_tables`]).
    /// Tables are pure functions of the topology, so a warm session
    /// behaves identically to a cold one — it only skips recomputation.
    pub fn session_with(&self, tables: &simnet::routing::RouteTables) -> Session<'_> {
        Session {
            paths: Paths::with_tables(&self.topo, tables),
            perf: PerfModel::new(&self.topo, LoadModel::new(self.load_seed)),
        }
    }
}

/// Borrowed per-run machinery.
pub struct Session<'w> {
    /// Router-level path construction (with routing-table caches).
    pub paths: Paths<'w>,
    /// The performance model.
    pub perf: PerfModel<'w>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_are_deterministic() {
        let a = World::tiny(5);
        let b = World::tiny(5);
        assert_eq!(a.topo.links.len(), b.topo.links.len());
        assert_eq!(a.registry.servers.len(), b.registry.servers.len());
        assert_eq!(a.load_seed, b.load_seed);
    }

    #[test]
    fn session_borrows_world() {
        let w = World::tiny(6);
        let s = w.session();
        let region = w.topo.cities.by_name("The Dalles").unwrap();
        let leaf = w.topo.non_cloud_ases().next().unwrap();
        let city = w.topo.as_node(leaf).home_city;
        let path = s.paths.vm_host_path(
            region,
            w.topo.vm_ip(region, 0),
            leaf,
            city,
            w.topo.host_ip(leaf, city, 0),
            simnet::routing::Tier::Premium,
            simnet::routing::Direction::ToServer,
        );
        assert!(path.is_some());
    }

    #[test]
    fn registry_and_p2a_agree_on_server_asns() {
        let w = World::tiny(7);
        for s in w.registry.servers.iter().take(30) {
            let (_, asn) = w.p2a.lookup(s.ip).expect("server IPs are routed");
            assert_eq!(asn, s.asn);
        }
    }
}
