//! Automatic re-selection — the paper's §5 future work, built.
//!
//! "We conducted pilot tests to select test servers only once in the
//! beginning of the experiment. CLASP cannot adapt to changes in the use
//! of interdomain links and any new deployment of speed test servers. We
//! will develop scripts to automatically re-perform the pilot tests and
//! update the server lists."
//!
//! [`reselect`] re-runs the topology-based pilot against an updated
//! server registry and diffs the result against the in-force selection,
//! producing the minimal update plan an orchestrator applies between
//! measurement epochs (keeping continuity for unchanged servers, which
//! preserves their longitudinal series).

use crate::select::topology::{self, PilotConfig, TopologySelection};
use crate::world::World;
use simnet::geo::CityId;
use simnet::routing::Paths;
use speedtest::platform::ServerRegistry;

/// The update plan between two selections.
#[derive(Debug, Clone)]
pub struct SelectionUpdate {
    /// Servers in both selections — their hourly series continue.
    pub kept: Vec<String>,
    /// Newly selected servers (new deployments or newly preferred links).
    pub added: Vec<String>,
    /// Servers dropped (decommissioned, or their link now has a better
    /// representative).
    pub removed: Vec<String>,
    /// Border links covered before but not after.
    pub links_lost: usize,
    /// Border links covered after but not before.
    pub links_gained: usize,
}

impl SelectionUpdate {
    /// Fraction of the old selection that survives (continuity of the
    /// longitudinal data).
    pub fn continuity(&self) -> f64 {
        let old = self.kept.len() + self.removed.len();
        if old == 0 {
            return 1.0;
        }
        self.kept.len() as f64 / old as f64
    }
}

/// Re-runs the pilot against `new_registry` and diffs against `current`.
pub fn reselect(
    world: &World,
    paths: &Paths<'_>,
    current: &TopologySelection,
    new_registry: &ServerRegistry,
    region_city: CityId,
    budget: usize,
    pilot: &PilotConfig,
) -> (TopologySelection, SelectionUpdate) {
    let fresh = topology::select_with_registry(
        world,
        new_registry,
        paths,
        current.region,
        region_city,
        budget,
        pilot,
    );

    let old_set: std::collections::BTreeSet<&str> =
        current.servers.iter().map(String::as_str).collect();
    let new_set: std::collections::BTreeSet<&str> =
        fresh.servers.iter().map(String::as_str).collect();
    let kept: Vec<String> = old_set
        .intersection(&new_set)
        .map(|s| s.to_string())
        .collect();
    let added: Vec<String> = new_set
        .difference(&old_set)
        .map(|s| s.to_string())
        .collect();
    let removed: Vec<String> = old_set
        .difference(&new_set)
        .map(|s| s.to_string())
        .collect();

    let old_links: std::collections::BTreeSet<_> = current.server_link.values().copied().collect();
    let new_links: std::collections::BTreeSet<_> = fresh.server_link.values().copied().collect();
    let update = SelectionUpdate {
        kept,
        added,
        removed,
        links_lost: old_links.difference(&new_links).count(),
        links_gained: new_links.difference(&old_links).count(),
    };
    (fresh, update)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (World, TopologySelection) {
        let world = World::tiny(601);
        let sel = {
            let session = world.session();
            let region = world.topo.cities.by_name("The Dalles").unwrap();
            topology::select(
                &world,
                &session.paths,
                "us-west1",
                region,
                30,
                &PilotConfig::default(),
            )
        };
        (world, sel)
    }

    #[test]
    fn reselect_against_unchanged_registry_is_stable() {
        let (world, sel) = setup();
        let session = world.session();
        let region = world.topo.cities.by_name("The Dalles").unwrap();
        let (fresh, update) = reselect(
            &world,
            &session.paths,
            &sel,
            &world.registry,
            region,
            30,
            &PilotConfig::default(),
        );
        assert_eq!(fresh.servers, sel.servers);
        assert!(update.added.is_empty());
        assert!(update.removed.is_empty());
        assert_eq!(update.continuity(), 1.0);
    }

    #[test]
    fn churned_registry_produces_bounded_update() {
        let (world, sel) = setup();
        let session = world.session();
        let region = world.topo.cities.by_name("The Dalles").unwrap();
        let churned = world.registry.churned(&world.topo, 7, 0.25, 15);
        let (fresh, update) = reselect(
            &world,
            &session.paths,
            &sel,
            &churned,
            region,
            30,
            &PilotConfig::default(),
        );
        // Accounting holds.
        assert_eq!(update.kept.len() + update.removed.len(), sel.servers.len());
        assert_eq!(update.kept.len() + update.added.len(), fresh.servers.len());
        // 25% churn should not destroy the whole selection.
        assert!(
            update.continuity() > 0.3,
            "continuity = {}",
            update.continuity()
        );
        // Removed servers that vanished from the registry really vanished.
        for r in &update.removed {
            let still_exists = churned.by_id(r).is_some();
            let _ = still_exists; // may be replaced even if still deployed
        }
    }

    #[test]
    fn fresh_selection_only_contains_existing_servers() {
        let (world, sel) = setup();
        let session = world.session();
        let region = world.topo.cities.by_name("The Dalles").unwrap();
        let churned = world.registry.churned(&world.topo, 11, 0.5, 5);
        let (fresh, _) = reselect(
            &world,
            &session.paths,
            &sel,
            &churned,
            region,
            30,
            &PilotConfig::default(),
        );
        for s in &fresh.servers {
            assert!(churned.by_id(s).is_some(), "{s} not in churned registry");
        }
    }
}
