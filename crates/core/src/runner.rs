//! The unified campaign entrypoint.
//!
//! [`Runner`] is a builder over every way a campaign can execute —
//! fresh or resumed, batch or streaming, serial or `--jobs N`, with or
//! without an attached [`Observer`] — collapsing what used to be five
//! separate `Campaign` methods into one call chain:
//!
//! ```ignore
//! let result = Campaign::new(&world, cfg)
//!     .runner()
//!     .jobs(8)
//!     .resume_from(&checkpoint)
//!     .streaming(&mut engine)
//!     .observer(&obs)
//!     .run()?;
//! ```
//!
//! Every combination is deterministic: the result (and, when an
//! observer is attached, the metrics and trace JSON) is bit-identical
//! across job counts and across checkpoint resumes.

use crate::campaign::{Campaign, CampaignResult};
use clasp_obs::Observer;

/// Builder for one campaign execution. Construct via
/// [`Campaign::runner`]; consume with [`Runner::run`].
pub struct Runner<'c, 'w> {
    campaign: &'c Campaign<'w>,
    jobs: Option<usize>,
    stream: Option<&'c mut clasp_stream::StreamEngine>,
    resume: Option<&'c serde_json::Value>,
    observer: Option<&'c Observer>,
}

impl<'c, 'w> Runner<'c, 'w> {
    pub(crate) fn new(campaign: &'c Campaign<'w>) -> Self {
        Runner {
            campaign,
            jobs: None,
            stream: None,
            resume: None,
            observer: None,
        }
    }

    /// Overrides the worker count for this run (`0` means "use the
    /// machine's available parallelism", as in
    /// [`crate::CampaignConfig::jobs`]). Defaults to the config value.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Attaches a streaming detection engine: it consumes every
    /// ingested point as it lands and is finalized when the run
    /// completes. Checkpoints embed the engine snapshot under
    /// `"stream"`. When resuming, the engine must come from
    /// [`Campaign::restore_stream_engine`] on the same checkpoint.
    pub fn streaming(mut self, engine: &'c mut clasp_stream::StreamEngine) -> Self {
        self.stream = Some(engine);
        self
    }

    /// Resumes from a checkpoint taken by a previous run: completed
    /// work units are replayed from their durable bucket snapshots
    /// instead of re-executed.
    pub fn resume_from(mut self, checkpoint: &'c serde_json::Value) -> Self {
        self.resume = Some(checkpoint);
        self
    }

    /// Attaches an observability sink. The run then takes the phased
    /// execution path at every job count, so the observer's metrics
    /// and trace JSON are byte-identical across `--jobs N` and across
    /// checkpoint resumes. Without an observer, telemetry costs
    /// nothing.
    pub fn observer(mut self, obs: &'c Observer) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Executes the campaign. Fails only on a malformed checkpoint;
    /// fresh runs cannot fail.
    pub fn run(mut self) -> Result<CampaignResult, String> {
        let root = self.observer.map(|o| o.span("campaign"));
        let jobs = match self.jobs {
            Some(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Some(n) => n,
            None => self.campaign.config.effective_jobs(),
        };
        let result = self.campaign.run_resumable(
            self.resume,
            self.stream.as_deref_mut(),
            self.observer,
            jobs,
        )?;
        // Finalize only on success, matching the legacy streaming
        // entrypoints: a failed resume leaves the engine untouched.
        if let Some(engine) = self.stream.as_deref_mut() {
            engine.finalize();
        }
        if let Some(obs) = self.observer {
            record_result(obs, &result);
            if let Some(engine) = self.stream.as_deref() {
                record_engine(obs, engine);
            }
            obs.absorb_fault_log(&result.fault_log);
        }
        drop(root);
        Ok(result)
    }
}

/// Final campaign-level scrape: gauges and counters derived from the
/// finished result. Everything here is a pure function of the (already
/// deterministic) result, so it is identical across job counts and
/// resumes.
fn record_result(obs: &Observer, result: &CampaignResult) {
    obs.with_metrics(|m| {
        m.set_gauge("campaign.vm_count", result.vm_count as f64);
        m.set_gauge("campaign.tests_run", result.tests_run as f64);
        m.set_gauge("campaign.tainted_tests", result.tainted_tests as f64);
        m.set_gauge("campaign.raw_objects", result.raw_objects as f64);
        m.set_gauge(
            "campaign.completeness",
            result.completeness.overall_completeness(),
        );
        m.set_gauge("billing.vm_usd", result.billing.vm_usd());
        m.set_gauge("billing.egress_usd", result.billing.egress_usd());
        m.set_gauge("billing.storage_usd", result.billing.storage_usd());
        m.set_gauge("billing.total_usd", result.billing.total_usd());
        m.set_gauge("tsdb.points_written", result.db.points_written as f64);
        m.set_gauge("tsdb.series", result.db.series_count() as f64);
        let db = &result.db.stats;
        m.inc("tsdb.insert_batches", db.insert_batches);
        m.inc("tsdb.points_published", db.points_published);
        m.inc("tsdb.tail_peak_depth", db.tail_peak_depth);
        m.inc("tsdb.tail_overflow", db.tail_overflow);
        let f = result.fault_log.summary();
        m.inc("fault.injected", f.total as u64);
        m.inc("fault.recovered", f.recovered as u64);
        m.inc("fault.lost", f.lost as u64);
        m.inc("fault.retries", f.retries);
        m.inc("fault.lost_server_hours", f.lost_s_hours);
    });
}

/// Streaming-engine scrape, taken after `finalize()`.
fn record_engine(obs: &Observer, engine: &clasp_stream::StreamEngine) {
    let s = engine.stats().clone();
    obs.with_metrics(|m| {
        m.inc("stream.events_seen", s.events_seen);
        m.inc("stream.points_matched", s.points_matched);
        m.inc("stream.days_closed", s.days_closed);
        m.inc("stream.labels_emitted", s.labels_emitted);
        m.inc("stream.window_updates", s.window_updates);
        m.inc("stream.recalibrations", s.recalibrations);
        m.inc("stream.alert_transitions", s.alert_transitions);
        m.inc("stream.out_of_order", s.out_of_order);
        m.inc("stream.duplicates", s.duplicates);
        m.inc("stream.gap_hours", s.gap_hours);
        m.inc("stream.late_dropped", s.late_dropped);
        m.inc("stream.bus_overflow", s.bus_overflow);
    });
}
