//! The longitudinal measurement campaign (§3.2).
//!
//! For every region: select servers, plan and deploy VMs, then run the
//! hourly cron loop — each VM executes its randomized slot schedule, one
//! speed test per assigned server per hour, uploads the day's raw batch
//! to the regional bucket, and the pipeline ingests it into the
//! time-series store. Billing meters VM hours and egress bytes
//! throughout, because cost was the campaign's binding constraint.
//!
//! The differential regions run *pairs* of VMs — one per network tier —
//! against the differential-selected servers, producing the paired
//! samples that §4.1 compares.

use crate::pipeline;
use crate::plan::{self, DeploymentPlan};
use crate::select::differential::{self, DifferentialSelection, PreTestConfig};
use crate::select::topology::{self, PilotConfig, TopologySelection};
use crate::world::World;
use cloudsim::billing::Billing;
use cloudsim::bucket::Bucket;
use cloudsim::cron::CronSchedule;
use cloudsim::region::Region;
use cloudsim::vm::MachineType;
use simnet::routing::Tier;
use simnet::time::{SimTime, HOUR, SECONDS_PER_DAY};
use speedtest::client::{PathPair, SpeedTestClient, TestResult};
use tsdb::Db;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Campaign length in days for the topology-based measurements
    /// (the paper ran five months, May–September 2020).
    pub days: u64,
    /// Length in days of the differential measurements (two months,
    /// August–September), aligned to the campaign end.
    pub diff_days: u64,
    /// Topology regions with their per-region server budgets.
    pub topo_regions: Vec<(&'static str, usize)>,
    /// Differential regions.
    pub diff_regions: Vec<&'static str>,
    /// Pilot-scan parameters.
    pub pilot: PilotConfig,
    /// Differential pre-test parameters.
    pub pretest: PreTestConfig,
    /// Retain raw bucket objects after ingestion (memory-hungry at full
    /// scale; the real CLASP applies a lifecycle policy too).
    pub keep_raw: bool,
    /// Probability a VM misses a whole hour (maintenance, crash-loop,
    /// cron failure). Real longitudinal datasets have gaps; the analysis
    /// must tolerate them. Defaults to 0 so figures stay exactly
    /// reproducible.
    pub outage_rate: f64,
}

impl CampaignConfig {
    /// The paper's full-scale campaign: 5 regions × 5 months topology
    /// measurements with the published per-region budgets, plus 3
    /// differential regions × 2 months.
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            days: 153,
            diff_days: 61,
            topo_regions: vec![
                ("us-west1", 106),
                ("us-west2", 25),
                ("us-east1", 184),
                ("us-east4", 40),
                ("us-central1", 56),
            ],
            diff_regions: vec!["us-central1", "us-east1", "europe-west1"],
            pilot: PilotConfig::default(),
            pretest: PreTestConfig::default(),
            keep_raw: false,
            outage_rate: 0.0,
        }
    }

    /// A small configuration for tests: short window, few servers.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            days: 4,
            diff_days: 2,
            topo_regions: vec![("us-west1", 12)],
            diff_regions: vec!["europe-west1"],
            pilot: PilotConfig {
                flows_per_target: 3,
                cities_per_as: 1,
                ..PilotConfig::default()
            },
            pretest: PreTestConfig {
                probes_per_vp: 110,
                picks: 8,
                ..PreTestConfig::default()
            },
            keep_raw: true,
            outage_rate: 0.0,
        }
    }
}

/// Everything a finished campaign produced.
pub struct CampaignResult {
    /// The indexed measurement database.
    pub db: Db,
    /// Topology-based selections, one per topo region.
    pub topo_selections: Vec<TopologySelection>,
    /// Differential selections, one per diff region.
    pub diff_selections: Vec<DifferentialSelection>,
    /// The bill.
    pub billing: Billing,
    /// Measurement VMs created.
    pub vm_count: usize,
    /// Speed tests executed.
    pub tests_run: u64,
    /// Tests flagged CPU-tainted by the someta health check.
    pub tainted_tests: u64,
    /// Raw objects uploaded to buckets.
    pub raw_objects: u64,
    /// Retained raw buckets (per region), when `keep_raw` is set.
    pub buckets: Vec<Bucket>,
}

/// The campaign driver.
pub struct Campaign<'w> {
    world: &'w World,
    /// Configuration in force.
    pub config: CampaignConfig,
}

impl<'w> Campaign<'w> {
    /// Binds a campaign to a world.
    pub fn new(world: &'w World, config: CampaignConfig) -> Self {
        Self { world, config }
    }

    /// Runs the whole campaign.
    pub fn run(&self) -> CampaignResult {
        let session = self.world.session();
        let client = SpeedTestClient::default();
        let cron = CronSchedule::new(self.config.seed ^ 0xc407);
        let mut db = Db::new();
        let mut billing = Billing::new();
        let mut vm_count = 0usize;
        let mut tests_run = 0u64;
        let mut tainted = 0u64;
        let mut raw_objects = 0u64;
        let mut buckets = Vec::new();
        let mut topo_selections = Vec::new();
        let mut diff_selections = Vec::new();

        // --- Topology-based regions. ---
        for &(region_name, budget) in &self.config.topo_regions {
            let region = Region::by_name(region_name).expect("known region");
            let region_city = region.city_id(&self.world.topo.cities);
            let sel = topology::select(
                self.world,
                &session.paths,
                region.name,
                region_city,
                budget,
                &self.config.pilot,
            );
            let plan = plan::plan_region(region, &sel.servers, &cron);
            let mut bucket = Bucket::new(region.name);
            self.run_region_loop(
                &session,
                &client,
                &cron,
                region,
                &plan,
                Tier::Premium,
                "topo",
                SimTime::EPOCH,
                self.config.days,
                &mut bucket,
                &mut billing,
                &mut tests_run,
                &mut tainted,
            );
            vm_count += plan.n_vms;
            billing.record_vm_hours(
                MachineType::N1Standard2,
                plan.n_vms as f64 * self.config.days as f64 * 24.0,
            );
            let stats = pipeline::ingest(&bucket, &mut db);
            raw_objects += stats.objects;
            billing.record_storage(
                bucket.stored_bytes(),
                self.config.days as f64 * 24.0,
            );
            if self.config.keep_raw {
                buckets.push(bucket);
            }
            topo_selections.push(sel);
        }

        // --- Differential regions: one VM pair per region. ---
        let diff_start =
            SimTime((self.config.days - self.config.diff_days) * SECONDS_PER_DAY);
        for &region_name in &self.config.diff_regions {
            let region = Region::by_name(region_name).expect("known region");
            let region_city = region.city_id(&self.world.topo.cities);
            let sel = differential::select(
                self.world,
                &session.paths,
                &session.perf,
                region.name,
                region_city,
                &self.config.pretest,
            );
            let servers: Vec<String> =
                sel.picks.iter().map(|p| p.server_id.clone()).collect();
            let mut bucket = Bucket::new(format!("{}-diff", region.name));
            for tier in [Tier::Premium, Tier::Standard] {
                let plan = DeploymentPlan {
                    region: region.name,
                    n_vms: 1,
                    assignments: vec![servers.clone()],
                };
                self.run_region_loop(
                    &session,
                    &client,
                    &cron,
                    region,
                    &plan,
                    tier,
                    "diff",
                    diff_start,
                    self.config.diff_days,
                    &mut bucket,
                    &mut billing,
                    &mut tests_run,
                    &mut tainted,
                );
                vm_count += 1;
                billing.record_vm_hours(
                    MachineType::N1Standard2,
                    self.config.diff_days as f64 * 24.0,
                );
            }
            let stats = pipeline::ingest(&bucket, &mut db);
            raw_objects += stats.objects;
            billing
                .record_storage(bucket.stored_bytes(), self.config.diff_days as f64 * 24.0);
            if self.config.keep_raw {
                buckets.push(bucket);
            }
            diff_selections.push(sel);
        }

        CampaignResult {
            db,
            topo_selections,
            diff_selections,
            billing,
            vm_count,
            tests_run,
            tainted_tests: tainted,
            raw_objects,
            buckets,
        }
    }

    /// The hourly cron loop for one region/tier/server-assignment.
    #[allow(clippy::too_many_arguments)]
    fn run_region_loop(
        &self,
        session: &crate::world::Session<'_>,
        client: &SpeedTestClient,
        cron: &CronSchedule,
        region: &'static Region,
        plan: &DeploymentPlan,
        tier: Tier,
        method: &str,
        start: SimTime,
        days: u64,
        bucket: &mut Bucket,
        billing: &mut Billing,
        tests_run: &mut u64,
        tainted: &mut u64,
    ) {
        let region_city = region.city_id(&self.world.topo.cities);
        // Each VM has its own crontab: the premium and standard VMs of a
        // differential pair test the same server within the same hour but
        // at different minutes, like the real deployment.
        let tier_salt = match tier {
            Tier::Premium => 0x11u64,
            Tier::Standard => 0x22u64,
        };
        let cron = CronSchedule {
            budget: cron.budget,
            seed: cron.seed ^ tier_salt,
        };
        let cron = &cron;
        // Resolve the path pair for every assigned server once (paths are
        // stable across the campaign; CLASP re-selects only at start).
        let mut pairs: std::collections::HashMap<&str, (PathPair, &speedtest::platform::Server)> =
            Default::default();
        for assignment in &plan.assignments {
            for sid in assignment {
                let server = self
                    .world
                    .registry
                    .by_id(sid)
                    .expect("selected servers exist");
                let vm_ip = self.world.topo.vm_ip(region_city, 0);
                if let Some(pair) =
                    client.resolve_paths(&session.paths, region_city, vm_ip, server, tier)
                {
                    pairs.insert(sid.as_str(), (pair, server));
                }
            }
        }

        for (vm_idx, assignment) in plan.assignments.iter().enumerate() {
            let vm_name = format!("clasp-{}-{}-{}", region.name, tier.label(), vm_idx);
            let mut day_results: Vec<TestResult> = Vec::with_capacity(assignment.len() * 24);
            for day in 0..days {
                for hour in 0..24 {
                    let hour_start = start + day * SECONDS_PER_DAY + hour * HOUR;
                    // VM outages: the whole hour's cron run is lost.
                    if self.config.outage_rate > 0.0 {
                        let h = simnet::routing::load_key(
                            b"outage",
                            self.config.seed ^ vm_idx as u64 ^ tier_salt,
                            hour_start.as_secs(),
                        );
                        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
                        if draw < self.config.outage_rate {
                            continue;
                        }
                    }
                    let items: Vec<&str> = assignment.iter().map(String::as_str).collect();
                    for slot in cron.hour_slots(hour_start, &items) {
                        let Some((pair, server)) = pairs.get(slot.item) else {
                            continue;
                        };
                        let r = client.run_test(
                            &session.perf,
                            pair,
                            server,
                            slot.start,
                            self.config.seed ^ tier_salt,
                        );
                        // Health check (someta).
                        let meta = nettools::someta::record(
                            &vm_name,
                            region.name,
                            slot.start,
                            r.download_mbps,
                        );
                        if nettools::someta::is_tainted(&meta) {
                            *tainted += 1;
                        }
                        // Billing: upload data + download ACK overhead is
                        // egress; download data is (free) ingress.
                        let up_bytes =
                            (r.upload_mbps / 8.0 * server.platform.transfer_seconds() * 1e6)
                                as u64;
                        let down_bytes = (r.download_mbps / 8.0
                            * server.platform.transfer_seconds()
                            * 1e6) as u64;
                        billing.record_transfer(
                            tier == Tier::Premium,
                            up_bytes + down_bytes / 50,
                            down_bytes,
                        );
                        *tests_run += 1;
                        day_results.push(r);
                    }
                }
                // End of day: upload the raw batch.
                if !day_results.is_empty() {
                    pipeline::upload_batch(
                        bucket,
                        region.name,
                        method,
                        &vm_name,
                        &day_results,
                        start + (day + 1) * SECONDS_PER_DAY,
                    );
                    day_results.clear();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdb::{Aggregate, Query};

    fn run_small() -> (World, CampaignResult) {
        let world = World::tiny(121);
        let result = Campaign::new(&world, CampaignConfig::small(121)).run();
        (world, result)
    }

    #[test]
    fn campaign_produces_hourly_series() {
        let (_, res) = run_small();
        assert!(res.tests_run > 0);
        assert!(res.db.points_written > 0);
        assert_eq!(res.db.points_written, res.tests_run);
        // One topo selection, one diff selection.
        assert_eq!(res.topo_selections.len(), 1);
        assert_eq!(res.diff_selections.len(), 1);
        assert!(res.vm_count >= 3); // ≥1 topo VM + 2 diff VMs
        assert!(res.raw_objects > 0);
    }

    #[test]
    fn topo_series_have_one_test_per_hour() {
        let (_, res) = run_small();
        let mut db = res.db;
        let sel = &res.topo_selections[0];
        let first = &sel.servers[0];
        let rows = Query::select("speedtest", "download")
            .r#where("server", first)
            .r#where("method", "topo")
            .group_by_time(3600)
            .aggregate(Aggregate::Count)
            .run(&mut db);
        assert_eq!(rows.len(), 1);
        // 4 days × 24 hours, one test per hour.
        assert_eq!(rows[0].rows.len(), 96);
        assert!(rows[0].rows.iter().all(|r| r.value == 1.0));
    }

    #[test]
    fn differential_servers_measured_on_both_tiers() {
        let (_, res) = run_small();
        let mut db = res.db;
        let sel = &res.diff_selections[0];
        assert!(!sel.picks.is_empty());
        let sid = &sel.picks[0].server_id;
        for tier in ["premium", "standard"] {
            let rows = Query::select("speedtest", "download")
                .r#where("server", sid)
                .r#where("tier", tier)
                .r#where("method", "diff")
                .aggregate(Aggregate::Count)
                .run(&mut db);
            assert_eq!(rows.len(), 1, "tier {tier} measured");
            // 2 days × 24 hours.
            assert_eq!(rows[0].rows[0].value, 48.0);
        }
    }

    #[test]
    fn billing_accumulates_vm_and_egress() {
        let (_, res) = run_small();
        assert!(res.billing.vm_usd() > 0.0);
        assert!(res.billing.egress_usd() > 0.0);
        assert!(res.billing.total_usd() > 0.0);
        // Download is ingress → free; the bill is dominated by VM + the
        // small upload egress.
        assert!(res.billing.ingress_bytes > res.billing.premium_egress_bytes);
    }

    #[test]
    fn campaign_is_deterministic() {
        let world = World::tiny(131);
        let a = Campaign::new(&world, CampaignConfig::small(131)).run();
        let b = Campaign::new(&world, CampaignConfig::small(131)).run();
        assert_eq!(a.tests_run, b.tests_run);
        assert_eq!(a.db.points_written, b.db.points_written);
        assert_eq!(
            a.billing.premium_egress_bytes,
            b.billing.premium_egress_bytes
        );
    }

    #[test]
    fn health_check_rarely_fires() {
        let (_, res) = run_small();
        // The paper verified the VM type was never CPU-starved.
        assert!(res.tainted_tests * 10 < res.tests_run);
    }

    #[test]
    fn raw_buckets_retained_when_asked() {
        let (_, res) = run_small();
        assert!(!res.buckets.is_empty());
        assert!(res.buckets.iter().all(|b| !b.is_empty()));
    }
}
