//! The longitudinal measurement campaign (§3.2).
//!
//! For every region: select servers, plan and deploy VMs, then run the
//! hourly cron loop — each VM executes its randomized slot schedule, one
//! speed test per assigned server per hour, uploads the day's raw batch
//! to the regional bucket, and the pipeline ingests it into the
//! time-series store. Billing meters VM hours and egress bytes
//! throughout, because cost was the campaign's binding constraint.
//!
//! The differential regions run *pairs* of VMs — one per network tier —
//! against the differential-selected servers, producing the paired
//! samples that §4.1 compares.

use crate::exec;
use crate::pipeline;
use crate::plan::{self, DeploymentPlan};
use crate::select::differential::{self, DifferentialSelection, PreTestConfig};
use crate::select::topology::{self, PilotConfig, TopologySelection};
use crate::world::World;
use clasp_obs::{MetricsRegistry, Observer};
use cloudsim::billing::Billing;
use cloudsim::bucket::Bucket;
use cloudsim::cron::CronSchedule;
use cloudsim::region::Region;
use cloudsim::vm::MachineType;
use faultsim::{
    CompletenessReport, CronEffect, FaultKind, FaultLog, FaultPlan, RetryPolicy, VmScope,
};
use simnet::routing::Tier;
use simnet::time::{SimTime, HOUR, SECONDS_PER_DAY};
use speedtest::client::{PathPair, SpeedTestClient, TestResult};
use tsdb::Db;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Campaign length in days for the topology-based measurements
    /// (the paper ran five months, May–September 2020).
    pub days: u64,
    /// Length in days of the differential measurements (two months,
    /// August–September), aligned to the campaign end.
    pub diff_days: u64,
    /// Topology regions with their per-region server budgets.
    pub topo_regions: Vec<(&'static str, usize)>,
    /// Differential regions.
    pub diff_regions: Vec<&'static str>,
    /// Pilot-scan parameters.
    pub pilot: PilotConfig,
    /// Differential pre-test parameters.
    pub pretest: PreTestConfig,
    /// Retain raw bucket objects after ingestion (memory-hungry at full
    /// scale; the real CLASP applies a lifecycle policy too).
    pub keep_raw: bool,
    /// Probability a VM misses a whole hour (maintenance, crash-loop,
    /// cron failure). Real longitudinal datasets have gaps; the analysis
    /// must tolerate them. Defaults to 0 so figures stay exactly
    /// reproducible.
    ///
    /// **Deprecated**: this knob is now a thin shim over
    /// [`FaultPlan::legacy_outage`] — the draws are bit-identical to the
    /// old inline implementation, so existing seeds reproduce the same
    /// gaps, but new code should configure [`Self::fault_plan`] instead,
    /// which types the faults, logs ground truth, and lets the
    /// orchestrator retry its way past the recoverable ones.
    pub outage_rate: f64,
    /// Fault-injection plan for the run. [`FaultPlan::none`] (the
    /// default) is bitwise invisible: the campaign output is identical
    /// to a build without any fault hooks.
    pub fault_plan: FaultPlan,
    /// Worker threads for campaign execution. `1` takes the serial
    /// path; `0` means "use the machine's available parallelism". Any
    /// value produces bit-identical results — units run on independent
    /// seeded RNG streams and their outputs are merged in canonical
    /// order — so this knob trades wall-clock only, never output.
    pub jobs: usize,
}

impl CampaignConfig {
    /// The paper's full-scale campaign: 5 regions × 5 months topology
    /// measurements with the published per-region budgets, plus 3
    /// differential regions × 2 months.
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            days: 153,
            diff_days: 61,
            topo_regions: vec![
                ("us-west1", 106),
                ("us-west2", 25),
                ("us-east1", 184),
                ("us-east4", 40),
                ("us-central1", 56),
            ],
            diff_regions: vec!["us-central1", "us-east1", "europe-west1"],
            pilot: PilotConfig::default(),
            pretest: PreTestConfig::default(),
            keep_raw: false,
            outage_rate: 0.0,
            fault_plan: FaultPlan::none(),
            jobs: 1,
        }
    }

    /// A small configuration for tests: short window, few servers.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            days: 4,
            diff_days: 2,
            topo_regions: vec![("us-west1", 12)],
            diff_regions: vec!["europe-west1"],
            pilot: PilotConfig {
                flows_per_target: 3,
                cities_per_as: 1,
                ..PilotConfig::default()
            },
            pretest: PreTestConfig {
                probes_per_vp: 110,
                picks: 8,
                ..PreTestConfig::default()
            },
            keep_raw: true,
            outage_rate: 0.0,
            fault_plan: FaultPlan::none(),
            jobs: 1,
        }
    }

    /// The effective fault plan: [`Self::fault_plan`] with the
    /// deprecated [`Self::outage_rate`] folded in as a legacy shim.
    pub fn effective_fault_plan(&self) -> FaultPlan {
        let mut plan = self.fault_plan.clone();
        if self.outage_rate > 0.0 {
            plan.legacy_outage_rate = self.outage_rate;
        }
        plan
    }

    /// The worker count [`Self::jobs`] resolves to: itself, or the
    /// machine's available parallelism when set to `0`.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// Everything a finished campaign produced.
pub struct CampaignResult {
    /// The indexed measurement database.
    pub db: Db,
    /// Topology-based selections, one per topo region.
    pub topo_selections: Vec<TopologySelection>,
    /// Differential selections, one per diff region.
    pub diff_selections: Vec<DifferentialSelection>,
    /// The bill.
    pub billing: Billing,
    /// Measurement VMs created.
    pub vm_count: usize,
    /// Speed tests executed.
    pub tests_run: u64,
    /// Tests flagged CPU-tainted by the someta health check.
    pub tainted_tests: u64,
    /// Raw objects uploaded to buckets.
    pub raw_objects: u64,
    /// Retained raw buckets (per region), when `keep_raw` is set.
    pub buckets: Vec<Bucket>,
    /// Ground truth: every fault injected during the run.
    pub fault_log: FaultLog,
    /// Expected vs. collected server-hours, per region unit. Under any
    /// fault plan this reconciles exactly against [`Self::fault_log`].
    pub completeness: CompletenessReport,
    /// One checkpoint per completed work unit (JSON). Feeding any of
    /// them to [`Campaign::resume`] re-produces the identical final
    /// result without re-running the completed units.
    pub checkpoints: Vec<serde_json::Value>,
}

/// One entry in the campaign's ordered, checkpointable work-unit list.
enum UnitKind {
    Topo { budget: usize },
    Diff,
}

/// Cumulative campaign state, restored from a checkpoint or fresh.
struct ResumeState {
    vm_count: usize,
    tests_run: u64,
    tainted: u64,
    billing: Billing,
    flog: FaultLog,
    report: CompletenessReport,
    completed: Vec<String>,
    raw_store: Vec<(String, serde_json::Value)>,
    /// Phase-2 execution metrics of completed units, restored from the
    /// checkpoint's `"obs"` section (empty when the checkpoint was
    /// taken without an observer, or on a fresh run).
    exec_metrics: MetricsRegistry,
}

impl ResumeState {
    fn load(resume: Option<&serde_json::Value>) -> Result<ResumeState, String> {
        let mut st = ResumeState {
            vm_count: 0,
            tests_run: 0,
            tainted: 0,
            billing: Billing::new(),
            flog: FaultLog::new(),
            report: CompletenessReport::new(),
            completed: Vec::new(),
            raw_store: Vec::new(),
            exec_metrics: MetricsRegistry::new(),
        };
        let Some(ckpt) = resume else {
            return Ok(st);
        };
        let counters = ckpt.get("counters").ok_or("checkpoint missing counters")?;
        let u = |k: &str| counters.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        st.vm_count = u("vm_count") as usize;
        st.tests_run = u("tests_run");
        st.tainted = u("tainted");
        st.billing = billing_from_json(ckpt.get("billing").ok_or("checkpoint missing billing")?);
        st.flog = FaultLog::from_json(
            ckpt.get("fault_log")
                .ok_or("checkpoint missing fault_log")?,
        )?;
        st.report = CompletenessReport::from_json(
            ckpt.get("completeness")
                .ok_or("checkpoint missing completeness")?,
        )?;
        st.completed = ckpt
            .get("completed")
            .and_then(|c| c.as_array())
            .ok_or("checkpoint missing completed")?
            .iter()
            .filter_map(|v| v.as_str().map(String::from))
            .collect();
        for entry in ckpt
            .get("raw")
            .and_then(|r| r.as_array())
            .ok_or("checkpoint missing raw")?
        {
            let label = entry
                .get("unit")
                .and_then(|v| v.as_str())
                .ok_or("raw entry missing unit")?;
            st.raw_store.push((label.to_string(), entry.clone()));
        }
        if let Some(exec) = ckpt.get("obs").and_then(|o| o.get("exec")) {
            st.exec_metrics = MetricsRegistry::from_json(exec)?;
        }
        Ok(st)
    }
}

/// The selection a unit-prep task computed.
enum UnitSel {
    Topo(TopologySelection),
    Diff(DifferentialSelection),
}

/// Phase-1 output of a parallel run: one prepared unit.
struct UnitPrep<'w> {
    sel: UnitSel,
    /// Total VMs the unit's plan deploys (topo only; diff counts per VM
    /// at merge). Zero for already-completed units.
    n_vms: usize,
    /// VM task descriptors, in the serial run's execution order. Empty
    /// for already-completed units.
    vms: Vec<VmTask<'w>>,
    /// `(vm name, servers assigned, tests expected)` for every VM the
    /// unit's plan deploys — computed even for completed units, so
    /// observer metrics derived from it are identical whether a run is
    /// fresh or resumed.
    vm_plan: Vec<(String, u64, u64)>,
}

/// Resolved path pairs, keyed by server id.
type PairMap<'w> = std::collections::HashMap<String, (PathPair, &'w speedtest::platform::Server)>;

/// Everything a worker needs to run one VM's campaign independently.
struct VmTask<'w> {
    unit: usize,
    vm_idx: usize,
    /// The unit plan's total VM count (quota checks draw on it).
    n_vms: usize,
    tier: Tier,
    assignment: Vec<String>,
    /// Path pairs resolved during unit prep, while the worker's route
    /// cache is warm from the unit's selection scan. Resolution is a
    /// pure function of (world, region, tier, server), so resolving in
    /// phase 1 instead of next to the cron loop cannot change results —
    /// it only keeps the expensive routing tables off the per-VM phase.
    pairs: PairMap<'w>,
    comp_label: String,
    /// Region string of the unit's shared bucket (upload fault draws
    /// are scoped to it, so VM-local buckets must carry the same one).
    bucket_region: String,
    method: &'static str,
    start: SimTime,
    days: u64,
}

/// Everything one VM's campaign produced, buffered for the ordered
/// merge. All cross-VM shared state in the serial run decomposes into
/// order-free parts: fault ids rebase on append, completeness and
/// transfer tallies are unsigned sums, bucket keys are disjoint per VM.
struct VmOutput {
    bucket: Bucket,
    billing: Billing,
    tests_run: u64,
    tainted: u64,
    flog: FaultLog,
    report: CompletenessReport,
    decoded: Vec<pipeline::DecodedObject>,
    /// Per-task metric shard (counters + fixed-bound histograms only),
    /// merged into the cumulative execution metrics in canonical unit
    /// order. Empty when no observer is attached.
    metrics: MetricsRegistry,
}

/// Shared per-VM-loop parameters (the invariants of one
/// region/tier/assignment run).
struct VmLoopParams<'a> {
    region: &'static Region,
    n_vms: usize,
    tier: Tier,
    tier_salt: u64,
    method: &'a str,
    start: SimTime,
    days: u64,
    comp_label: &'a str,
}

/// The campaign driver.
pub struct Campaign<'w> {
    world: &'w World,
    /// Configuration in force.
    pub config: CampaignConfig,
}

impl<'w> Campaign<'w> {
    /// Binds a campaign to a world.
    pub fn new(world: &'w World, config: CampaignConfig) -> Self {
        Self { world, config }
    }

    /// The campaign's run builder — the one entrypoint behind every
    /// mode (fresh, resumed, streaming, parallel, observed).
    ///
    /// ```ignore
    /// let result = Campaign::new(&world, cfg)
    ///     .runner()
    ///     .jobs(8)
    ///     .observer(&obs)
    ///     .run()?;
    /// ```
    pub fn runner(&self) -> crate::runner::Runner<'_, 'w> {
        crate::runner::Runner::new(self)
    }

    /// Runs the whole campaign from the start.
    #[deprecated(note = "use `Campaign::runner().run()`")]
    pub fn run(&self) -> CampaignResult {
        self.runner().run().expect("fresh runs cannot fail")
    }

    /// Resumes a campaign from a checkpoint taken by a previous run.
    /// Completed work units are not re-executed: their selections are
    /// re-derived (they are pure functions of world + config) and their
    /// raw data replayed from the checkpoint's durable bucket snapshot,
    /// producing a final result identical to an uninterrupted run.
    #[deprecated(note = "use `Campaign::runner().resume_from(ckpt).run()`")]
    pub fn resume(&self, checkpoint: &serde_json::Value) -> Result<CampaignResult, String> {
        self.runner().resume_from(checkpoint).run()
    }

    /// Builds a [`StreamEngine`](clasp_stream::StreamEngine) wired to
    /// this campaign's world (server-local UTC offsets resolved from the
    /// registry, like the batch analysis does).
    pub fn stream_engine(&self, cfg: clasp_stream::EngineConfig) -> clasp_stream::StreamEngine {
        clasp_stream::StreamEngine::new(cfg, self.world.server_utc_offsets())
    }

    /// Restores a streaming engine from a checkpoint taken by
    /// [`Self::run_streaming`]. Checkpoints without stream state (from a
    /// non-streaming run) yield a fresh engine, which
    /// [`Self::resume_streaming`] then catches up via replay.
    pub fn restore_stream_engine(
        &self,
        cfg: clasp_stream::EngineConfig,
        checkpoint: &serde_json::Value,
    ) -> Result<clasp_stream::StreamEngine, String> {
        match checkpoint.get("stream") {
            Some(snap) => {
                clasp_stream::StreamEngine::restore(cfg, self.world.server_utc_offsets(), snap)
            }
            None => Ok(self.stream_engine(cfg)),
        }
    }

    /// Runs the campaign with live streaming detection: the engine
    /// subscribes a bounded tail to the database insert stream, consumes
    /// every ingested point as it lands, and is finalized when the run
    /// completes. Checkpoints taken along the way embed the engine
    /// snapshot under `"stream"`, so [`Self::resume_streaming`] can
    /// continue both the campaign and the detection state.
    #[deprecated(note = "use `Campaign::runner().streaming(engine).run()`")]
    pub fn run_streaming(&self, engine: &mut clasp_stream::StreamEngine) -> CampaignResult {
        self.runner()
            .streaming(engine)
            .run()
            .expect("fresh runs cannot fail")
    }

    /// Resumes a streaming campaign. `engine` must come from
    /// [`Self::restore_stream_engine`] on the same checkpoint (its
    /// replay cursor tells the run how many re-ingested points to skip).
    #[deprecated(note = "use `Campaign::runner().resume_from(ckpt).streaming(engine).run()`")]
    pub fn resume_streaming(
        &self,
        checkpoint: &serde_json::Value,
        engine: &mut clasp_stream::StreamEngine,
    ) -> Result<CampaignResult, String> {
        self.runner()
            .resume_from(checkpoint)
            .streaming(engine)
            .run()
    }

    /// The single execution path behind [`crate::runner::Runner`].
    ///
    /// An attached observer forces the phased (parallel-shaped) path
    /// even at `jobs = 1`: the phases are where logical time advances
    /// and spans open, so taking the same path at every job count is
    /// what makes the span tree byte-identical across `--jobs N`. The
    /// un-observed serial path stays exactly the pre-observer code.
    pub(crate) fn run_resumable(
        &self,
        resume: Option<&serde_json::Value>,
        stream: Option<&mut clasp_stream::StreamEngine>,
        observer: Option<&Observer>,
        jobs: usize,
    ) -> Result<CampaignResult, String> {
        if jobs > 1 || observer.is_some() {
            self.run_parallel(resume, stream, observer, jobs.max(1))
        } else {
            self.run_serial(resume, stream)
        }
    }

    /// The campaign as an ordered list of checkpointable work units:
    /// each topology region, then each differential region. This order
    /// is the canonical one — serial execution follows it, and the
    /// parallel merge reassembles worker output along it.
    fn units(&self) -> Vec<(String, &'static str, UnitKind)> {
        let mut units = Vec::new();
        for &(region_name, budget) in &self.config.topo_regions {
            units.push((
                format!("topo:{region_name}"),
                region_name,
                UnitKind::Topo { budget },
            ));
        }
        for &region_name in &self.config.diff_regions {
            units.push((format!("diff:{region_name}"), region_name, UnitKind::Diff));
        }
        units
    }

    fn run_serial(
        &self,
        resume: Option<&serde_json::Value>,
        mut stream: Option<&mut clasp_stream::StreamEngine>,
    ) -> Result<CampaignResult, String> {
        let client = SpeedTestClient::default();
        let cron = CronSchedule::new(self.config.seed ^ 0xc407);
        let fplan = self.config.effective_fault_plan();
        // Link faults degrade the fluid model for every path evaluated
        // by this session. An empty degradation set is bitwise
        // invisible, so zero-link-fault plans reproduce old campaigns.
        let mut session = self.world.session();
        session.perf.set_degradations(fplan.link_degradations());
        let session = session;
        let mut db = Db::new();
        // Streaming: a bounded tail mirrors every insert to the engine.
        // On resume the engine's replay cursor (`events_seen`) skips the
        // points re-ingested from completed units' bucket snapshots, so
        // the engine sees each point exactly once across interruptions.
        let tail = stream
            .as_deref_mut()
            .map(|engine| db.subscribe(engine.config().bus_capacity));
        let mut replay_skip = stream.as_deref().map_or(0, |engine| engine.events_seen());
        let mut drain = |stream: &mut Option<&mut clasp_stream::StreamEngine>| {
            if let (Some(tail), Some(engine)) = (tail.as_ref(), stream.as_deref_mut()) {
                tail.drain(|p| {
                    if replay_skip > 0 {
                        replay_skip -= 1;
                    } else {
                        engine.ingest(&p);
                    }
                });
                engine.record_bus_overflow(tail.overflow());
            }
        };
        let mut raw_objects = 0u64;
        let mut buckets = Vec::new();
        let mut topo_selections = Vec::new();
        let mut diff_selections = Vec::new();
        let mut checkpoints = Vec::new();
        let st = ResumeState::load(resume)?;
        let mut vm_count = st.vm_count;
        let mut tests_run = st.tests_run;
        let mut tainted = st.tainted;
        let mut billing = st.billing;
        let mut flog = st.flog;
        let mut report = st.report;
        let mut completed = st.completed;
        // Durable raw snapshots of completed units, label → bucket dump.
        let mut raw_store = st.raw_store;
        record_link_faults(&fplan, resume.is_none(), &mut flog);

        let diff_start = SimTime((self.config.days - self.config.diff_days) * SECONDS_PER_DAY);

        for (label, region_name, unit) in self.units() {
            let region = Region::by_name(region_name).expect("known region");
            let region_city = region.city_id(&self.world.topo.cities);
            let done = completed.iter().any(|c| c == &label);

            match unit {
                UnitKind::Topo { budget } => {
                    // Selection is a pure function of world + config:
                    // recomputed identically whether resuming or not.
                    let sel = topology::select(
                        self.world,
                        &session.paths,
                        region.name,
                        region_city,
                        budget,
                        &self.config.pilot,
                    );
                    let mut bucket = if done {
                        bucket_from_snapshot(&raw_store, &label)?
                    } else {
                        Bucket::new(region.name)
                    };
                    if !done {
                        let plan = plan::plan_region(region, &sel.servers, &cron);
                        self.run_region_loop(
                            &session,
                            &client,
                            &cron,
                            region,
                            &plan,
                            Tier::Premium,
                            "topo",
                            SimTime::EPOCH,
                            self.config.days,
                            &mut bucket,
                            &mut billing,
                            &mut tests_run,
                            &mut tainted,
                            &fplan,
                            &mut flog,
                            &mut report,
                            region.name,
                        );
                        vm_count += plan.n_vms;
                        billing.record_vm_hours(
                            MachineType::N1Standard2,
                            plan.n_vms as f64 * self.config.days as f64 * 24.0,
                        );
                        billing
                            .record_storage(bucket.stored_bytes(), self.config.days as f64 * 24.0);
                        raw_store.push((label.clone(), bucket_snapshot(&bucket, &label)));
                        completed.push(label.clone());
                    }
                    let stats = pipeline::ingest(&bucket, &mut db);
                    drain(&mut stream);
                    raw_objects += stats.objects;
                    if self.config.keep_raw {
                        buckets.push(bucket);
                    }
                    topo_selections.push(sel);
                }
                UnitKind::Diff => {
                    let sel = differential::select(
                        self.world,
                        &session.paths,
                        &session.perf,
                        region.name,
                        region_city,
                        &self.config.pretest,
                    );
                    let mut bucket = if done {
                        bucket_from_snapshot(&raw_store, &label)?
                    } else {
                        Bucket::new(format!("{}-diff", region.name))
                    };
                    if !done {
                        let servers: Vec<String> =
                            sel.picks.iter().map(|p| p.server_id.clone()).collect();
                        for tier in [Tier::Premium, Tier::Standard] {
                            let plan = DeploymentPlan {
                                region: region.name,
                                n_vms: 1,
                                assignments: vec![servers.clone()],
                            };
                            let comp_label = format!("{}-diff-{}", region.name, tier.label());
                            self.run_region_loop(
                                &session,
                                &client,
                                &cron,
                                region,
                                &plan,
                                tier,
                                "diff",
                                diff_start,
                                self.config.diff_days,
                                &mut bucket,
                                &mut billing,
                                &mut tests_run,
                                &mut tainted,
                                &fplan,
                                &mut flog,
                                &mut report,
                                &comp_label,
                            );
                            vm_count += 1;
                            billing.record_vm_hours(
                                MachineType::N1Standard2,
                                self.config.diff_days as f64 * 24.0,
                            );
                        }
                        billing.record_storage(
                            bucket.stored_bytes(),
                            self.config.diff_days as f64 * 24.0,
                        );
                        raw_store.push((label.clone(), bucket_snapshot(&bucket, &label)));
                        completed.push(label.clone());
                    }
                    let stats = pipeline::ingest(&bucket, &mut db);
                    drain(&mut stream);
                    raw_objects += stats.objects;
                    if self.config.keep_raw {
                        buckets.push(bucket);
                    }
                    diff_selections.push(sel);
                }
            }

            // Periodic checkpoint: everything needed to resume after
            // this unit, with the raw bucket dumps as durable storage.
            // Streaming runs additionally embed the engine snapshot, so
            // detection state survives the interruption too.
            let mut ckpt = make_checkpoint(
                &completed, &billing, vm_count, tests_run, tainted, &flog, &report, &raw_store,
            );
            if let Some(engine) = stream.as_deref() {
                if let serde_json::Value::Object(m) = &mut ckpt {
                    m.insert("stream".into(), engine.snapshot());
                }
            }
            checkpoints.push(ckpt);
        }

        // Checkpoints carry the raw expected/collected tallies; the
        // fault outcomes are folded in exactly once, here, so a resumed
        // run absorbs each fault a single time.
        report.absorb_log(&flog);

        Ok(CampaignResult {
            db,
            topo_selections,
            diff_selections,
            billing,
            vm_count,
            tests_run,
            tainted_tests: tainted,
            raw_objects,
            buckets,
            fault_log: flog,
            completeness: report,
            checkpoints,
        })
    }

    /// The parallel path behind `--jobs N`, in three phases: per-unit
    /// prep (selection + deployment plan) scattered across workers,
    /// per-VM campaign loops scattered across workers into VM-local
    /// buffers, then a serial merge in canonical unit order that
    /// replays exactly the mutation sequence [`Self::run_serial`]
    /// performs. Every output — points, checkpoints, fault ids,
    /// billing, completeness rows, stream labels — is therefore
    /// bit-identical to `--jobs 1`:
    ///
    /// * fault ids are log positions, so appending VM-local logs in
    ///   canonical order with an id rebase reproduces serial ids;
    /// * completeness tallies and transfer bytes are unsigned sums,
    ///   which commute;
    /// * VM-hour and storage meters are `f64` (non-associative), so the
    ///   merge re-issues those ops in serial order instead of summing
    ///   worker partials;
    /// * bucket keys are disjoint per VM and `BTreeMap`-stored, so
    ///   absorb order cannot change the listing, and sorting the
    ///   per-VM decoded objects by key reproduces the serial ingest
    ///   order — which is what the streaming engine consumes.
    fn run_parallel(
        &self,
        resume: Option<&serde_json::Value>,
        mut stream: Option<&mut clasp_stream::StreamEngine>,
        observer: Option<&Observer>,
        jobs: usize,
    ) -> Result<CampaignResult, String> {
        let client = SpeedTestClient::default();
        let base_cron = CronSchedule::new(self.config.seed ^ 0xc407);
        let fplan = self.config.effective_fault_plan();
        let mut db = Db::new();
        // Streaming: the bounded tail and replay cursor work exactly as
        // in the serial path — the engine only ever sees the merged,
        // canonically-ordered point stream.
        let tail = stream
            .as_deref_mut()
            .map(|engine| db.subscribe(engine.config().bus_capacity));
        let mut replay_skip = stream.as_deref().map_or(0, |engine| engine.events_seen());
        let mut drain = |stream: &mut Option<&mut clasp_stream::StreamEngine>| {
            if let (Some(tail), Some(engine)) = (tail.as_ref(), stream.as_deref_mut()) {
                tail.drain(|p| {
                    if replay_skip > 0 {
                        replay_skip -= 1;
                    } else {
                        engine.ingest(&p);
                    }
                });
                engine.record_bus_overflow(tail.overflow());
            }
        };
        let st = ResumeState::load(resume)?;
        let mut vm_count = st.vm_count;
        let mut tests_run = st.tests_run;
        let mut tainted = st.tainted;
        let mut billing = st.billing;
        let mut flog = st.flog;
        let mut report = st.report;
        let mut completed = st.completed;
        let mut raw_store = st.raw_store;
        let mut exec_metrics = st.exec_metrics;
        record_link_faults(&fplan, resume.is_none(), &mut flog);
        let mut raw_objects = 0u64;
        let mut buckets = Vec::new();
        let mut topo_selections = Vec::new();
        let mut diff_selections = Vec::new();
        let mut checkpoints = Vec::new();

        let units = self.units();
        let done: Vec<bool> = units
            .iter()
            .map(|(label, _, _)| completed.iter().any(|c| c == label))
            .collect();
        let diff_start = SimTime((self.config.days - self.config.diff_days) * SECONDS_PER_DAY);

        // Phase 1: per-unit prep — selections (pure functions of world
        // + config, recomputed identically whether resuming or not) and
        // the VM task descriptors of pending units. Each worker builds
        // one session and keeps it warm across its units: the Paths
        // route cache is memoization only, so cache state can never
        // change a result — only skip recomputation.
        // Phase 0: routing-table warm. A pilot scan traceroutes every
        // non-cloud AS, so the serial run's single session ends up with
        // one routing table per AS; per-worker sessions would recompute
        // that whole set once per worker. Each table is an independent
        // pure function of the topology, so compute the full set here —
        // fanned out across the same worker pool — and seed every
        // session below with the shared result.
        let dsts: Vec<simnet::topology::AsId> = std::iter::once(self.world.topo.cloud)
            .chain(self.world.topo.non_cloud_ases())
            .collect();
        let span0 = observer.map(|o| o.span("phase0:route_warm"));
        let (table_pairs, shards) = exec::scatter_metered(
            jobs,
            dsts.len(),
            || (),
            |(), m, i| {
                m.inc("exec.route_tables", 1);
                let routing = simnet::routing::Routing::new(&self.world.topo);
                (dsts[i], routing.routes_to(dsts[i]))
            },
        );
        let tables: simnet::routing::RouteTables = table_pairs.into_iter().collect();
        if let Some(obs) = observer {
            // One quantum of logical time per route table: an
            // input-derived amount, never a scheduling-derived one.
            for shard in &shards {
                obs.merge_shard(shard);
            }
            obs.advance(dsts.len() as u64);
        }
        drop(span0);

        let span1 = observer.map(|o| o.span("phase1:unit_prep"));
        let degradations = fplan.link_degradations();
        let (preps, shards): (Vec<UnitPrep>, _) = exec::scatter_metered(
            jobs,
            units.len(),
            || {
                let mut session = self.world.session_with(&tables);
                session.perf.set_degradations(degradations.clone());
                session
            },
            |session, shard, i| {
                shard.inc("prep.units", 1);
                let (_, region_name, kind) = &units[i];
                let region = Region::by_name(region_name).expect("known region");
                let region_city = region.city_id(&self.world.topo.cities);
                match kind {
                    UnitKind::Topo { budget } => {
                        let sel = topology::select(
                            self.world,
                            &session.paths,
                            region.name,
                            region_city,
                            *budget,
                            &self.config.pilot,
                        );
                        // The plan (and the vm_plan metrics derived
                        // from it) is computed even for completed
                        // units: it is a pure function of world +
                        // config, so recomputing keeps observer output
                        // identical across checkpoint resumes.
                        let plan = plan::plan_region(region, &sel.servers, &base_cron);
                        let vm_plan = plan
                            .assignments
                            .iter()
                            .enumerate()
                            .map(|(vm_idx, a)| {
                                let name = format!(
                                    "clasp-{}-{}-{vm_idx}",
                                    region.name,
                                    Tier::Premium.label()
                                );
                                let assigned = a.len() as u64;
                                (name, assigned, assigned * self.config.days * 24)
                            })
                            .collect();
                        let mut vms = Vec::new();
                        let mut n_vms = 0;
                        if !done[i] {
                            n_vms = plan.n_vms;
                            for (vm_idx, assignment) in plan.assignments.iter().enumerate() {
                                vms.push(VmTask {
                                    unit: i,
                                    vm_idx,
                                    n_vms: plan.n_vms,
                                    tier: Tier::Premium,
                                    pairs: self.resolve_pairs(
                                        session,
                                        &client,
                                        region,
                                        Tier::Premium,
                                        assignment,
                                    ),
                                    assignment: assignment.clone(),
                                    comp_label: region.name.to_string(),
                                    bucket_region: region.name.to_string(),
                                    method: "topo",
                                    start: SimTime::EPOCH,
                                    days: self.config.days,
                                });
                            }
                        }
                        UnitPrep {
                            sel: UnitSel::Topo(sel),
                            n_vms,
                            vms,
                            vm_plan,
                        }
                    }
                    UnitKind::Diff => {
                        let sel = differential::select(
                            self.world,
                            &session.paths,
                            &session.perf,
                            region.name,
                            region_city,
                            &self.config.pretest,
                        );
                        let servers: Vec<String> =
                            sel.picks.iter().map(|p| p.server_id.clone()).collect();
                        let vm_plan = [Tier::Premium, Tier::Standard]
                            .iter()
                            .map(|tier| {
                                let name = format!("clasp-{}-{}-0", region.name, tier.label());
                                let assigned = servers.len() as u64;
                                (name, assigned, assigned * self.config.diff_days * 24)
                            })
                            .collect();
                        let mut vms = Vec::new();
                        if !done[i] {
                            for tier in [Tier::Premium, Tier::Standard] {
                                vms.push(VmTask {
                                    unit: i,
                                    vm_idx: 0,
                                    n_vms: 1,
                                    tier,
                                    pairs: self
                                        .resolve_pairs(session, &client, region, tier, &servers),
                                    assignment: servers.clone(),
                                    comp_label: format!("{}-diff-{}", region.name, tier.label()),
                                    bucket_region: format!("{}-diff", region.name),
                                    method: "diff",
                                    start: diff_start,
                                    days: self.config.diff_days,
                                });
                            }
                        }
                        UnitPrep {
                            sel: UnitSel::Diff(sel),
                            n_vms: 0,
                            vms,
                            vm_plan,
                        }
                    }
                }
            },
        );
        if let Some(obs) = observer {
            for shard in &shards {
                obs.merge_shard(shard);
            }
            // Per-VM plan metrics land on the main thread, keyed by
            // unit label + VM name so topo and diff VMs sharing a
            // region cannot collide.
            obs.with_metrics(|m| {
                for (prep, (label, _, _)) in preps.iter().zip(&units) {
                    for (vm, assigned, expected) in &prep.vm_plan {
                        m.inc(&format!("vm.{label}/{vm}.assigned"), *assigned);
                        m.inc(&format!("vm.{label}/{vm}.expected_tests"), *expected);
                    }
                }
            });
            obs.advance(units.len() as u64);
        }
        drop(span1);

        // Phase 2: every VM of every pending unit is one independent
        // task. VM-level granularity keeps all workers busy even when a
        // single region holds half the server budget; unit-level tasks
        // would cap the speedup at the largest region's share.
        let span2 = observer.map(|o| o.span("phase2:vm_exec"));
        let tasks: Vec<&VmTask> = preps.iter().flat_map(|p| p.vms.iter()).collect();
        let outputs: Vec<VmOutput> = exec::scatter_with(
            jobs,
            tasks.len(),
            || {
                let mut session = self.world.session_with(&tables);
                session.perf.set_degradations(degradations.clone());
                session
            },
            |session, t| {
                let task = tasks[t];
                let region = Region::by_name(units[task.unit].1).expect("known region");
                let salt = tier_salt(task.tier);
                let cron = CronSchedule {
                    budget: base_cron.budget,
                    seed: base_cron.seed ^ salt,
                };
                let mut out = VmOutput {
                    bucket: Bucket::new(task.bucket_region.clone()),
                    billing: Billing::new(),
                    tests_run: 0,
                    tainted: 0,
                    flog: FaultLog::new(),
                    report: CompletenessReport::new(),
                    decoded: Vec::new(),
                    metrics: MetricsRegistry::new(),
                };
                let params = VmLoopParams {
                    region,
                    n_vms: task.n_vms,
                    tier: task.tier,
                    tier_salt: salt,
                    method: task.method,
                    start: task.start,
                    days: task.days,
                    comp_label: &task.comp_label,
                };
                let mut vm_metrics = observer.map(|_| MetricsRegistry::new());
                self.run_vm_loop(
                    session,
                    &client,
                    &cron,
                    &params,
                    task.vm_idx,
                    &task.assignment,
                    &task.pairs,
                    &mut out.bucket,
                    &mut out.billing,
                    &mut out.tests_run,
                    &mut out.tainted,
                    &fplan,
                    &mut out.flog,
                    &mut out.report,
                    vm_metrics.as_mut(),
                );
                if let Some(m) = vm_metrics.as_mut() {
                    let label = &units[task.unit].0;
                    let vm = format!(
                        "clasp-{}-{}-{}",
                        region.name,
                        task.tier.label(),
                        task.vm_idx
                    );
                    m.inc(&format!("vm.{label}/{vm}.tests_executed"), out.tests_run);
                    m.inc("exec.tests_executed", out.tests_run);
                    m.inc("exec.tests_tainted", out.tainted);
                }
                // Decode (parse) this VM's own uploads while still on the
                // worker; the serial merge then only has to index them.
                out.decoded = pipeline::decode_bucket(&out.bucket);
                out.metrics = vm_metrics.unwrap_or_default();
                out
            },
        );
        drop(tasks);
        if let Some(obs) = observer {
            // Logical time covers *planned* VMs (vm_plan includes the
            // completed units' VMs), so resumed runs advance the clock
            // exactly as far as uninterrupted ones.
            obs.advance(preps.iter().map(|p| p.vm_plan.len() as u64).sum());
        }
        drop(span2);

        // Phase 3: serial merge in canonical unit order — the exact
        // mutation sequence run_serial performs, replayed from the
        // buffered worker outputs.
        let span3 = observer.map(|o| o.span("phase3:merge"));
        let mut out_iter = outputs.into_iter();
        for (i, (unit, prep)) in units.iter().zip(preps).enumerate() {
            let (label, _, kind) = unit;
            let region = Region::by_name(unit.1).expect("known region");
            let mut bucket = if done[i] {
                bucket_from_snapshot(&raw_store, label)?
            } else {
                match kind {
                    UnitKind::Topo { .. } => Bucket::new(region.name),
                    UnitKind::Diff => Bucket::new(format!("{}-diff", region.name)),
                }
            };
            let mut unit_decoded: Vec<pipeline::DecodedObject> = Vec::new();
            if !done[i] {
                for _ in 0..prep.vms.len() {
                    let vo = out_iter.next().expect("one output per task");
                    // Shards merge in canonical VM order (u64 sums, so
                    // order is cosmetic); the cumulative registry is
                    // what checkpoints persist for completed units.
                    exec_metrics.merge(&vo.metrics);
                    flog.absorb(vo.flog);
                    report.merge(&vo.report);
                    // Transfer meters are u64 — safe to sum. The f64
                    // meters below are re-issued as ops in serial order.
                    billing.premium_egress_bytes += vo.billing.premium_egress_bytes;
                    billing.standard_egress_bytes += vo.billing.standard_egress_bytes;
                    billing.ingress_bytes += vo.billing.ingress_bytes;
                    tests_run += vo.tests_run;
                    tainted += vo.tainted;
                    bucket.absorb(vo.bucket);
                    unit_decoded.extend(vo.decoded);
                    if let UnitKind::Diff = kind {
                        vm_count += 1;
                        billing.record_vm_hours(
                            MachineType::N1Standard2,
                            self.config.diff_days as f64 * 24.0,
                        );
                    }
                }
                match kind {
                    UnitKind::Topo { .. } => {
                        vm_count += prep.n_vms;
                        billing.record_vm_hours(
                            MachineType::N1Standard2,
                            prep.n_vms as f64 * self.config.days as f64 * 24.0,
                        );
                        billing
                            .record_storage(bucket.stored_bytes(), self.config.days as f64 * 24.0);
                    }
                    UnitKind::Diff => {
                        billing.record_storage(
                            bucket.stored_bytes(),
                            self.config.diff_days as f64 * 24.0,
                        );
                    }
                }
                raw_store.push((label.clone(), bucket_snapshot(&bucket, label)));
                completed.push(label.clone());
            }
            let stats = if done[i] {
                // `ingest` is exactly `ingest_decoded ∘ decode_bucket`;
                // decoding explicitly lets the observer count collected
                // tests per VM from the object keys, identically for
                // replayed and freshly-executed units.
                let decoded = pipeline::decode_bucket(&bucket);
                if let Some(obs) = observer {
                    record_collected(obs, label, &decoded);
                }
                pipeline::ingest_decoded(decoded, &mut db)
            } else {
                // Disjoint per-VM key sets merge-sort into exactly the
                // listing order a serial ingest of the shared bucket
                // sees (and the order the stream engine consumes).
                unit_decoded.sort_by(|a, b| a.key.cmp(&b.key));
                if let Some(obs) = observer {
                    record_collected(obs, label, &unit_decoded);
                }
                pipeline::ingest_decoded(unit_decoded, &mut db)
            };
            drain(&mut stream);
            raw_objects += stats.objects;
            if let Some(obs) = observer {
                obs.with_metrics(|m| {
                    m.inc("ingest.objects", stats.objects);
                    m.inc("ingest.points", stats.points);
                    m.inc("ingest.errors", stats.errors);
                });
                obs.advance(stats.points);
                obs.event(
                    "unit.merged",
                    label,
                    format!("objects={} points={}", stats.objects, stats.points),
                );
            }
            if self.config.keep_raw {
                buckets.push(bucket);
            }
            match prep.sel {
                UnitSel::Topo(sel) => topo_selections.push(sel),
                UnitSel::Diff(sel) => diff_selections.push(sel),
            }
            let mut ckpt = make_checkpoint(
                &completed, &billing, vm_count, tests_run, tainted, &flog, &report, &raw_store,
            );
            if let Some(engine) = stream.as_deref() {
                if let serde_json::Value::Object(m) = &mut ckpt {
                    m.insert("stream".into(), engine.snapshot());
                }
            }
            if observer.is_some() {
                // Only observed runs carry the telemetry section —
                // observer-less checkpoints stay byte-identical to the
                // pre-observability format.
                if let serde_json::Value::Object(m) = &mut ckpt {
                    let mut o = serde_json::Map::new();
                    o.insert("exec".into(), exec_metrics.to_json());
                    m.insert("obs".into(), serde_json::Value::Object(o));
                }
            }
            checkpoints.push(ckpt);
        }
        drop(span3);

        // Fault outcomes fold in exactly once, after all units merged —
        // same as the serial path.
        report.absorb_log(&flog);
        if let Some(obs) = observer {
            obs.merge_shard(&exec_metrics);
        }

        Ok(CampaignResult {
            db,
            topo_selections,
            diff_selections,
            billing,
            vm_count,
            tests_run,
            tainted_tests: tainted,
            raw_objects,
            buckets,
            fault_log: flog,
            completeness: report,
            checkpoints,
        })
    }

    /// The hourly cron loop for one region/tier/server-assignment, with
    /// fault injection and resilient recovery. With an empty plan every
    /// fault query short-circuits and the loop is byte-for-byte the
    /// pre-fault implementation. Runs each VM of the plan in order —
    /// the canonical sequence the parallel merge reproduces.
    #[allow(clippy::too_many_arguments)]
    fn run_region_loop(
        &self,
        session: &crate::world::Session<'_>,
        client: &SpeedTestClient,
        cron: &CronSchedule,
        region: &'static Region,
        plan: &DeploymentPlan,
        tier: Tier,
        method: &str,
        start: SimTime,
        days: u64,
        bucket: &mut Bucket,
        billing: &mut Billing,
        tests_run: &mut u64,
        tainted: &mut u64,
        fplan: &FaultPlan,
        flog: &mut FaultLog,
        report: &mut CompletenessReport,
        comp_label: &str,
    ) {
        // Each VM has its own crontab: the premium and standard VMs of a
        // differential pair test the same server within the same hour but
        // at different minutes, like the real deployment.
        let tier_salt = tier_salt(tier);
        let cron = CronSchedule {
            budget: cron.budget,
            seed: cron.seed ^ tier_salt,
        };
        let params = VmLoopParams {
            region,
            n_vms: plan.n_vms,
            tier,
            tier_salt,
            method,
            start,
            days,
            comp_label,
        };
        for (vm_idx, assignment) in plan.assignments.iter().enumerate() {
            let pairs = self.resolve_pairs(session, client, region, tier, assignment);
            self.run_vm_loop(
                session, client, &cron, &params, vm_idx, assignment, &pairs, bucket, billing,
                tests_run, tainted, fplan, flog, report, None,
            );
        }
    }

    /// Resolves the path pair for every server in `ids` (paths are
    /// stable across the campaign; CLASP re-selects only at start).
    fn resolve_pairs(
        &self,
        session: &crate::world::Session<'_>,
        client: &SpeedTestClient,
        region: &'static Region,
        tier: Tier,
        ids: &[String],
    ) -> PairMap<'w> {
        let region_city = region.city_id(&self.world.topo.cities);
        let vm_ip = self.world.topo.vm_ip(region_city, 0);
        let mut pairs = std::collections::HashMap::new();
        for sid in ids {
            let server = self
                .world
                .registry
                .by_id(sid)
                .expect("selected servers exist");
            if let Some(pair) =
                client.resolve_paths(&session.paths, region_city, vm_ip, server, tier)
            {
                pairs.insert(sid.clone(), (pair, server));
            }
        }
        pairs
    }

    /// One VM's whole campaign: the hourly cron loop over its server
    /// assignment, writing only into the caller's buffers. Workers call
    /// it with VM-local buffers; the serial loop passes the shared ones.
    #[allow(clippy::too_many_arguments)]
    fn run_vm_loop(
        &self,
        session: &crate::world::Session<'_>,
        client: &SpeedTestClient,
        cron: &CronSchedule,
        params: &VmLoopParams<'_>,
        vm_idx: usize,
        assignment: &[String],
        pairs: &PairMap<'w>,
        bucket: &mut Bucket,
        billing: &mut Billing,
        tests_run: &mut u64,
        tainted: &mut u64,
        fplan: &FaultPlan,
        flog: &mut FaultLog,
        report: &mut CompletenessReport,
        mut obs: Option<&mut MetricsRegistry>,
    ) {
        let &VmLoopParams {
            region,
            n_vms,
            tier,
            tier_salt,
            method,
            start,
            days,
            comp_label,
        } = params;
        let abort_policy = RetryPolicy::speedtest();
        let upload_policy = RetryPolicy::upload();
        let api_policy = RetryPolicy::api();
        {
            let vm_name = format!("clasp-{}-{}-{}", region.name, tier.label(), vm_idx);
            let scope = VmScope {
                region: region.name,
                vm: &vm_name,
            };
            let jitter_key = faultsim::name_key(&vm_name);
            // The schedule only covers servers whose paths resolved;
            // each gets one test per hour per the paper's design.
            let resolvable = assignment
                .iter()
                .filter(|sid| pairs.contains_key(sid.as_str()))
                .count() as u64;
            report.add_expected(comp_label, resolvable * days * 24);
            // An in-progress multi-hour outage: (fault id, end hour).
            let mut active_outage: Option<(usize, u64)> = None;
            let mut day_results: Vec<TestResult> = Vec::with_capacity(assignment.len() * 24);
            for day in 0..days {
                for hour in 0..24 {
                    let hour_start = start + day * SECONDS_PER_DAY + hour * HOUR;
                    let abs_hour = hour_start.hour_index();
                    // Legacy outages (deprecated `outage_rate`): the hour
                    // is silently lost, exactly as the old inline draw
                    // decided — but now logged as ground truth.
                    if fplan.legacy_vm_outage(
                        self.config.seed ^ vm_idx as u64 ^ tier_salt,
                        hour_start.as_secs(),
                    ) {
                        let id = flog.record(
                            hour_start.as_secs(),
                            FaultKind::CronMiss,
                            comp_label,
                            &vm_name,
                            "legacy outage_rate",
                        );
                        flog.mark_lost(id, resolvable);
                        continue;
                    }
                    // An outage window in progress eats the whole hour;
                    // at its end the VM must be brought back, which the
                    // quota and the control-plane API can both delay.
                    if let Some((id, until)) = active_outage {
                        if abs_hour < until {
                            flog.mark_lost(id, resolvable);
                            continue;
                        }
                        if !cloudsim::quota::Quota::default().allows_provisioning(
                            n_vms,
                            region.name,
                            abs_hour,
                            fplan,
                        ) {
                            let qid = flog.record(
                                hour_start.as_secs(),
                                FaultKind::QuotaExhausted,
                                comp_label,
                                &vm_name,
                                "restart blocked by quota",
                            );
                            flog.mark_lost(qid, resolvable);
                            active_outage = Some((qid, abs_hour + 1));
                            continue;
                        }
                        if fplan.api_error("restart_vm", hour_start.as_secs(), 0) {
                            let aid = flog.record(
                                hour_start.as_secs(),
                                FaultKind::ApiError,
                                comp_label,
                                &vm_name,
                                "restart_vm",
                            );
                            let recovered = (1..api_policy.max_attempts).find(|&attempt| {
                                !fplan.api_error("restart_vm", hour_start.as_secs(), attempt)
                            });
                            match recovered {
                                Some(attempt) => {
                                    flog.mark_recovered(
                                        aid,
                                        attempt,
                                        hour_start.as_secs()
                                            + api_policy.total_delay(attempt + 1, jitter_key),
                                    );
                                    active_outage = None;
                                }
                                None => {
                                    flog.mark_lost(aid, resolvable);
                                    active_outage = Some((aid, abs_hour + 1));
                                    continue;
                                }
                            }
                        } else {
                            active_outage = None;
                        }
                    }
                    // New VM outages (preemption / crash loop) starting
                    // this hour: logged once, then the window is walked
                    // hour by hour so the lost toll is exact even when
                    // it crosses the campaign end.
                    if let Some((kind, dur)) = fplan.vm_fault_starting(scope, abs_hour) {
                        let id = flog.record(
                            hour_start.as_secs(),
                            kind,
                            comp_label,
                            &vm_name,
                            format!("{dur}h outage"),
                        );
                        flog.mark_lost(id, resolvable);
                        active_outage = Some((id, abs_hour + dur));
                        continue;
                    }
                    // Cron faults: a skewed tick runs late; a missed tick
                    // is re-fired by the watchdog (each re-fire draws
                    // independently) or, past the retry budget, the hour
                    // is gracefully skipped.
                    let mut effect = fplan.cron_effect(scope, abs_hour, 0);
                    match effect {
                        CronEffect::Miss => {
                            const WATCHDOG_RETRIES: u32 = 2;
                            const WATCHDOG_DELAY_S: u64 = 600;
                            let id = flog.record(
                                hour_start.as_secs(),
                                FaultKind::CronMiss,
                                comp_label,
                                &vm_name,
                                "tick missed",
                            );
                            let refired = (1..=WATCHDOG_RETRIES).find(|&attempt| {
                                !matches!(
                                    fplan.cron_effect(scope, abs_hour, attempt),
                                    CronEffect::Miss
                                )
                            });
                            match refired {
                                Some(attempt) => {
                                    let delay = attempt as u64 * WATCHDOG_DELAY_S;
                                    flog.mark_recovered(id, attempt, hour_start.as_secs() + delay);
                                    effect = CronEffect::Skew(delay);
                                }
                                None => {
                                    flog.mark_lost(id, resolvable);
                                    continue;
                                }
                            }
                        }
                        CronEffect::Skew(s) => {
                            let id = flog.record(
                                hour_start.as_secs(),
                                FaultKind::CronSkew,
                                comp_label,
                                &vm_name,
                                format!("late {s}s"),
                            );
                            flog.mark_recovered(id, 0, hour_start.as_secs() + s);
                        }
                        CronEffect::OnTime => {}
                    }
                    let items: Vec<&str> = assignment.iter().map(String::as_str).collect();
                    let slots = cron
                        .hour_slots_with_effect(hour_start, &items, effect)
                        .expect("Miss handled above");
                    for slot in slots {
                        let Some((pair, server)) = pairs.get(slot.item) else {
                            continue;
                        };
                        // Mid-test aborts retry within the slot with
                        // backed-off restarts; a slot that never
                        // completes loses one server-hour.
                        let mut result = client.run_test_faulted(
                            &session.perf,
                            pair,
                            server,
                            slot.start,
                            self.config.seed ^ tier_salt,
                            fplan,
                            scope,
                            0,
                        );
                        if result.is_none() {
                            let id = flog.record(
                                slot.start.as_secs(),
                                FaultKind::TestAbort,
                                comp_label,
                                &vm_name,
                                slot.item,
                            );
                            for attempt in 1..abort_policy.max_attempts {
                                let t_retry =
                                    slot.start + abort_policy.total_delay(attempt + 1, jitter_key);
                                if let Some(r) = client.run_test_faulted(
                                    &session.perf,
                                    pair,
                                    server,
                                    t_retry,
                                    self.config.seed ^ tier_salt,
                                    fplan,
                                    scope,
                                    attempt,
                                ) {
                                    flog.mark_recovered(id, attempt, t_retry.as_secs());
                                    result = Some(r);
                                    break;
                                }
                            }
                            if result.is_none() {
                                flog.mark_lost(id, 1);
                            }
                        }
                        let Some(r) = result else {
                            continue;
                        };
                        if let Some(m) = obs.as_deref_mut() {
                            m.observe("test.download_mbps", MBPS_BOUNDS, r.download_mbps);
                            m.observe("test.upload_mbps", MBPS_BOUNDS, r.upload_mbps);
                            m.observe("test.latency_ms", LATENCY_BOUNDS, r.latency_ms);
                        }
                        // Health check (someta).
                        let meta = nettools::someta::record(
                            &vm_name,
                            region.name,
                            slot.start,
                            r.download_mbps,
                        );
                        if nettools::someta::is_tainted(&meta) {
                            *tainted += 1;
                        }
                        // Billing: upload data + download ACK overhead is
                        // egress; download data is (free) ingress.
                        let up_bytes =
                            (r.upload_mbps / 8.0 * server.platform.transfer_seconds() * 1e6) as u64;
                        let down_bytes = (r.download_mbps / 8.0
                            * server.platform.transfer_seconds()
                            * 1e6) as u64;
                        billing.record_transfer(
                            tier == Tier::Premium,
                            up_bytes + down_bytes / 50,
                            down_bytes,
                        );
                        *tests_run += 1;
                        day_results.push(r);
                    }
                }
                // End of day: upload the raw batch with bounded retries.
                // Only batches that actually land in the bucket count as
                // collected — a lost batch loses its server-hours.
                if !day_results.is_empty() {
                    let n = day_results.len() as u64;
                    let uploaded = pipeline::upload_batch_resilient(
                        bucket,
                        region.name,
                        method,
                        &vm_name,
                        &day_results,
                        start + (day + 1) * SECONDS_PER_DAY,
                        fplan,
                        &upload_policy,
                        flog,
                        comp_label,
                    );
                    if uploaded.is_some() {
                        report.add_collected(comp_label, n);
                    }
                    day_results.clear();
                }
            }
        }
    }
}

/// Fixed histogram bounds for test throughput (Mbps). Fixed bounds are
/// what keep histograms mergeable and bit-identical: only u64 bucket
/// counts accumulate, never f64 sums.
const MBPS_BOUNDS: &[f64] = &[50.0, 100.0, 200.0, 400.0, 600.0, 800.0];

/// Fixed histogram bounds for test latency (ms).
const LATENCY_BOUNDS: &[f64] = &[2.0, 5.0, 10.0, 20.0, 50.0, 100.0];

/// Counts collected tests per VM from decoded object keys
/// (`raw/<region>/<day>/<vm>.lp`), under the unit's label.
fn record_collected(obs: &Observer, label: &str, decoded: &[pipeline::DecodedObject]) {
    obs.with_metrics(|m| {
        for d in decoded {
            let Ok(points) = &d.result else { continue };
            let vm = d
                .key
                .rsplit('/')
                .next()
                .and_then(|f| f.strip_suffix(".lp"))
                .unwrap_or("unknown");
            m.inc(
                &format!("vm.{label}/{vm}.tests_collected"),
                points.len() as u64,
            );
        }
    });
}

/// Records the plan's link faults into the ground-truth log, once per
/// campaign: fresh runs append them before any unit executes (so ids
/// precede all VM-loop faults in both the serial and the merged
/// parallel order); resumed runs restore them from the checkpointed
/// log instead. Link faults degrade paths rather than eating VM-hours,
/// so they are marked recovered at window end and contribute no lost
/// server-hours to completeness reconciliation.
fn record_link_faults(fplan: &FaultPlan, fresh: bool, flog: &mut FaultLog) {
    if !fresh {
        return;
    }
    for lf in &fplan.link_faults {
        let id = flog.record(
            lf.start_hour * 3600,
            lf.kind,
            "interconnect",
            &format!("link-{}", lf.link),
            format!("{}h, magnitude {}", lf.duration_hours, lf.magnitude),
        );
        flog.mark_recovered(id, 0, (lf.start_hour + lf.duration_hours) * 3600);
    }
}

/// Per-tier crontab/RNG salt: the premium and standard VMs of a
/// differential pair draw from distinct streams.
fn tier_salt(tier: Tier) -> u64 {
    match tier {
        Tier::Premium => 0x11,
        Tier::Standard => 0x22,
    }
}

/// Dumps a bucket's objects to JSON: the durable-storage side of a
/// campaign checkpoint.
fn bucket_snapshot(bucket: &Bucket, unit: &str) -> serde_json::Value {
    use serde_json::{Map, Value};
    let objects: Vec<Value> = bucket
        .list("")
        .into_iter()
        .map(|key| {
            let obj = bucket.get(key).expect("listed keys exist");
            let mut m = Map::new();
            m.insert("key".into(), key.into());
            m.insert("data".into(), obj.data.clone().into());
            m.insert("uploaded".into(), obj.uploaded.as_secs().into());
            Value::Object(m)
        })
        .collect();
    let mut m = Map::new();
    m.insert("unit".into(), unit.into());
    m.insert("bucket".into(), bucket.region.clone().into());
    m.insert("objects".into(), Value::Array(objects));
    Value::Object(m)
}

/// Rebuilds a bucket from the snapshot stored for `unit`. `put` re-runs
/// the deterministic compression, so the rebuilt bucket is identical to
/// the one snapshotted.
fn bucket_from_snapshot(
    raw_store: &[(String, serde_json::Value)],
    unit: &str,
) -> Result<Bucket, String> {
    let (_, snap) = raw_store
        .iter()
        .find(|(label, _)| label == unit)
        .ok_or_else(|| format!("checkpoint has no raw data for unit {unit:?}"))?;
    let region = snap
        .get("bucket")
        .and_then(|v| v.as_str())
        .ok_or("snapshot missing bucket region")?;
    let mut bucket = Bucket::new(region);
    for obj in snap
        .get("objects")
        .and_then(|o| o.as_array())
        .ok_or("snapshot missing objects")?
    {
        let key = obj
            .get("key")
            .and_then(|v| v.as_str())
            .ok_or("object missing key")?;
        let data = obj
            .get("data")
            .and_then(|v| v.as_str())
            .ok_or("object missing data")?;
        let uploaded = obj.get("uploaded").and_then(|v| v.as_u64()).unwrap_or(0);
        bucket.put(key, data.to_string(), SimTime(uploaded));
    }
    Ok(bucket)
}

fn billing_to_json(billing: &Billing) -> serde_json::Value {
    use serde_json::{Map, Value};
    let mut m = Map::new();
    m.insert(
        "premium_egress_bytes".into(),
        billing.premium_egress_bytes.into(),
    );
    m.insert(
        "standard_egress_bytes".into(),
        billing.standard_egress_bytes.into(),
    );
    m.insert("ingress_bytes".into(), billing.ingress_bytes.into());
    m.insert("vm_hours_n1".into(), billing.vm_hours_n1.into());
    m.insert("vm_hours_n2".into(), billing.vm_hours_n2.into());
    m.insert(
        "storage_byte_hours".into(),
        billing.storage_byte_hours.into(),
    );
    Value::Object(m)
}

fn billing_from_json(v: &serde_json::Value) -> Billing {
    let u = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let f = |k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
    let mut billing = Billing::new();
    billing.premium_egress_bytes = u("premium_egress_bytes");
    billing.standard_egress_bytes = u("standard_egress_bytes");
    billing.ingress_bytes = u("ingress_bytes");
    billing.vm_hours_n1 = f("vm_hours_n1");
    billing.vm_hours_n2 = f("vm_hours_n2");
    billing.storage_byte_hours = f("storage_byte_hours");
    billing
}

#[allow(clippy::too_many_arguments)]
fn make_checkpoint(
    completed: &[String],
    billing: &Billing,
    vm_count: usize,
    tests_run: u64,
    tainted: u64,
    flog: &FaultLog,
    report: &CompletenessReport,
    raw_store: &[(String, serde_json::Value)],
) -> serde_json::Value {
    use serde_json::{Map, Value};
    let mut counters = Map::new();
    counters.insert("vm_count".into(), vm_count.into());
    counters.insert("tests_run".into(), tests_run.into());
    counters.insert("tainted".into(), tainted.into());
    let mut m = Map::new();
    m.insert(
        "completed".into(),
        Value::Array(completed.iter().map(|c| c.clone().into()).collect()),
    );
    m.insert("counters".into(), Value::Object(counters));
    m.insert("billing".into(), billing_to_json(billing));
    m.insert("fault_log".into(), flog.to_json());
    m.insert("completeness".into(), report.to_json());
    m.insert(
        "raw".into(),
        Value::Array(raw_store.iter().map(|(_, snap)| snap.clone()).collect()),
    );
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdb::{Aggregate, Query};

    fn run_small() -> (World, CampaignResult) {
        let world = World::tiny(121);
        let result = Campaign::new(&world, CampaignConfig::small(121))
            .runner()
            .run()
            .unwrap();
        (world, result)
    }

    #[test]
    fn campaign_produces_hourly_series() {
        let (_, res) = run_small();
        assert!(res.tests_run > 0);
        assert!(res.db.points_written > 0);
        assert_eq!(res.db.points_written, res.tests_run);
        // One topo selection, one diff selection.
        assert_eq!(res.topo_selections.len(), 1);
        assert_eq!(res.diff_selections.len(), 1);
        assert!(res.vm_count >= 3); // ≥1 topo VM + 2 diff VMs
        assert!(res.raw_objects > 0);
    }

    #[test]
    fn topo_series_have_one_test_per_hour() {
        let (_, res) = run_small();
        // Pure read: freeze one snapshot and query it immutably.
        let mut db = res.db;
        let snap = db.snapshot();
        let sel = &res.topo_selections[0];
        let first = &sel.servers[0];
        let rows = Query::select("speedtest", "download")
            .r#where("server", first)
            .r#where("method", "topo")
            .group_by_time(3600)
            .aggregate(Aggregate::Count)
            .run_snapshot(&snap);
        assert_eq!(rows.len(), 1);
        // 4 days × 24 hours, one test per hour.
        assert_eq!(rows[0].rows.len(), 96);
        assert!(rows[0].rows.iter().all(|r| r.value == 1.0));
    }

    #[test]
    fn differential_servers_measured_on_both_tiers() {
        let (_, res) = run_small();
        // Pure read: one snapshot serves both tier queries immutably.
        let mut db = res.db;
        let snap = db.snapshot();
        let sel = &res.diff_selections[0];
        assert!(!sel.picks.is_empty());
        let sid = &sel.picks[0].server_id;
        for tier in ["premium", "standard"] {
            let rows = Query::select("speedtest", "download")
                .r#where("server", sid)
                .r#where("tier", tier)
                .r#where("method", "diff")
                .aggregate(Aggregate::Count)
                .run_snapshot(&snap);
            assert_eq!(rows.len(), 1, "tier {tier} measured");
            // 2 days × 24 hours.
            assert_eq!(rows[0].rows[0].value, 48.0);
        }
    }

    #[test]
    fn billing_accumulates_vm_and_egress() {
        let (_, res) = run_small();
        assert!(res.billing.vm_usd() > 0.0);
        assert!(res.billing.egress_usd() > 0.0);
        assert!(res.billing.total_usd() > 0.0);
        // Download is ingress → free; the bill is dominated by VM + the
        // small upload egress.
        assert!(res.billing.ingress_bytes > res.billing.premium_egress_bytes);
    }

    #[test]
    fn campaign_is_deterministic() {
        let world = World::tiny(131);
        let a = Campaign::new(&world, CampaignConfig::small(131))
            .runner()
            .run()
            .unwrap();
        let b = Campaign::new(&world, CampaignConfig::small(131))
            .runner()
            .run()
            .unwrap();
        assert_eq!(a.tests_run, b.tests_run);
        assert_eq!(a.db.points_written, b.db.points_written);
        assert_eq!(
            a.billing.premium_egress_bytes,
            b.billing.premium_egress_bytes
        );
    }

    #[test]
    fn health_check_rarely_fires() {
        let (_, res) = run_small();
        // The paper verified the VM type was never CPU-starved.
        assert!(res.tainted_tests * 10 < res.tests_run);
    }

    #[test]
    fn raw_buckets_retained_when_asked() {
        let (_, res) = run_small();
        assert!(!res.buckets.is_empty());
        assert!(res.buckets.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn zero_fault_plan_is_invisible() {
        let world = World::tiny(121);
        let a = Campaign::new(&world, CampaignConfig::small(121))
            .runner()
            .run()
            .unwrap();
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::none();
        let b = Campaign::new(&world, cfg).runner().run().unwrap();
        assert!(a.fault_log.is_empty());
        assert!(a.completeness.reconciles());
        assert_eq!(a.completeness.total_missing(), 0);
        // Byte-identical final state: the canonical checkpoint JSON
        // captures every raw object, counter and billing figure.
        assert_eq!(
            serde_json::to_string(a.checkpoints.last().unwrap()),
            serde_json::to_string(b.checkpoints.last().unwrap()),
        );
    }

    #[test]
    fn faulted_campaign_completes_and_reconciles() {
        let world = World::tiny(121);
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::uniform(9, 0.02);
        let res = Campaign::new(&world, cfg).runner().run().unwrap();
        assert!(res.tests_run > 0, "campaign still collects data");
        assert!(!res.fault_log.is_empty(), "2% rates fire in 192 VM-hours");
        assert!(
            res.completeness.reconciles(),
            "missing hours must match the fault log exactly: {:?}",
            res.completeness.discrepancies()
        );
        assert!(res.completeness.total_missing() > 0, "some data was lost");
        assert!(res.completeness.overall_completeness() > 0.5);
        let s = res.fault_log.summary();
        assert!(s.recovered > 0, "retries recover some faults: {s:?}");
    }

    #[test]
    fn legacy_outage_rate_is_faultplan_backed() {
        let world = World::tiny(121);
        let mut legacy = CampaignConfig::small(121);
        legacy.outage_rate = 0.10;
        let mut planned = CampaignConfig::small(121);
        planned.fault_plan = FaultPlan::legacy_outage(0.10);
        let a = Campaign::new(&world, legacy).runner().run().unwrap();
        let b = Campaign::new(&world, planned).runner().run().unwrap();
        // Same draws, same gaps, same data — the deprecated knob is a
        // pure alias for the FaultPlan shim.
        assert_eq!(
            serde_json::to_string(a.checkpoints.last().unwrap()),
            serde_json::to_string(b.checkpoints.last().unwrap()),
        );
        let pristine = Campaign::new(&world, CampaignConfig::small(121))
            .runner()
            .run()
            .unwrap();
        assert!(a.tests_run < pristine.tests_run, "outages cost tests");
        assert!(a.completeness.reconciles());
    }

    #[test]
    fn checkpoint_resume_reproduces_final_results() {
        let world = World::tiny(121);
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::uniform(5, 0.02);
        let full = Campaign::new(&world, cfg.clone()).runner().run().unwrap();
        // One checkpoint per work unit: 1 topo region + 1 diff region.
        assert_eq!(full.checkpoints.len(), 2);
        let resumed = Campaign::new(&world, cfg)
            .runner()
            .resume_from(&full.checkpoints[0])
            .run()
            .unwrap();
        assert_eq!(full.tests_run, resumed.tests_run);
        assert_eq!(full.db.points_written, resumed.db.points_written);
        assert_eq!(full.db.series_count(), resumed.db.series_count());
        assert_eq!(
            full.billing.premium_egress_bytes,
            resumed.billing.premium_egress_bytes
        );
        assert_eq!(
            full.billing.standard_egress_bytes,
            resumed.billing.standard_egress_bytes
        );
        assert_eq!(full.fault_log, resumed.fault_log);
        assert_eq!(full.completeness, resumed.completeness);
        assert_eq!(
            serde_json::to_string(full.checkpoints.last().unwrap()),
            serde_json::to_string(resumed.checkpoints.last().unwrap()),
        );
    }

    #[test]
    fn parallel_jobs_bit_identical_to_serial() {
        let world = World::tiny(121);
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::uniform(7, 0.02);
        let serial = Campaign::new(&world, cfg.clone()).runner().run().unwrap();
        assert!(!serial.fault_log.is_empty());
        for jobs in [2, 4] {
            let mut pcfg = cfg.clone();
            pcfg.jobs = jobs;
            let par = Campaign::new(&world, pcfg).runner().run().unwrap();
            assert_eq!(serial.tests_run, par.tests_run, "jobs={jobs}");
            assert_eq!(serial.db.points_written, par.db.points_written);
            assert_eq!(serial.db.series_count(), par.db.series_count());
            assert_eq!(serial.vm_count, par.vm_count);
            assert_eq!(serial.raw_objects, par.raw_objects);
            assert_eq!(serial.fault_log, par.fault_log, "fault ids rebase exactly");
            assert_eq!(serial.completeness, par.completeness);
            // Every intermediate checkpoint — counters, billing (f64
            // meters included), raw snapshots — is byte-identical.
            assert_eq!(serial.checkpoints.len(), par.checkpoints.len());
            for (a, b) in serial.checkpoints.iter().zip(&par.checkpoints) {
                assert_eq!(
                    serde_json::to_string(a),
                    serde_json::to_string(b),
                    "jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn parallel_resumes_serial_checkpoint() {
        let world = World::tiny(121);
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::uniform(5, 0.02);
        let full = Campaign::new(&world, cfg.clone()).runner().run().unwrap();
        let mut pcfg = cfg;
        pcfg.jobs = 4;
        let resumed = Campaign::new(&world, pcfg)
            .runner()
            .resume_from(&full.checkpoints[0])
            .run()
            .unwrap();
        assert_eq!(full.tests_run, resumed.tests_run);
        assert_eq!(full.fault_log, resumed.fault_log);
        assert_eq!(
            serde_json::to_string(full.checkpoints.last().unwrap()),
            serde_json::to_string(resumed.checkpoints.last().unwrap()),
        );
    }

    #[test]
    fn resume_rejects_malformed_checkpoints() {
        let world = World::tiny(121);
        let campaign = Campaign::new(&world, CampaignConfig::small(121));
        let bad = serde_json::from_str("{}").unwrap();
        assert!(campaign.runner().resume_from(&bad).run().is_err());
    }

    /// Strips the observer-only checkpoint section, leaving the format
    /// an un-observed run produces.
    fn without_obs(ckpt: &serde_json::Value) -> serde_json::Value {
        let mut c = ckpt.clone();
        if let serde_json::Value::Object(m) = &mut c {
            m.remove("obs");
        }
        c
    }

    #[test]
    fn observer_leaves_results_bit_identical() {
        let world = World::tiny(121);
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::uniform(7, 0.02);
        let plain = Campaign::new(&world, cfg.clone()).runner().run().unwrap();
        let obs = Observer::new();
        let observed = Campaign::new(&world, cfg)
            .runner()
            .observer(&obs)
            .run()
            .unwrap();
        assert_eq!(plain.tests_run, observed.tests_run);
        assert_eq!(plain.fault_log, observed.fault_log);
        assert_eq!(plain.completeness, observed.completeness);
        // Checkpoints differ only by the observed run's "obs" section.
        assert_eq!(plain.checkpoints.len(), observed.checkpoints.len());
        for (a, b) in plain.checkpoints.iter().zip(&observed.checkpoints) {
            assert!(b.get("obs").is_some(), "observed checkpoints carry obs");
            assert_eq!(
                serde_json::to_string(a),
                serde_json::to_string(&without_obs(b)),
            );
        }
        // The execution counters reconcile against the result.
        let m = obs.metrics();
        assert_eq!(m.counter("exec.tests_executed"), observed.tests_run);
        assert_eq!(m.counter("exec.tests_tainted"), observed.tainted_tests);
        assert_eq!(m.counter("ingest.objects"), observed.raw_objects);
        assert_eq!(m.counter("ingest.points"), observed.db.points_written);
        assert!(m.counter("exec.route_tables") > 0);
        assert_eq!(m.counter("prep.units"), 2);
        // Spans: campaign root + four phases, clock strictly advanced.
        let spans = obs.spans();
        assert_eq!(spans.len(), 5);
        assert_eq!(spans[0].name, "campaign");
        assert!(obs.now() > 0);
        assert_eq!(spans[0].end, obs.now());
    }

    #[test]
    fn observed_metrics_identical_across_jobs_and_resume() {
        let world = World::tiny(121);
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::uniform(7, 0.02);
        let telemetry = |jobs: usize, ckpt: Option<&serde_json::Value>| {
            let obs = Observer::new();
            let mut pcfg = cfg.clone();
            pcfg.jobs = jobs;
            let campaign = Campaign::new(&world, pcfg);
            let mut runner = campaign.runner().observer(&obs);
            if let Some(c) = ckpt {
                runner = runner.resume_from(c);
            }
            let result = runner.run().unwrap();
            (obs.metrics_string(), obs.trace_string(), result)
        };
        let (metrics, trace, full) = telemetry(1, None);
        for jobs in [2, 8] {
            let (m, t, _) = telemetry(jobs, None);
            assert_eq!(m, metrics, "metrics, jobs={jobs}");
            assert_eq!(t, trace, "trace, jobs={jobs}");
        }
        // Resuming an observed checkpoint at a different job count
        // reproduces the identical telemetry.
        let (m, t, _) = telemetry(4, Some(&full.checkpoints[0]));
        assert_eq!(m, metrics, "metrics across resume");
        assert_eq!(t, trace, "trace across resume");
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_entrypoints_delegate_to_runner() {
        let world = World::tiny(121);
        let cfg = CampaignConfig::small(121);
        let legacy = Campaign::new(&world, cfg.clone()).run();
        let modern = Campaign::new(&world, cfg.clone()).runner().run().unwrap();
        assert_eq!(
            serde_json::to_string(legacy.checkpoints.last().unwrap()),
            serde_json::to_string(modern.checkpoints.last().unwrap()),
        );
        let resumed = Campaign::new(&world, cfg)
            .resume(&legacy.checkpoints[0])
            .unwrap();
        assert_eq!(
            serde_json::to_string(legacy.checkpoints.last().unwrap()),
            serde_json::to_string(resumed.checkpoints.last().unwrap()),
        );
    }

    #[test]
    fn runner_jobs_override_matches_config_jobs() {
        let world = World::tiny(121);
        let cfg = CampaignConfig::small(121);
        let via_config = {
            let mut c = cfg.clone();
            c.jobs = 4;
            Campaign::new(&world, c).runner().run().unwrap()
        };
        let via_builder = Campaign::new(&world, cfg).runner().jobs(4).run().unwrap();
        assert_eq!(
            serde_json::to_string(via_config.checkpoints.last().unwrap()),
            serde_json::to_string(via_builder.checkpoints.last().unwrap()),
        );
    }
}
