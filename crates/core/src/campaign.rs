//! The longitudinal measurement campaign (§3.2).
//!
//! For every region: select servers, plan and deploy VMs, then run the
//! hourly cron loop — each VM executes its randomized slot schedule, one
//! speed test per assigned server per hour, uploads the day's raw batch
//! to the regional bucket, and the pipeline ingests it into the
//! time-series store. Billing meters VM hours and egress bytes
//! throughout, because cost was the campaign's binding constraint.
//!
//! The differential regions run *pairs* of VMs — one per network tier —
//! against the differential-selected servers, producing the paired
//! samples that §4.1 compares.

use crate::pipeline;
use crate::plan::{self, DeploymentPlan};
use crate::select::differential::{self, DifferentialSelection, PreTestConfig};
use crate::select::topology::{self, PilotConfig, TopologySelection};
use crate::world::World;
use cloudsim::billing::Billing;
use cloudsim::bucket::Bucket;
use cloudsim::cron::CronSchedule;
use cloudsim::region::Region;
use cloudsim::vm::MachineType;
use faultsim::{
    CompletenessReport, CronEffect, FaultKind, FaultLog, FaultPlan, RetryPolicy, VmScope,
};
use simnet::routing::Tier;
use simnet::time::{SimTime, HOUR, SECONDS_PER_DAY};
use speedtest::client::{PathPair, SpeedTestClient, TestResult};
use tsdb::Db;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Campaign length in days for the topology-based measurements
    /// (the paper ran five months, May–September 2020).
    pub days: u64,
    /// Length in days of the differential measurements (two months,
    /// August–September), aligned to the campaign end.
    pub diff_days: u64,
    /// Topology regions with their per-region server budgets.
    pub topo_regions: Vec<(&'static str, usize)>,
    /// Differential regions.
    pub diff_regions: Vec<&'static str>,
    /// Pilot-scan parameters.
    pub pilot: PilotConfig,
    /// Differential pre-test parameters.
    pub pretest: PreTestConfig,
    /// Retain raw bucket objects after ingestion (memory-hungry at full
    /// scale; the real CLASP applies a lifecycle policy too).
    pub keep_raw: bool,
    /// Probability a VM misses a whole hour (maintenance, crash-loop,
    /// cron failure). Real longitudinal datasets have gaps; the analysis
    /// must tolerate them. Defaults to 0 so figures stay exactly
    /// reproducible.
    ///
    /// **Deprecated**: this knob is now a thin shim over
    /// [`FaultPlan::legacy_outage`] — the draws are bit-identical to the
    /// old inline implementation, so existing seeds reproduce the same
    /// gaps, but new code should configure [`Self::fault_plan`] instead,
    /// which types the faults, logs ground truth, and lets the
    /// orchestrator retry its way past the recoverable ones.
    pub outage_rate: f64,
    /// Fault-injection plan for the run. [`FaultPlan::none`] (the
    /// default) is bitwise invisible: the campaign output is identical
    /// to a build without any fault hooks.
    pub fault_plan: FaultPlan,
}

impl CampaignConfig {
    /// The paper's full-scale campaign: 5 regions × 5 months topology
    /// measurements with the published per-region budgets, plus 3
    /// differential regions × 2 months.
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            days: 153,
            diff_days: 61,
            topo_regions: vec![
                ("us-west1", 106),
                ("us-west2", 25),
                ("us-east1", 184),
                ("us-east4", 40),
                ("us-central1", 56),
            ],
            diff_regions: vec!["us-central1", "us-east1", "europe-west1"],
            pilot: PilotConfig::default(),
            pretest: PreTestConfig::default(),
            keep_raw: false,
            outage_rate: 0.0,
            fault_plan: FaultPlan::none(),
        }
    }

    /// A small configuration for tests: short window, few servers.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            days: 4,
            diff_days: 2,
            topo_regions: vec![("us-west1", 12)],
            diff_regions: vec!["europe-west1"],
            pilot: PilotConfig {
                flows_per_target: 3,
                cities_per_as: 1,
                ..PilotConfig::default()
            },
            pretest: PreTestConfig {
                probes_per_vp: 110,
                picks: 8,
                ..PreTestConfig::default()
            },
            keep_raw: true,
            outage_rate: 0.0,
            fault_plan: FaultPlan::none(),
        }
    }

    /// The effective fault plan: [`Self::fault_plan`] with the
    /// deprecated [`Self::outage_rate`] folded in as a legacy shim.
    pub fn effective_fault_plan(&self) -> FaultPlan {
        let mut plan = self.fault_plan.clone();
        if self.outage_rate > 0.0 {
            plan.legacy_outage_rate = self.outage_rate;
        }
        plan
    }
}

/// Everything a finished campaign produced.
pub struct CampaignResult {
    /// The indexed measurement database.
    pub db: Db,
    /// Topology-based selections, one per topo region.
    pub topo_selections: Vec<TopologySelection>,
    /// Differential selections, one per diff region.
    pub diff_selections: Vec<DifferentialSelection>,
    /// The bill.
    pub billing: Billing,
    /// Measurement VMs created.
    pub vm_count: usize,
    /// Speed tests executed.
    pub tests_run: u64,
    /// Tests flagged CPU-tainted by the someta health check.
    pub tainted_tests: u64,
    /// Raw objects uploaded to buckets.
    pub raw_objects: u64,
    /// Retained raw buckets (per region), when `keep_raw` is set.
    pub buckets: Vec<Bucket>,
    /// Ground truth: every fault injected during the run.
    pub fault_log: FaultLog,
    /// Expected vs. collected server-hours, per region unit. Under any
    /// fault plan this reconciles exactly against [`Self::fault_log`].
    pub completeness: CompletenessReport,
    /// One checkpoint per completed work unit (JSON). Feeding any of
    /// them to [`Campaign::resume`] re-produces the identical final
    /// result without re-running the completed units.
    pub checkpoints: Vec<serde_json::Value>,
}

/// The campaign driver.
pub struct Campaign<'w> {
    world: &'w World,
    /// Configuration in force.
    pub config: CampaignConfig,
}

impl<'w> Campaign<'w> {
    /// Binds a campaign to a world.
    pub fn new(world: &'w World, config: CampaignConfig) -> Self {
        Self { world, config }
    }

    /// Runs the whole campaign from the start.
    pub fn run(&self) -> CampaignResult {
        self.run_resumable(None, None)
            .expect("fresh runs cannot fail")
    }

    /// Resumes a campaign from a checkpoint taken by a previous run.
    /// Completed work units are not re-executed: their selections are
    /// re-derived (they are pure functions of world + config) and their
    /// raw data replayed from the checkpoint's durable bucket snapshot,
    /// producing a final result identical to an uninterrupted run.
    pub fn resume(&self, checkpoint: &serde_json::Value) -> Result<CampaignResult, String> {
        self.run_resumable(Some(checkpoint), None)
    }

    /// Builds a [`StreamEngine`](clasp_stream::StreamEngine) wired to
    /// this campaign's world (server-local UTC offsets resolved from the
    /// registry, like the batch analysis does).
    pub fn stream_engine(&self, cfg: clasp_stream::EngineConfig) -> clasp_stream::StreamEngine {
        clasp_stream::StreamEngine::new(cfg, self.world.server_utc_offsets())
    }

    /// Restores a streaming engine from a checkpoint taken by
    /// [`Self::run_streaming`]. Checkpoints without stream state (from a
    /// non-streaming run) yield a fresh engine, which
    /// [`Self::resume_streaming`] then catches up via replay.
    pub fn restore_stream_engine(
        &self,
        cfg: clasp_stream::EngineConfig,
        checkpoint: &serde_json::Value,
    ) -> Result<clasp_stream::StreamEngine, String> {
        match checkpoint.get("stream") {
            Some(snap) => {
                clasp_stream::StreamEngine::restore(cfg, self.world.server_utc_offsets(), snap)
            }
            None => Ok(self.stream_engine(cfg)),
        }
    }

    /// Runs the campaign with live streaming detection: the engine
    /// subscribes a bounded tail to the database insert stream, consumes
    /// every ingested point as it lands, and is finalized when the run
    /// completes. Checkpoints taken along the way embed the engine
    /// snapshot under `"stream"`, so [`Self::resume_streaming`] can
    /// continue both the campaign and the detection state.
    pub fn run_streaming(&self, engine: &mut clasp_stream::StreamEngine) -> CampaignResult {
        let result = self
            .run_resumable(None, Some(engine))
            .expect("fresh runs cannot fail");
        engine.finalize();
        result
    }

    /// Resumes a streaming campaign. `engine` must come from
    /// [`Self::restore_stream_engine`] on the same checkpoint (its
    /// replay cursor tells the run how many re-ingested points to skip).
    pub fn resume_streaming(
        &self,
        checkpoint: &serde_json::Value,
        engine: &mut clasp_stream::StreamEngine,
    ) -> Result<CampaignResult, String> {
        let result = self.run_resumable(Some(checkpoint), Some(engine))?;
        engine.finalize();
        Ok(result)
    }

    fn run_resumable(
        &self,
        resume: Option<&serde_json::Value>,
        mut stream: Option<&mut clasp_stream::StreamEngine>,
    ) -> Result<CampaignResult, String> {
        let session = self.world.session();
        let client = SpeedTestClient::default();
        let cron = CronSchedule::new(self.config.seed ^ 0xc407);
        let fplan = self.config.effective_fault_plan();
        let mut db = Db::new();
        // Streaming: a bounded tail mirrors every insert to the engine.
        // On resume the engine's replay cursor (`events_seen`) skips the
        // points re-ingested from completed units' bucket snapshots, so
        // the engine sees each point exactly once across interruptions.
        let tail = stream
            .as_deref_mut()
            .map(|engine| db.subscribe(engine.config().bus_capacity));
        let mut replay_skip = stream.as_deref().map_or(0, |engine| engine.events_seen());
        let mut drain = |stream: &mut Option<&mut clasp_stream::StreamEngine>| {
            if let (Some(tail), Some(engine)) = (tail.as_ref(), stream.as_deref_mut()) {
                tail.drain(|p| {
                    if replay_skip > 0 {
                        replay_skip -= 1;
                    } else {
                        engine.ingest(&p);
                    }
                });
                engine.record_bus_overflow(tail.overflow());
            }
        };
        let mut billing = Billing::new();
        let mut vm_count = 0usize;
        let mut tests_run = 0u64;
        let mut tainted = 0u64;
        let mut raw_objects = 0u64;
        let mut buckets = Vec::new();
        let mut topo_selections = Vec::new();
        let mut diff_selections = Vec::new();
        let mut flog = FaultLog::new();
        let mut report = CompletenessReport::new();
        let mut checkpoints = Vec::new();
        // Durable raw snapshots of completed units, label → bucket dump.
        let mut raw_store: Vec<(String, serde_json::Value)> = Vec::new();
        let mut completed: Vec<String> = Vec::new();

        if let Some(ckpt) = resume {
            let counters = ckpt.get("counters").ok_or("checkpoint missing counters")?;
            let u = |k: &str| counters.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            vm_count = u("vm_count") as usize;
            tests_run = u("tests_run");
            tainted = u("tainted");
            billing = billing_from_json(ckpt.get("billing").ok_or("checkpoint missing billing")?);
            flog = FaultLog::from_json(
                ckpt.get("fault_log")
                    .ok_or("checkpoint missing fault_log")?,
            )?;
            report = CompletenessReport::from_json(
                ckpt.get("completeness")
                    .ok_or("checkpoint missing completeness")?,
            )?;
            completed = ckpt
                .get("completed")
                .and_then(|c| c.as_array())
                .ok_or("checkpoint missing completed")?
                .iter()
                .filter_map(|v| v.as_str().map(String::from))
                .collect();
            for entry in ckpt
                .get("raw")
                .and_then(|r| r.as_array())
                .ok_or("checkpoint missing raw")?
            {
                let label = entry
                    .get("unit")
                    .and_then(|v| v.as_str())
                    .ok_or("raw entry missing unit")?;
                raw_store.push((label.to_string(), entry.clone()));
            }
        }

        let diff_start = SimTime((self.config.days - self.config.diff_days) * SECONDS_PER_DAY);

        // The campaign as an ordered list of checkpointable work units:
        // each topology region, then each differential region.
        enum Unit {
            Topo { budget: usize },
            Diff,
        }
        let mut units: Vec<(String, &'static str, Unit)> = Vec::new();
        for &(region_name, budget) in &self.config.topo_regions {
            units.push((
                format!("topo:{region_name}"),
                region_name,
                Unit::Topo { budget },
            ));
        }
        for &region_name in &self.config.diff_regions {
            units.push((format!("diff:{region_name}"), region_name, Unit::Diff));
        }

        for (label, region_name, unit) in units {
            let region = Region::by_name(region_name).expect("known region");
            let region_city = region.city_id(&self.world.topo.cities);
            let done = completed.iter().any(|c| c == &label);

            match unit {
                Unit::Topo { budget } => {
                    // Selection is a pure function of world + config:
                    // recomputed identically whether resuming or not.
                    let sel = topology::select(
                        self.world,
                        &session.paths,
                        region.name,
                        region_city,
                        budget,
                        &self.config.pilot,
                    );
                    let mut bucket = if done {
                        bucket_from_snapshot(&raw_store, &label)?
                    } else {
                        Bucket::new(region.name)
                    };
                    if !done {
                        let plan = plan::plan_region(region, &sel.servers, &cron);
                        self.run_region_loop(
                            &session,
                            &client,
                            &cron,
                            region,
                            &plan,
                            Tier::Premium,
                            "topo",
                            SimTime::EPOCH,
                            self.config.days,
                            &mut bucket,
                            &mut billing,
                            &mut tests_run,
                            &mut tainted,
                            &fplan,
                            &mut flog,
                            &mut report,
                            region.name,
                        );
                        vm_count += plan.n_vms;
                        billing.record_vm_hours(
                            MachineType::N1Standard2,
                            plan.n_vms as f64 * self.config.days as f64 * 24.0,
                        );
                        billing
                            .record_storage(bucket.stored_bytes(), self.config.days as f64 * 24.0);
                        raw_store.push((label.clone(), bucket_snapshot(&bucket, &label)));
                        completed.push(label.clone());
                    }
                    let stats = pipeline::ingest(&bucket, &mut db);
                    drain(&mut stream);
                    raw_objects += stats.objects;
                    if self.config.keep_raw {
                        buckets.push(bucket);
                    }
                    topo_selections.push(sel);
                }
                Unit::Diff => {
                    let sel = differential::select(
                        self.world,
                        &session.paths,
                        &session.perf,
                        region.name,
                        region_city,
                        &self.config.pretest,
                    );
                    let mut bucket = if done {
                        bucket_from_snapshot(&raw_store, &label)?
                    } else {
                        Bucket::new(format!("{}-diff", region.name))
                    };
                    if !done {
                        let servers: Vec<String> =
                            sel.picks.iter().map(|p| p.server_id.clone()).collect();
                        for tier in [Tier::Premium, Tier::Standard] {
                            let plan = DeploymentPlan {
                                region: region.name,
                                n_vms: 1,
                                assignments: vec![servers.clone()],
                            };
                            let comp_label = format!("{}-diff-{}", region.name, tier.label());
                            self.run_region_loop(
                                &session,
                                &client,
                                &cron,
                                region,
                                &plan,
                                tier,
                                "diff",
                                diff_start,
                                self.config.diff_days,
                                &mut bucket,
                                &mut billing,
                                &mut tests_run,
                                &mut tainted,
                                &fplan,
                                &mut flog,
                                &mut report,
                                &comp_label,
                            );
                            vm_count += 1;
                            billing.record_vm_hours(
                                MachineType::N1Standard2,
                                self.config.diff_days as f64 * 24.0,
                            );
                        }
                        billing.record_storage(
                            bucket.stored_bytes(),
                            self.config.diff_days as f64 * 24.0,
                        );
                        raw_store.push((label.clone(), bucket_snapshot(&bucket, &label)));
                        completed.push(label.clone());
                    }
                    let stats = pipeline::ingest(&bucket, &mut db);
                    drain(&mut stream);
                    raw_objects += stats.objects;
                    if self.config.keep_raw {
                        buckets.push(bucket);
                    }
                    diff_selections.push(sel);
                }
            }

            // Periodic checkpoint: everything needed to resume after
            // this unit, with the raw bucket dumps as durable storage.
            // Streaming runs additionally embed the engine snapshot, so
            // detection state survives the interruption too.
            let mut ckpt = make_checkpoint(
                &completed, &billing, vm_count, tests_run, tainted, &flog, &report, &raw_store,
            );
            if let Some(engine) = stream.as_deref() {
                if let serde_json::Value::Object(m) = &mut ckpt {
                    m.insert("stream".into(), engine.snapshot());
                }
            }
            checkpoints.push(ckpt);
        }

        // Checkpoints carry the raw expected/collected tallies; the
        // fault outcomes are folded in exactly once, here, so a resumed
        // run absorbs each fault a single time.
        report.absorb_log(&flog);

        Ok(CampaignResult {
            db,
            topo_selections,
            diff_selections,
            billing,
            vm_count,
            tests_run,
            tainted_tests: tainted,
            raw_objects,
            buckets,
            fault_log: flog,
            completeness: report,
            checkpoints,
        })
    }

    /// The hourly cron loop for one region/tier/server-assignment, with
    /// fault injection and resilient recovery. With an empty plan every
    /// fault query short-circuits and the loop is byte-for-byte the
    /// pre-fault implementation.
    #[allow(clippy::too_many_arguments)]
    fn run_region_loop(
        &self,
        session: &crate::world::Session<'_>,
        client: &SpeedTestClient,
        cron: &CronSchedule,
        region: &'static Region,
        plan: &DeploymentPlan,
        tier: Tier,
        method: &str,
        start: SimTime,
        days: u64,
        bucket: &mut Bucket,
        billing: &mut Billing,
        tests_run: &mut u64,
        tainted: &mut u64,
        fplan: &FaultPlan,
        flog: &mut FaultLog,
        report: &mut CompletenessReport,
        comp_label: &str,
    ) {
        let region_city = region.city_id(&self.world.topo.cities);
        // Each VM has its own crontab: the premium and standard VMs of a
        // differential pair test the same server within the same hour but
        // at different minutes, like the real deployment.
        let tier_salt = match tier {
            Tier::Premium => 0x11u64,
            Tier::Standard => 0x22u64,
        };
        let cron = CronSchedule {
            budget: cron.budget,
            seed: cron.seed ^ tier_salt,
        };
        let cron = &cron;
        let abort_policy = RetryPolicy::speedtest();
        let upload_policy = RetryPolicy::upload();
        let api_policy = RetryPolicy::api();
        // Resolve the path pair for every assigned server once (paths are
        // stable across the campaign; CLASP re-selects only at start).
        let mut pairs: std::collections::HashMap<&str, (PathPair, &speedtest::platform::Server)> =
            Default::default();
        for assignment in &plan.assignments {
            for sid in assignment {
                let server = self
                    .world
                    .registry
                    .by_id(sid)
                    .expect("selected servers exist");
                let vm_ip = self.world.topo.vm_ip(region_city, 0);
                if let Some(pair) =
                    client.resolve_paths(&session.paths, region_city, vm_ip, server, tier)
                {
                    pairs.insert(sid.as_str(), (pair, server));
                }
            }
        }

        for (vm_idx, assignment) in plan.assignments.iter().enumerate() {
            let vm_name = format!("clasp-{}-{}-{}", region.name, tier.label(), vm_idx);
            let scope = VmScope {
                region: region.name,
                vm: &vm_name,
            };
            let jitter_key = faultsim::name_key(&vm_name);
            // The schedule only covers servers whose paths resolved;
            // each gets one test per hour per the paper's design.
            let resolvable = assignment
                .iter()
                .filter(|sid| pairs.contains_key(sid.as_str()))
                .count() as u64;
            report.add_expected(comp_label, resolvable * days * 24);
            // An in-progress multi-hour outage: (fault id, end hour).
            let mut active_outage: Option<(usize, u64)> = None;
            let mut day_results: Vec<TestResult> = Vec::with_capacity(assignment.len() * 24);
            for day in 0..days {
                for hour in 0..24 {
                    let hour_start = start + day * SECONDS_PER_DAY + hour * HOUR;
                    let abs_hour = hour_start.hour_index();
                    // Legacy outages (deprecated `outage_rate`): the hour
                    // is silently lost, exactly as the old inline draw
                    // decided — but now logged as ground truth.
                    if fplan.legacy_vm_outage(
                        self.config.seed ^ vm_idx as u64 ^ tier_salt,
                        hour_start.as_secs(),
                    ) {
                        let id = flog.record(
                            hour_start.as_secs(),
                            FaultKind::CronMiss,
                            comp_label,
                            &vm_name,
                            "legacy outage_rate",
                        );
                        flog.mark_lost(id, resolvable);
                        continue;
                    }
                    // An outage window in progress eats the whole hour;
                    // at its end the VM must be brought back, which the
                    // quota and the control-plane API can both delay.
                    if let Some((id, until)) = active_outage {
                        if abs_hour < until {
                            flog.mark_lost(id, resolvable);
                            continue;
                        }
                        if !cloudsim::quota::Quota::default().allows_provisioning(
                            plan.n_vms,
                            region.name,
                            abs_hour,
                            fplan,
                        ) {
                            let qid = flog.record(
                                hour_start.as_secs(),
                                FaultKind::QuotaExhausted,
                                comp_label,
                                &vm_name,
                                "restart blocked by quota",
                            );
                            flog.mark_lost(qid, resolvable);
                            active_outage = Some((qid, abs_hour + 1));
                            continue;
                        }
                        if fplan.api_error("restart_vm", hour_start.as_secs(), 0) {
                            let aid = flog.record(
                                hour_start.as_secs(),
                                FaultKind::ApiError,
                                comp_label,
                                &vm_name,
                                "restart_vm",
                            );
                            let recovered = (1..api_policy.max_attempts).find(|&attempt| {
                                !fplan.api_error("restart_vm", hour_start.as_secs(), attempt)
                            });
                            match recovered {
                                Some(attempt) => {
                                    flog.mark_recovered(
                                        aid,
                                        attempt,
                                        hour_start.as_secs()
                                            + api_policy.total_delay(attempt + 1, jitter_key),
                                    );
                                    active_outage = None;
                                }
                                None => {
                                    flog.mark_lost(aid, resolvable);
                                    active_outage = Some((aid, abs_hour + 1));
                                    continue;
                                }
                            }
                        } else {
                            active_outage = None;
                        }
                    }
                    // New VM outages (preemption / crash loop) starting
                    // this hour: logged once, then the window is walked
                    // hour by hour so the lost toll is exact even when
                    // it crosses the campaign end.
                    if let Some((kind, dur)) = fplan.vm_fault_starting(scope, abs_hour) {
                        let id = flog.record(
                            hour_start.as_secs(),
                            kind,
                            comp_label,
                            &vm_name,
                            format!("{dur}h outage"),
                        );
                        flog.mark_lost(id, resolvable);
                        active_outage = Some((id, abs_hour + dur));
                        continue;
                    }
                    // Cron faults: a skewed tick runs late; a missed tick
                    // is re-fired by the watchdog (each re-fire draws
                    // independently) or, past the retry budget, the hour
                    // is gracefully skipped.
                    let mut effect = fplan.cron_effect(scope, abs_hour, 0);
                    match effect {
                        CronEffect::Miss => {
                            const WATCHDOG_RETRIES: u32 = 2;
                            const WATCHDOG_DELAY_S: u64 = 600;
                            let id = flog.record(
                                hour_start.as_secs(),
                                FaultKind::CronMiss,
                                comp_label,
                                &vm_name,
                                "tick missed",
                            );
                            let refired = (1..=WATCHDOG_RETRIES).find(|&attempt| {
                                !matches!(
                                    fplan.cron_effect(scope, abs_hour, attempt),
                                    CronEffect::Miss
                                )
                            });
                            match refired {
                                Some(attempt) => {
                                    let delay = attempt as u64 * WATCHDOG_DELAY_S;
                                    flog.mark_recovered(id, attempt, hour_start.as_secs() + delay);
                                    effect = CronEffect::Skew(delay);
                                }
                                None => {
                                    flog.mark_lost(id, resolvable);
                                    continue;
                                }
                            }
                        }
                        CronEffect::Skew(s) => {
                            let id = flog.record(
                                hour_start.as_secs(),
                                FaultKind::CronSkew,
                                comp_label,
                                &vm_name,
                                format!("late {s}s"),
                            );
                            flog.mark_recovered(id, 0, hour_start.as_secs() + s);
                        }
                        CronEffect::OnTime => {}
                    }
                    let items: Vec<&str> = assignment.iter().map(String::as_str).collect();
                    let slots = cron
                        .hour_slots_with_effect(hour_start, &items, effect)
                        .expect("Miss handled above");
                    for slot in slots {
                        let Some((pair, server)) = pairs.get(slot.item) else {
                            continue;
                        };
                        // Mid-test aborts retry within the slot with
                        // backed-off restarts; a slot that never
                        // completes loses one server-hour.
                        let mut result = client.run_test_faulted(
                            &session.perf,
                            pair,
                            server,
                            slot.start,
                            self.config.seed ^ tier_salt,
                            fplan,
                            scope,
                            0,
                        );
                        if result.is_none() {
                            let id = flog.record(
                                slot.start.as_secs(),
                                FaultKind::TestAbort,
                                comp_label,
                                &vm_name,
                                slot.item,
                            );
                            for attempt in 1..abort_policy.max_attempts {
                                let t_retry =
                                    slot.start + abort_policy.total_delay(attempt + 1, jitter_key);
                                if let Some(r) = client.run_test_faulted(
                                    &session.perf,
                                    pair,
                                    server,
                                    t_retry,
                                    self.config.seed ^ tier_salt,
                                    fplan,
                                    scope,
                                    attempt,
                                ) {
                                    flog.mark_recovered(id, attempt, t_retry.as_secs());
                                    result = Some(r);
                                    break;
                                }
                            }
                            if result.is_none() {
                                flog.mark_lost(id, 1);
                            }
                        }
                        let Some(r) = result else {
                            continue;
                        };
                        // Health check (someta).
                        let meta = nettools::someta::record(
                            &vm_name,
                            region.name,
                            slot.start,
                            r.download_mbps,
                        );
                        if nettools::someta::is_tainted(&meta) {
                            *tainted += 1;
                        }
                        // Billing: upload data + download ACK overhead is
                        // egress; download data is (free) ingress.
                        let up_bytes =
                            (r.upload_mbps / 8.0 * server.platform.transfer_seconds() * 1e6) as u64;
                        let down_bytes = (r.download_mbps / 8.0
                            * server.platform.transfer_seconds()
                            * 1e6) as u64;
                        billing.record_transfer(
                            tier == Tier::Premium,
                            up_bytes + down_bytes / 50,
                            down_bytes,
                        );
                        *tests_run += 1;
                        day_results.push(r);
                    }
                }
                // End of day: upload the raw batch with bounded retries.
                // Only batches that actually land in the bucket count as
                // collected — a lost batch loses its server-hours.
                if !day_results.is_empty() {
                    let n = day_results.len() as u64;
                    let uploaded = pipeline::upload_batch_resilient(
                        bucket,
                        region.name,
                        method,
                        &vm_name,
                        &day_results,
                        start + (day + 1) * SECONDS_PER_DAY,
                        fplan,
                        &upload_policy,
                        flog,
                        comp_label,
                    );
                    if uploaded.is_some() {
                        report.add_collected(comp_label, n);
                    }
                    day_results.clear();
                }
            }
        }
    }
}

/// Dumps a bucket's objects to JSON: the durable-storage side of a
/// campaign checkpoint.
fn bucket_snapshot(bucket: &Bucket, unit: &str) -> serde_json::Value {
    use serde_json::{Map, Value};
    let objects: Vec<Value> = bucket
        .list("")
        .into_iter()
        .map(|key| {
            let obj = bucket.get(key).expect("listed keys exist");
            let mut m = Map::new();
            m.insert("key".into(), key.into());
            m.insert("data".into(), obj.data.clone().into());
            m.insert("uploaded".into(), obj.uploaded.as_secs().into());
            Value::Object(m)
        })
        .collect();
    let mut m = Map::new();
    m.insert("unit".into(), unit.into());
    m.insert("bucket".into(), bucket.region.clone().into());
    m.insert("objects".into(), Value::Array(objects));
    Value::Object(m)
}

/// Rebuilds a bucket from the snapshot stored for `unit`. `put` re-runs
/// the deterministic compression, so the rebuilt bucket is identical to
/// the one snapshotted.
fn bucket_from_snapshot(
    raw_store: &[(String, serde_json::Value)],
    unit: &str,
) -> Result<Bucket, String> {
    let (_, snap) = raw_store
        .iter()
        .find(|(label, _)| label == unit)
        .ok_or_else(|| format!("checkpoint has no raw data for unit {unit:?}"))?;
    let region = snap
        .get("bucket")
        .and_then(|v| v.as_str())
        .ok_or("snapshot missing bucket region")?;
    let mut bucket = Bucket::new(region);
    for obj in snap
        .get("objects")
        .and_then(|o| o.as_array())
        .ok_or("snapshot missing objects")?
    {
        let key = obj
            .get("key")
            .and_then(|v| v.as_str())
            .ok_or("object missing key")?;
        let data = obj
            .get("data")
            .and_then(|v| v.as_str())
            .ok_or("object missing data")?;
        let uploaded = obj.get("uploaded").and_then(|v| v.as_u64()).unwrap_or(0);
        bucket.put(key, data.to_string(), SimTime(uploaded));
    }
    Ok(bucket)
}

fn billing_to_json(billing: &Billing) -> serde_json::Value {
    use serde_json::{Map, Value};
    let mut m = Map::new();
    m.insert(
        "premium_egress_bytes".into(),
        billing.premium_egress_bytes.into(),
    );
    m.insert(
        "standard_egress_bytes".into(),
        billing.standard_egress_bytes.into(),
    );
    m.insert("ingress_bytes".into(), billing.ingress_bytes.into());
    m.insert("vm_hours_n1".into(), billing.vm_hours_n1.into());
    m.insert("vm_hours_n2".into(), billing.vm_hours_n2.into());
    m.insert(
        "storage_byte_hours".into(),
        billing.storage_byte_hours.into(),
    );
    Value::Object(m)
}

fn billing_from_json(v: &serde_json::Value) -> Billing {
    let u = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let f = |k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
    let mut billing = Billing::new();
    billing.premium_egress_bytes = u("premium_egress_bytes");
    billing.standard_egress_bytes = u("standard_egress_bytes");
    billing.ingress_bytes = u("ingress_bytes");
    billing.vm_hours_n1 = f("vm_hours_n1");
    billing.vm_hours_n2 = f("vm_hours_n2");
    billing.storage_byte_hours = f("storage_byte_hours");
    billing
}

#[allow(clippy::too_many_arguments)]
fn make_checkpoint(
    completed: &[String],
    billing: &Billing,
    vm_count: usize,
    tests_run: u64,
    tainted: u64,
    flog: &FaultLog,
    report: &CompletenessReport,
    raw_store: &[(String, serde_json::Value)],
) -> serde_json::Value {
    use serde_json::{Map, Value};
    let mut counters = Map::new();
    counters.insert("vm_count".into(), vm_count.into());
    counters.insert("tests_run".into(), tests_run.into());
    counters.insert("tainted".into(), tainted.into());
    let mut m = Map::new();
    m.insert(
        "completed".into(),
        Value::Array(completed.iter().map(|c| c.clone().into()).collect()),
    );
    m.insert("counters".into(), Value::Object(counters));
    m.insert("billing".into(), billing_to_json(billing));
    m.insert("fault_log".into(), flog.to_json());
    m.insert("completeness".into(), report.to_json());
    m.insert(
        "raw".into(),
        Value::Array(raw_store.iter().map(|(_, snap)| snap.clone()).collect()),
    );
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsdb::{Aggregate, Query};

    fn run_small() -> (World, CampaignResult) {
        let world = World::tiny(121);
        let result = Campaign::new(&world, CampaignConfig::small(121)).run();
        (world, result)
    }

    #[test]
    fn campaign_produces_hourly_series() {
        let (_, res) = run_small();
        assert!(res.tests_run > 0);
        assert!(res.db.points_written > 0);
        assert_eq!(res.db.points_written, res.tests_run);
        // One topo selection, one diff selection.
        assert_eq!(res.topo_selections.len(), 1);
        assert_eq!(res.diff_selections.len(), 1);
        assert!(res.vm_count >= 3); // ≥1 topo VM + 2 diff VMs
        assert!(res.raw_objects > 0);
    }

    #[test]
    fn topo_series_have_one_test_per_hour() {
        let (_, res) = run_small();
        let mut db = res.db;
        let sel = &res.topo_selections[0];
        let first = &sel.servers[0];
        let rows = Query::select("speedtest", "download")
            .r#where("server", first)
            .r#where("method", "topo")
            .group_by_time(3600)
            .aggregate(Aggregate::Count)
            .run(&mut db);
        assert_eq!(rows.len(), 1);
        // 4 days × 24 hours, one test per hour.
        assert_eq!(rows[0].rows.len(), 96);
        assert!(rows[0].rows.iter().all(|r| r.value == 1.0));
    }

    #[test]
    fn differential_servers_measured_on_both_tiers() {
        let (_, res) = run_small();
        let mut db = res.db;
        let sel = &res.diff_selections[0];
        assert!(!sel.picks.is_empty());
        let sid = &sel.picks[0].server_id;
        for tier in ["premium", "standard"] {
            let rows = Query::select("speedtest", "download")
                .r#where("server", sid)
                .r#where("tier", tier)
                .r#where("method", "diff")
                .aggregate(Aggregate::Count)
                .run(&mut db);
            assert_eq!(rows.len(), 1, "tier {tier} measured");
            // 2 days × 24 hours.
            assert_eq!(rows[0].rows[0].value, 48.0);
        }
    }

    #[test]
    fn billing_accumulates_vm_and_egress() {
        let (_, res) = run_small();
        assert!(res.billing.vm_usd() > 0.0);
        assert!(res.billing.egress_usd() > 0.0);
        assert!(res.billing.total_usd() > 0.0);
        // Download is ingress → free; the bill is dominated by VM + the
        // small upload egress.
        assert!(res.billing.ingress_bytes > res.billing.premium_egress_bytes);
    }

    #[test]
    fn campaign_is_deterministic() {
        let world = World::tiny(131);
        let a = Campaign::new(&world, CampaignConfig::small(131)).run();
        let b = Campaign::new(&world, CampaignConfig::small(131)).run();
        assert_eq!(a.tests_run, b.tests_run);
        assert_eq!(a.db.points_written, b.db.points_written);
        assert_eq!(
            a.billing.premium_egress_bytes,
            b.billing.premium_egress_bytes
        );
    }

    #[test]
    fn health_check_rarely_fires() {
        let (_, res) = run_small();
        // The paper verified the VM type was never CPU-starved.
        assert!(res.tainted_tests * 10 < res.tests_run);
    }

    #[test]
    fn raw_buckets_retained_when_asked() {
        let (_, res) = run_small();
        assert!(!res.buckets.is_empty());
        assert!(res.buckets.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn zero_fault_plan_is_invisible() {
        let world = World::tiny(121);
        let a = Campaign::new(&world, CampaignConfig::small(121)).run();
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::none();
        let b = Campaign::new(&world, cfg).run();
        assert!(a.fault_log.is_empty());
        assert!(a.completeness.reconciles());
        assert_eq!(a.completeness.total_missing(), 0);
        // Byte-identical final state: the canonical checkpoint JSON
        // captures every raw object, counter and billing figure.
        assert_eq!(
            serde_json::to_string(a.checkpoints.last().unwrap()),
            serde_json::to_string(b.checkpoints.last().unwrap()),
        );
    }

    #[test]
    fn faulted_campaign_completes_and_reconciles() {
        let world = World::tiny(121);
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::uniform(9, 0.02);
        let res = Campaign::new(&world, cfg).run();
        assert!(res.tests_run > 0, "campaign still collects data");
        assert!(!res.fault_log.is_empty(), "2% rates fire in 192 VM-hours");
        assert!(
            res.completeness.reconciles(),
            "missing hours must match the fault log exactly: {:?}",
            res.completeness.discrepancies()
        );
        assert!(res.completeness.total_missing() > 0, "some data was lost");
        assert!(res.completeness.overall_completeness() > 0.5);
        let s = res.fault_log.summary();
        assert!(s.recovered > 0, "retries recover some faults: {s:?}");
    }

    #[test]
    fn legacy_outage_rate_is_faultplan_backed() {
        let world = World::tiny(121);
        let mut legacy = CampaignConfig::small(121);
        legacy.outage_rate = 0.10;
        let mut planned = CampaignConfig::small(121);
        planned.fault_plan = FaultPlan::legacy_outage(0.10);
        let a = Campaign::new(&world, legacy).run();
        let b = Campaign::new(&world, planned).run();
        // Same draws, same gaps, same data — the deprecated knob is a
        // pure alias for the FaultPlan shim.
        assert_eq!(
            serde_json::to_string(a.checkpoints.last().unwrap()),
            serde_json::to_string(b.checkpoints.last().unwrap()),
        );
        let pristine = Campaign::new(&world, CampaignConfig::small(121)).run();
        assert!(a.tests_run < pristine.tests_run, "outages cost tests");
        assert!(a.completeness.reconciles());
    }

    #[test]
    fn checkpoint_resume_reproduces_final_results() {
        let world = World::tiny(121);
        let mut cfg = CampaignConfig::small(121);
        cfg.fault_plan = FaultPlan::uniform(5, 0.02);
        let full = Campaign::new(&world, cfg.clone()).run();
        // One checkpoint per work unit: 1 topo region + 1 diff region.
        assert_eq!(full.checkpoints.len(), 2);
        let resumed = Campaign::new(&world, cfg)
            .resume(&full.checkpoints[0])
            .unwrap();
        assert_eq!(full.tests_run, resumed.tests_run);
        assert_eq!(full.db.points_written, resumed.db.points_written);
        assert_eq!(full.db.series_count(), resumed.db.series_count());
        assert_eq!(
            full.billing.premium_egress_bytes,
            resumed.billing.premium_egress_bytes
        );
        assert_eq!(
            full.billing.standard_egress_bytes,
            resumed.billing.standard_egress_bytes
        );
        assert_eq!(full.fault_log, resumed.fault_log);
        assert_eq!(full.completeness, resumed.completeness);
        assert_eq!(
            serde_json::to_string(full.checkpoints.last().unwrap()),
            serde_json::to_string(resumed.checkpoints.last().unwrap()),
        );
    }

    #[test]
    fn resume_rejects_malformed_checkpoints() {
        let world = World::tiny(121);
        let campaign = Campaign::new(&world, CampaignConfig::small(121));
        let bad = serde_json::from_str("{}").unwrap();
        assert!(campaign.resume(&bad).is_err());
    }
}
