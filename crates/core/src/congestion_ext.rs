//! Extended congestion detection — the paper's §5 future work, built.
//!
//! "Finally, we will improve our congestion detection method using time
//! series analysis approaches, such as autocorrelation \[11\] and hidden
//! Markov model \[28\], to capture changes and patterns in throughput and
//! latency data to detect different types of congestion events."
//!
//! Two detectors over the same campaign series the threshold method
//! (§3.3) consumes:
//!
//! * **Autocorrelation**: a series whose hourly throughput has a strong
//!   ACF peak at lag 24 exhibits *recurrent, diurnal* congestion — the
//!   kind Fig. 6 visualises — as opposed to one-off drops;
//! * **Gaussian HMM**: a two-state model (high-throughput /
//!   low-throughput) trained per series with Baum–Welch; Viterbi-decoded
//!   low-state hours are congestion events with hysteresis, which the
//!   memoryless `V_H > H` rule lacks.
//!
//! [`compare_methods`] quantifies how the two relate to the paper's
//! threshold labels on identical data.

use crate::congestion::CongestionAnalysis;
use clasp_stats::autocorr::{diurnal_signal, DiurnalSignal};
use clasp_stats::hmm::GaussianHmm;

/// Per-series result of the HMM detector.
#[derive(Debug, Clone)]
pub struct HmmSeries {
    /// Series key.
    pub series: String,
    /// Hours Viterbi assigns to the low-throughput state.
    pub congested_hours: usize,
    /// Total hours in the series.
    pub total_hours: usize,
    /// Separation between the state means, relative to the high mean
    /// (≈ the depth of congestion episodes).
    pub mean_separation: f64,
    /// Whether the model found two genuinely distinct states.
    pub bimodal: bool,
}

/// Minimum relative separation between state means for a series to count
/// as having a real congested state (below this, the "two states" are
/// noise split in half).
pub const MIN_SEPARATION: f64 = 0.35;

/// Runs the HMM detector over every series of an analysis.
pub fn hmm_detect(analysis: &CongestionAnalysis) -> Vec<HmmSeries> {
    let mut out = Vec::new();
    for (idx, info) in analysis.series.iter().enumerate() {
        let idx = u32::try_from(idx).expect("series count fits u32");
        let mut series: Vec<(u64, f64)> = analysis
            .samples
            .iter()
            .filter(|s| s.series_idx == idx)
            .map(|s| (s.time, s.value))
            .collect();
        series.sort_by_key(|s| s.0);
        let values: Vec<f64> = series.into_iter().map(|(_, v)| v).collect();
        let Some((model, _)) = GaussianHmm::train(&values, 25, 1e-3) else {
            continue;
        };
        let low = model.low_state() as usize;
        let high = 1 - low;
        let separation = if model.mean[high] > 0.0 {
            (model.mean[high] - model.mean[low]) / model.mean[high]
        } else {
            0.0
        };
        let bimodal = separation > MIN_SEPARATION;
        let congested_hours = if bimodal {
            model
                .viterbi(&values)
                .into_iter()
                .filter(|s| *s as usize == low)
                .count()
        } else {
            0
        };
        out.push(HmmSeries {
            series: info.key.clone(),
            congested_hours,
            total_hours: values.len(),
            mean_separation: separation,
            bimodal,
        });
    }
    out
}

/// Per-series autocorrelation verdicts; series shorter than ~3 days are
/// skipped (no stable lag-24 estimate).
pub fn diurnal_detect(analysis: &CongestionAnalysis) -> Vec<(String, DiurnalSignal)> {
    let mut out = Vec::new();
    for (idx, info) in analysis.series.iter().enumerate() {
        let idx = u32::try_from(idx).expect("series count fits u32");
        let mut series: Vec<(u64, f64)> = analysis
            .samples
            .iter()
            .filter(|s| s.series_idx == idx)
            .map(|s| (s.time, s.value))
            .collect();
        if series.len() < 72 {
            continue;
        }
        series.sort_by_key(|s| s.0);
        let values: Vec<f64> = series.into_iter().map(|(_, v)| v).collect();
        if let Some(sig) = diurnal_signal(&values) {
            out.push((info.key.clone(), sig));
        }
    }
    out
}

/// How the extended detectors relate to the paper's threshold method.
#[derive(Debug, Clone, Copy)]
pub struct MethodComparison {
    /// Series the threshold method labels congested (>10% of days with an
    /// event at `h`).
    pub threshold_congested: usize,
    /// Series the HMM finds bimodal with a real congested state.
    pub hmm_congested: usize,
    /// Series the ACF flags as diurnal.
    pub diurnal: usize,
    /// Series flagged by both threshold and HMM.
    pub threshold_and_hmm: usize,
    /// Jaccard overlap of the threshold and HMM label sets.
    pub jaccard: f64,
}

/// Compares the three detectors on one analysis.
pub fn compare_methods(analysis: &CongestionAnalysis, h: f64) -> MethodComparison {
    let threshold = analysis.congested_series(h, 0.10);
    let hmm = hmm_detect(analysis);
    let diurnal = diurnal_detect(analysis);

    let hmm_set: std::collections::BTreeSet<&str> = hmm
        .iter()
        .filter(|s| s.bimodal && s.congested_hours > 0)
        .map(|s| s.series.as_str())
        .collect();
    let thr_set: std::collections::BTreeSet<&str> = analysis
        .series
        .iter()
        .enumerate()
        .filter(|(i, _)| threshold[*i])
        .map(|(_, info)| info.key.as_str())
        .collect();
    let inter = thr_set.intersection(&hmm_set).count();
    let union = thr_set.union(&hmm_set).count();
    MethodComparison {
        threshold_congested: thr_set.len(),
        hmm_congested: hmm_set.len(),
        diurnal: diurnal.iter().filter(|(_, s)| s.is_diurnal).count(),
        threshold_and_hmm: inter,
        jaccard: if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::world::World;

    fn analysis() -> (World, CongestionAnalysis) {
        let world = World::tiny(501);
        let mut config = CampaignConfig::small(501);
        config.days = 8;
        config.topo_regions = vec![("us-west1", 24)];
        config.diff_regions.clear();
        let res = Campaign::new(&world, config).runner().run().unwrap();
        let mut db = res.db;
        let a = CongestionAnalysis::build(
            &mut db,
            &world,
            "download",
            &[("method".into(), "topo".into())],
        );
        (world, a)
    }

    #[test]
    fn hmm_runs_over_every_series() {
        let (_, a) = analysis();
        let hmm = hmm_detect(&a);
        assert_eq!(hmm.len(), a.series.len());
        for s in &hmm {
            assert!(s.congested_hours <= s.total_hours);
            assert_eq!(s.total_hours, 8 * 24);
            assert!(s.mean_separation.is_finite());
        }
    }

    #[test]
    fn hmm_congested_series_are_ground_truth_congested() {
        let (world, a) = analysis();
        let hmm = hmm_detect(&a);
        let mut good = 0;
        let mut bad = 0;
        for (s, info) in hmm.iter().zip(&a.series) {
            if !s.bimodal || s.congested_hours == 0 {
                continue;
            }
            let srv = world.registry.by_id(&info.server).unwrap();
            match world.topo.as_node(srv.as_id).congestion {
                simnet::topology::CongestionClass::Clean => bad += 1,
                _ => good += 1,
            }
        }
        assert!(
            good >= bad,
            "HMM positives should mostly be truly congested ({good} vs {bad})"
        );
    }

    #[test]
    fn diurnal_detector_produces_verdicts() {
        let (_, a) = analysis();
        let verdicts = diurnal_detect(&a);
        assert_eq!(verdicts.len(), a.series.len());
        // Variability exists everywhere, but not every series is diurnal.
        let diurnal = verdicts.iter().filter(|(_, s)| s.is_diurnal).count();
        assert!(diurnal < verdicts.len());
    }

    #[test]
    fn method_comparison_is_consistent() {
        let (_, a) = analysis();
        let cmp = compare_methods(&a, 0.5);
        assert!(cmp.threshold_and_hmm <= cmp.threshold_congested);
        assert!(cmp.threshold_and_hmm <= cmp.hmm_congested);
        assert!((0.0..=1.0).contains(&cmp.jaccard));
    }
}
