//! Campaign-to-diagnosis glue: the `clasp diag` scenario suite.
//!
//! `clasp-diag` is a pure library — it ranks links from evidence and
//! scores the ranking against ground truth, but it does not know how to
//! *produce* the evidence. This module does: it injects link faults
//! into small campaigns, runs them through the normal [`crate::Runner`] path,
//! and converts the campaign's outputs (congestion labels, bdrmap link
//! groupings, per-hop traceroute RTT, differential tier deltas) into
//! the localizer's [`ServerObs`] inputs, then evaluates candidate
//! mitigations with the fluid model against a full speed-test replay.
//!
//! Each scenario is a pure function of `(suite seed, scenario index)`:
//! a fresh tiny world, an injected fault on a link the selection
//! actually measures through, a short campaign, and a diagnosis. The
//! resulting [`DiagReport`] is byte-identical across `--jobs` counts
//! and checkpoint resumes because every input it consumes already is.

use crate::campaign::{Campaign, CampaignConfig, CampaignResult};
use crate::congestion::CongestionAnalysis;
use crate::select::topology::{prefix_flow, TopologySelection};
use crate::world::World;
use clasp_diag::{
    localize, rank_actions, score_rankings, true_congested_links, ActionEval, DiagReport, HopRtt,
    MitigationAction, PathSummary, ScenarioReport, ServerObs, TruthConfig, Window,
};
use clasp_obs::Observer;
use cloudsim::region::Region;
use faultsim::{FaultKind, LinkFault};
use simnet::perf::{FlowSpec, LinkDegradation};
use simnet::routing::{load_key, Direction, SegmentKind, Tier};
use simnet::time::SimTime;
use speedtest::client::{PathPair, SpeedTestClient};
use speedtest::platform::Server;

/// Suite parameters.
#[derive(Debug, Clone, Copy)]
pub struct DiagConfig {
    /// Suite master seed; scenario seeds derive from it.
    pub seed: u64,
    /// Number of injected-fault scenarios.
    pub scenarios: u64,
    /// Campaign length per scenario, days (≥ 4: quiet day, two fault
    /// days, quiet day).
    pub days: u64,
    /// Per-region topology server budget per scenario.
    pub budget: usize,
    /// Worker threads for each scenario's campaign (as in
    /// [`CampaignConfig::jobs`]).
    pub jobs: usize,
    /// `V_H` event threshold `H` (the paper's 0.5).
    pub threshold: f64,
    /// Ground-truth extraction thresholds.
    pub truth: TruthConfig,
}

impl DiagConfig {
    /// The default suite for a seed: 5 scenarios on 4-day campaigns.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            scenarios: 5,
            days: 4,
            budget: 12,
            jobs: 1,
            threshold: 0.5,
            truth: TruthConfig::default(),
        }
    }
}

/// The region every scenario measures from. Scenario diversity comes
/// from the world seed (a new topology per scenario), not the region.
const DIAG_REGION: &str = "us-west1";
/// Local start hour of each day's fault window.
const FAULT_START: u64 = 8;
/// Fault window length, hours. Part of a day, not all of it: the
/// detector keys on *within-day* variability, as real diurnal
/// congestion does.
const FAULT_HOURS: u64 = 12;
/// Border-hop RTT sampling stride, hours.
const RTT_STRIDE: u64 = 2;

/// Runs the whole scenario suite.
pub fn run_suite(cfg: &DiagConfig, obs: Option<&Observer>) -> DiagReport {
    let root = obs.map(|o| o.span("diag"));
    let scenarios: Vec<ScenarioReport> = (0..cfg.scenarios)
        .map(|i| run_scenario(cfg, i, obs))
        .collect();
    let report = DiagReport {
        seed: cfg.seed,
        scenarios,
    };
    if let Some(o) = obs {
        o.with_metrics(|m| {
            m.set_gauge("diag.scenarios", report.scenarios.len() as f64);
            m.set_gauge("diag.top1_rate", report.top1_rate());
            m.set_gauge("diag.mitigation_agreement", report.mitigation_agreement());
        });
    }
    drop(root);
    report
}

/// Runs one scenario: world, fault, campaign, diagnosis.
pub fn run_scenario(cfg: &DiagConfig, index: u64, obs: Option<&Observer>) -> ScenarioReport {
    let span = obs.map(|o| o.span("diag:scenario"));
    let seed = scenario_seed(cfg.seed, index);
    let world = World::tiny(seed);
    let faults = plan_faults(cfg, &world, seed, index);
    let config = scenario_campaign_config(cfg, seed, faults.clone());
    let campaign = Campaign::new(&world, config);
    let mut runner = campaign.runner();
    if let Some(o) = obs {
        runner = runner.observer(o);
    }
    let mut result = runner.run().expect("fresh diag campaigns cannot fail");
    let report = diagnose(cfg, index, seed, &world, &mut result, &faults, obs);
    if let Some(o) = obs {
        o.with_metrics(|m| {
            m.inc("diag.scenarios_run", 1);
            m.inc("diag.windows_evaluated", report.localization.evaluated);
            m.inc("diag.top1_hits", report.localization.top1_hits);
        });
    }
    drop(span);
    report
}

/// The campaign configuration one scenario runs.
pub fn scenario_campaign_config(
    cfg: &DiagConfig,
    seed: u64,
    faults: Vec<LinkFault>,
) -> CampaignConfig {
    let mut c = CampaignConfig::small(seed);
    c.days = cfg.days.max(4);
    c.diff_days = 0;
    c.diff_regions = Vec::new();
    c.topo_regions = vec![(DIAG_REGION, cfg.budget)];
    c.jobs = cfg.jobs;
    c.fault_plan.link_faults = faults;
    c
}

/// Derives the scenario's world/campaign seed.
pub fn scenario_seed(suite_seed: u64, index: u64) -> u64 {
    load_key(b"diag.scn", suite_seed, index)
}

/// Plans the scenario's injected faults: a pre-pass topology selection
/// (identical to the one the campaign will run) finds the links the
/// measurement actually traverses, and the scenario index picks one,
/// alternating capacity cuts and loss floors. Two recurring partial-day
/// windows (days 1 and 2) give the fault the diurnal signature the
/// detector is built for.
pub fn plan_faults(cfg: &DiagConfig, world: &World, seed: u64, index: u64) -> Vec<LinkFault> {
    let sel = selection_prepass(cfg, world, seed);
    let links = measured_links(world, &sel);
    assert!(
        !links.is_empty(),
        "scenario selection measured through no known interdomain link"
    );
    let link = links[(load_key(b"diag.link", seed, index) % links.len() as u64) as usize];
    let (kind, magnitude) = if index.is_multiple_of(2) {
        (FaultKind::LinkCapacityCut, 0.9)
    } else {
        (FaultKind::LinkLossFloor, 0.08)
    };
    (1..=2)
        .map(|day| LinkFault {
            kind,
            link,
            start_hour: day * 24 + FAULT_START,
            duration_hours: FAULT_HOURS,
            magnitude,
        })
        .collect()
}

/// Runs the same topology selection the campaign will run internally
/// (selection is built from static traceroutes, so it is unaffected by
/// the degradations the campaign installs afterwards).
fn selection_prepass(cfg: &DiagConfig, world: &World, seed: u64) -> TopologySelection {
    let session = world.session();
    let region = Region::by_name(DIAG_REGION).expect("known region");
    let region_city = region.city_id(&world.topo.cities);
    let config = scenario_campaign_config(cfg, seed, Vec::new());
    crate::select::topology::select(
        world,
        &session.paths,
        DIAG_REGION,
        region_city,
        cfg.budget,
        &config.pilot,
    )
}

/// The distinct interdomain links the selection's servers sit behind,
/// sorted by link id.
fn measured_links(world: &World, sel: &TopologySelection) -> Vec<u32> {
    let mut links: Vec<u32> = sel
        .servers
        .iter()
        .filter_map(|sid| sel.server_link.get(sid))
        .filter_map(|far| link_by_far_ip(world, *far))
        .collect();
    links.sort_unstable();
    links.dedup();
    links
}

fn link_by_far_ip(world: &World, far: std::net::Ipv4Addr) -> Option<u32> {
    world
        .topo
        .links
        .iter()
        .find(|l| l.far_ip == far)
        .map(|l| l.id.0)
}

/// Diagnoses a finished campaign: builds the localizer's evidence from
/// the campaign outputs, scores it against ground truth, and evaluates
/// mitigations. Pure function of its arguments — the determinism suite
/// feeds it results from different `--jobs` counts and checkpoint
/// resumes and asserts byte-identical reports.
pub fn diagnose(
    cfg: &DiagConfig,
    index: u64,
    seed: u64,
    world: &World,
    result: &mut CampaignResult,
    faults: &[LinkFault],
    obs: Option<&Observer>,
) -> ScenarioReport {
    let region = Region::by_name(DIAG_REGION).expect("known region");
    let region_city = region.city_id(&world.topo.cities);
    let vm_ip = world.topo.vm_ip(region_city, 0);
    let degradations = sorted_degradations(faults);
    let mut session = world.session();
    session.perf.set_degradations(degradations.clone());
    let session = session;

    // --- Evidence: the campaign's own congestion labels. ---
    let analyze_span = obs.map(|o| o.span("diag:analyze"));
    let analysis = CongestionAnalysis::build(
        &mut result.db,
        world,
        "download",
        &[
            ("method".to_string(), "topo".to_string()),
            ("region".to_string(), DIAG_REGION.to_string()),
        ],
    );
    let events = analysis.events(cfg.threshold);
    let congested = analysis.congested_series(cfg.threshold, 0.1);
    drop(analyze_span);

    // --- Evidence: per-server observations. ---
    let sel = &result.topo_selections[0];
    let mut server_ids: Vec<String> = sel.servers.clone();
    server_ids.sort_unstable();
    let windows = scenario_windows(cfg);
    let fault_mid = SimTime((faults[0].start_hour + FAULT_HOURS / 2) * 3600);
    let mut observations: Vec<ServerObs> = Vec::new();
    for sid in &server_ids {
        let Some(&far) = sel.server_link.get(sid) else {
            continue;
        };
        let Some(link) = link_by_far_ip(world, far) else {
            continue;
        };
        let Some(server) = world.registry.by_id(sid) else {
            continue;
        };
        let event_hours: Vec<u64> = events
            .iter()
            .filter(|e| &e.server == sid)
            .map(|e| e.time / 3600)
            .collect();
        let is_congested = analysis
            .series
            .iter()
            .zip(&congested)
            .any(|(s, &c)| &s.server == sid && c);
        let border_rtt = border_rtt_series(&session, region_city, vm_ip, server, far, cfg);
        let tier_delta = tier_delta(&session, region_city, vm_ip, server, fault_mid);
        observations.push(ServerObs {
            server: sid.clone(),
            link,
            event_hours,
            congested: is_congested,
            border_rtt,
            tier_delta,
        });
    }

    // --- Localize and score against ground truth. ---
    let localize_span = obs.map(|o| o.span("diag:localize"));
    let rankings = localize(&observations, &windows);
    let truth = true_congested_links(
        &world.topo,
        session.perf.load_model(),
        &degradations,
        &windows,
        &cfg.truth,
    );
    let localization = score_rankings(&rankings, &truth);
    drop(localize_span);

    // The scenario's verdict is read at the first fault window.
    let primary = primary_window_index(cfg);
    let top_link = rankings[primary].ranked.first().map(|s| s.link);
    let top1_hit = top_link.is_some_and(|l| truth[primary].binary_search(&l).is_ok());

    // --- Mitigation. ---
    let mitigate_span = obs.map(|o| o.span("diag:mitigate"));
    let (mitigation, packet_check_mbps) = evaluate_mitigations(
        seed,
        world,
        &session,
        &observations,
        faults,
        windows[primary],
    );
    drop(mitigate_span);

    ScenarioReport {
        scenario: index,
        seed,
        injected_link: faults[0].link,
        fault_kind: faults[0].kind.name().to_string(),
        magnitude: faults[0].magnitude,
        top_link,
        top1_hit,
        localization,
        mitigation,
        packet_check_mbps,
    }
}

/// One scoring window per campaign day, each covering the daily fault
/// window's hours (so fault days and quiet days are directly
/// comparable).
fn scenario_windows(cfg: &DiagConfig) -> Vec<Window> {
    (0..cfg.days.max(4))
        .map(|d| Window {
            start_hour: d * 24 + FAULT_START,
            end_hour: d * 24 + FAULT_START + FAULT_HOURS,
        })
        .collect()
}

/// Index of the first fault-day window within [`scenario_windows`].
fn primary_window_index(_cfg: &DiagConfig) -> usize {
    1
}

fn sorted_degradations(faults: &[LinkFault]) -> Vec<LinkDegradation> {
    let mut d: Vec<LinkDegradation> = faults.iter().map(LinkFault::degradation).collect();
    d.sort_by_key(|x| (x.link.0, x.start_s, x.end_s));
    d
}

/// Border-hop RTT series for one server: the static traceroute RTT to
/// the far-side border interface plus the time-varying queueing of the
/// path up to and including the interconnect segment. This is what a
/// per-hop traceroute at that hour would report for the border hop —
/// downstream (server-access) queueing is excluded by construction,
/// which is exactly why the signal separates interconnect congestion
/// from server-edge congestion.
fn border_rtt_series(
    session: &crate::world::Session<'_>,
    region_city: simnet::geo::CityId,
    vm_ip: std::net::Ipv4Addr,
    server: &Server,
    far: std::net::Ipv4Addr,
    cfg: &DiagConfig,
) -> Vec<HopRtt> {
    let flow = prefix_flow(server.asn.0, server.city.0, region_city.0);
    let Some(path) = session.paths.vm_host_path_flow(
        region_city,
        vm_ip,
        server.as_id,
        server.city,
        server.ip,
        Tier::Premium,
        Direction::ToServer,
        flow,
    ) else {
        return Vec::new();
    };
    let Some(border_hop) = path.hops.iter().find(|h| h.ip == far) else {
        return Vec::new();
    };
    let Some(edge_idx) = path
        .segments
        .iter()
        .position(|s| matches!(s.kind, SegmentKind::CloudEdge(_)))
    else {
        return Vec::new();
    };
    let mut prefix = path.clone();
    prefix.segments.truncate(edge_idx + 1);
    let static_ms = border_hop.oneway_ms * 2.0;
    (0..cfg.days.max(4) * 24)
        .step_by(RTT_STRIDE as usize)
        .map(|hour| HopRtt {
            hour,
            rtt_ms: static_ms + session.perf.path_queue_ms(&prefix, SimTime(hour * 3600)),
        })
        .collect()
}

/// Relative premium-vs-standard download delta for one server at `t`:
/// `(premium − standard) / standard`. Both tiers are evaluated through
/// the degraded perf model, so a tier-specific bottleneck (the premium
/// interconnect) shows up as a large negative delta.
fn tier_delta(
    session: &crate::world::Session<'_>,
    region_city: simnet::geo::CityId,
    vm_ip: std::net::Ipv4Addr,
    server: &Server,
    t: SimTime,
) -> f64 {
    let client = SpeedTestClient::default();
    let mbps = |tier| {
        client
            .resolve_paths(&session.paths, region_city, vm_ip, server, tier)
            .map(|pair| fluid_download_mbps(session, &pair, t))
    };
    match (mbps(Tier::Premium), mbps(Tier::Standard)) {
        (Some(p), Some(s)) if s > 0.0 => (p - s) / s,
        _ => 0.0,
    }
}

/// Steady-state fluid download throughput over a resolved path pair.
fn fluid_download_mbps(session: &crate::world::Session<'_>, pair: &PathPair, t: SimTime) -> f64 {
    session
        .perf
        .tcp_throughput(&pair.to_cloud, &pair.to_server, t, &FlowSpec::download())
        .throughput_mbps
}

/// Enumerates and evaluates candidate mitigations for the scenario's
/// worst-affected server, returning the verified ranking and a
/// packet-level cross-check of the winning action.
fn evaluate_mitigations(
    seed: u64,
    world: &World,
    session: &crate::world::Session<'_>,
    observations: &[ServerObs],
    faults: &[LinkFault],
    window: Window,
) -> (clasp_diag::MitigationRanking, f64) {
    let injected = faults[0].link;
    let region = Region::by_name(DIAG_REGION).expect("known region");
    let region_city = region.city_id(&world.topo.cities);
    let vm_ip = world.topo.vm_ip(region_city, 0);
    let client = SpeedTestClient::default();

    // Target: the most-evented server behind the injected link (the
    // server the operator would be paged about). Observations are in
    // sorted-server order, so ties resolve canonically.
    let target = observations
        .iter()
        .filter(|o| o.link == injected)
        .max_by_key(|o| {
            (
                o.event_hours
                    .iter()
                    .filter(|&&h| window.contains(h))
                    .count(),
                std::cmp::Reverse(o.server.clone()),
            )
        })
        .or_else(|| observations.first());
    let Some(target) = target else {
        return (rank_actions(Vec::new()), 0.0);
    };
    let Some(server) = world.registry.by_id(&target.server) else {
        return (rank_actions(Vec::new()), 0.0);
    };

    let mut candidates: Vec<(MitigationAction, PathPair, &Server)> = Vec::new();
    if let Some(pair) =
        client.resolve_paths(&session.paths, region_city, vm_ip, server, Tier::Premium)
    {
        candidates.push((MitigationAction::Stay, pair, server));
    }
    if let Some(pair) =
        client.resolve_paths(&session.paths, region_city, vm_ip, server, Tier::Standard)
    {
        candidates.push((
            MitigationAction::SwitchTier {
                tier: "standard".to_string(),
            },
            pair,
            server,
        ));
    }
    // Reselection: the quietest selected server behind a different link.
    let alternative = observations
        .iter()
        .filter(|o| o.link != injected)
        .min_by_key(|o| {
            (
                o.event_hours
                    .iter()
                    .filter(|&&h| window.contains(h))
                    .count(),
                o.server.clone(),
            )
        });
    if let Some(alt) = alternative {
        if let Some(alt_server) = world.registry.by_id(&alt.server) {
            if let Some(pair) = client.resolve_paths(
                &session.paths,
                region_city,
                vm_ip,
                alt_server,
                Tier::Premium,
            ) {
                candidates.push((
                    MitigationAction::ReselectServer {
                        server: alt.server.clone(),
                    },
                    pair,
                    alt_server,
                ));
            }
        }
    }
    // Reroute: steer the five-tuple onto a different egress interface.
    if let Some((alt_link, pair)) = reroute_pair(session, region_city, vm_ip, server, injected) {
        candidates.push((MitigationAction::Reroute { link: alt_link }, pair, server));
    }

    // Predict with three fluid samples; replay every hour through the
    // full speed-test client (an independent, noisier estimator).
    let quarter = (window.end_hour - window.start_hour) / 4;
    let sample_hours = [
        window.start_hour + quarter,
        window.start_hour + 2 * quarter,
        window.start_hour + 3 * quarter,
    ];
    let evals: Vec<ActionEval> = candidates
        .iter()
        .map(|(action, pair, srv)| {
            let predicted_mbps = sample_hours
                .iter()
                .map(|&h| fluid_download_mbps(session, pair, SimTime(h * 3600)))
                .sum::<f64>()
                / sample_hours.len() as f64;
            let replayed: Vec<f64> = (window.start_hour..window.end_hour)
                .map(|h| {
                    let test_seed = load_key(b"diag.replay", seed, h);
                    client
                        .run_test(&session.perf, pair, srv, SimTime(h * 3600), test_seed)
                        .download_mbps
                })
                .collect();
            ActionEval {
                action: action.clone(),
                predicted_mbps,
                replayed_mbps: replayed.iter().sum::<f64>() / replayed.len().max(1) as f64,
            }
        })
        .collect();
    let ranking = rank_actions(evals);

    // Packet-level cross-check of the winner at the window midpoint.
    let packet = ranking
        .best()
        .and_then(|best| {
            candidates
                .iter()
                .find(|(a, _, _)| *a == best.action)
                .map(|(_, pair, _)| {
                    let t = SimTime(
                        (window.start_hour + (window.end_hour - window.start_hour) / 2) * 3600,
                    );
                    let summary = PathSummary {
                        bottleneck_mbps: session.perf.bottleneck_mbps(&pair.to_cloud, t),
                        rtt_ms: session.perf.rtt_ms(&pair.to_cloud, &pair.to_server, t),
                        loss_rate: session.perf.path_loss(&pair.to_cloud, t),
                    };
                    clasp_diag::mitigate::packet_level_mbps(summary, 8, seed)
                })
        })
        .unwrap_or(0.0);
    (ranking, packet)
}

/// Finds a flow id whose download path crosses a different egress
/// interface than the congested one, modelling flow-label engineering
/// over the interconnect's ECMP parallels.
fn reroute_pair(
    session: &crate::world::Session<'_>,
    region_city: simnet::geo::CityId,
    vm_ip: std::net::Ipv4Addr,
    server: &Server,
    injected: u32,
) -> Option<(u32, PathPair)> {
    let base_flow = prefix_flow(server.asn.0, server.city.0, region_city.0);
    for salt in 1..=32u64 {
        let flow = base_flow ^ salt;
        let resolve = |dir| {
            session.paths.vm_host_path_flow(
                region_city,
                vm_ip,
                server.as_id,
                server.city,
                server.ip,
                Tier::Premium,
                dir,
                flow,
            )
        };
        let Some(to_cloud) = resolve(Direction::ToCloud) else {
            continue;
        };
        match to_cloud.egress_link {
            Some(l) if l.0 != injected => {
                let to_server = resolve(Direction::ToServer)?;
                return Some((
                    l.0,
                    PathPair {
                        to_cloud,
                        to_server,
                    },
                ));
            }
            _ => continue,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_seeds_are_distinct_and_stable() {
        let a = scenario_seed(42, 0);
        let b = scenario_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, scenario_seed(42, 0));
    }

    #[test]
    fn planned_faults_recur_on_partial_days() {
        let cfg = DiagConfig::new(42);
        let seed = scenario_seed(cfg.seed, 0);
        let world = World::tiny(seed);
        let faults = plan_faults(&cfg, &world, seed, 0);
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].kind, FaultKind::LinkCapacityCut);
        assert_eq!(faults[0].link, faults[1].link);
        assert_eq!(faults[0].start_hour, 24 + FAULT_START);
        assert_eq!(faults[1].start_hour, 48 + FAULT_START);
        assert_eq!(faults[0].duration_hours, FAULT_HOURS);
        // Odd scenarios inject loss floors instead.
        let faults = plan_faults(&cfg, &world, seed, 1);
        assert_eq!(faults[0].kind, FaultKind::LinkLossFloor);
    }

    #[test]
    fn windows_cover_each_day_at_the_fault_hours() {
        let cfg = DiagConfig::new(7);
        let windows = scenario_windows(&cfg);
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[1].start_hour, 32);
        assert_eq!(windows[1].end_hour, 44);
        assert_eq!(primary_window_index(&cfg), 1);
    }
}
