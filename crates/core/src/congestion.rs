//! Congestion detection (§3.3) and congestion-event analysis (§4.2).
//!
//! The method, verbatim from the paper:
//!
//! * per VM–server pair `s` and day `d`, the **normalized peak-to-trough
//!   difference** `V(s,d) = (Tmax(s,d) − Tmin(s,d)) / Tmax(s,d)`;
//! * a threshold `H` chosen by the **elbow method** on the curve of
//!   "fraction of s-days with V(s,d) > H" (the paper lands on H = 0.5);
//! * per hourly sample, the **normalized intra-day difference**
//!   `V_H(s,t) = (Tmax(s,d) − T(s,t)) / Tmax(s,d)`; hours with
//!   `V_H(s,t) > H` are congestion events;
//! * per server, the **hourly congestion probability** = events in that
//!   local hour / measurements in that local hour (Fig. 6);
//! * a server is **congested** when more than 10 % of its days contain at
//!   least one congestion event (Fig. 8).
//!
//! Days and hours are reckoned in the *server's local time*, as §4.2 does
//! ("We converted the timezone to the location of the test servers to
//! better align with user activities").

use crate::world::World;
use clasp_stats::elbow::threshold_sweep;
use std::collections::HashMap;
use tsdb::Db;

/// One (series, local-day) variability record.
#[derive(Debug, Clone)]
pub struct DayVariability {
    /// Series key (region, server, tier, method).
    pub series: String,
    /// Server id.
    pub server: String,
    /// Local day index.
    pub local_day: i64,
    /// `V(s,d)`.
    pub v: f64,
    /// Daily maximum throughput, Mbps.
    pub t_max: f64,
    /// Daily minimum throughput, Mbps.
    pub t_min: f64,
    /// Samples in the day.
    pub n: usize,
}

/// One hourly sample with its intra-day normalized difference.
#[derive(Debug, Clone)]
pub struct HourSample {
    /// Index into the analysis' series table.
    pub series_idx: u32,
    /// Sample time (seconds since epoch, UTC).
    pub time: u64,
    /// Local hour of day at the server, `0..24`.
    pub local_hour: u8,
    /// Local day index.
    pub local_day: i64,
    /// Measured value (throughput, Mbps).
    pub value: f64,
    /// `V_H(s,t)` relative to the local day's maximum.
    pub v_h: f64,
}

/// A labelled congestion event (`V_H(s,t) > H`).
#[derive(Debug, Clone)]
pub struct CongestionEvent {
    /// Series key.
    pub series: String,
    /// Server id.
    pub server: String,
    /// Event time (UTC seconds).
    pub time: u64,
    /// Local hour at the server.
    pub local_hour: u8,
    /// The normalized drop.
    pub v_h: f64,
}

/// Per-series metadata carried through the analysis.
#[derive(Debug, Clone)]
pub struct SeriesInfo {
    /// Canonical series key.
    pub key: String,
    /// Server id tag.
    pub server: String,
    /// Region tag.
    pub region: String,
    /// Tier tag.
    pub tier: String,
    /// Server-local UTC offset, hours.
    pub utc_offset: i32,
}

/// The full variability analysis over one field of the campaign database.
#[derive(Debug)]
pub struct CongestionAnalysis {
    /// Analyzed series.
    pub series: Vec<SeriesInfo>,
    /// Per-(series, local-day) variability.
    pub day_vars: Vec<DayVariability>,
    /// Every hourly sample with its `V_H`.
    pub samples: Vec<HourSample>,
}

impl CongestionAnalysis {
    /// Builds the analysis for `field` (usually `"download"` — the
    /// ingress direction the paper's Fig. 2 analyzes) over the series
    /// matching `filters`.
    pub fn build(db: &mut Db, world: &World, field: &str, filters: &[(String, String)]) -> Self {
        let mut series_infos = Vec::new();
        let mut day_vars = Vec::new();
        let mut samples = Vec::new();

        for s in db.matching_series("speedtest", filters) {
            let server = s.tags.get("server").cloned().unwrap_or_default();
            let region = s.tags.get("region").cloned().unwrap_or_default();
            let tier = s.tags.get("tier").cloned().unwrap_or_default();
            let key = tsdb::point::series_key(&s.measurement, &s.tags);
            let utc_offset = world
                .registry
                .by_id(&server)
                .map(|srv| world.topo.cities.get(srv.city).utc_offset_hours)
                .unwrap_or(0);
            let series_idx = u32::try_from(series_infos.len()).expect("series count fits u32");

            // Bucket samples into local days.
            let mut by_day: HashMap<i64, Vec<(u64, f64)>> = HashMap::new();
            for (t, fields) in s.samples() {
                let Some(v) = fields.get(field) else { continue };
                let st = simnet::time::SimTime(*t);
                by_day
                    .entry(st.local_day(utc_offset))
                    .or_default()
                    .push((*t, *v));
            }
            let mut days: Vec<i64> = by_day.keys().copied().collect();
            days.sort_unstable();
            for d in days {
                let entries = &by_day[&d];
                let t_max = entries
                    .iter()
                    .map(|e| e.1)
                    .fold(f64::NEG_INFINITY, f64::max);
                let t_min = entries.iter().map(|e| e.1).fold(f64::INFINITY, f64::min);
                if t_max <= 0.0 {
                    continue;
                }
                day_vars.push(DayVariability {
                    series: key.clone(),
                    server: server.clone(),
                    local_day: d,
                    v: (t_max - t_min) / t_max,
                    t_max,
                    t_min,
                    n: entries.len(),
                });
                for &(t, v) in entries {
                    let st = simnet::time::SimTime(t);
                    samples.push(HourSample {
                        series_idx,
                        time: t,
                        local_hour: st.local_hour(utc_offset) as u8,
                        local_day: d,
                        value: v,
                        v_h: (t_max - v) / t_max,
                    });
                }
            }
            series_infos.push(SeriesInfo {
                key,
                server,
                region,
                tier,
                utc_offset,
            });
        }

        Self {
            series: series_infos,
            day_vars,
            samples,
        }
    }

    /// Fraction of s-days with `V(s,d) > h` (Fig. 2a's y-axis).
    pub fn fraction_days_above(&self, h: f64) -> f64 {
        if self.day_vars.is_empty() {
            return 0.0;
        }
        self.day_vars.iter().filter(|d| d.v > h).count() as f64 / self.day_vars.len() as f64
    }

    /// Fraction of s-hours with `V_H(s,t) > h` (Fig. 2b's y-axis).
    pub fn fraction_hours_above(&self, h: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.v_h > h).count() as f64 / self.samples.len() as f64
    }

    /// Sweeps thresholds and locates the elbow (the paper's H).
    pub fn elbow_threshold(&self, steps: usize) -> (Vec<(f64, f64)>, Option<f64>) {
        let thresholds: Vec<f64> = (0..=steps).map(|i| i as f64 / steps as f64).collect();
        threshold_sweep(&thresholds, |h| self.fraction_days_above(h))
    }

    /// All congestion events at threshold `h`.
    pub fn events(&self, h: f64) -> Vec<CongestionEvent> {
        self.samples
            .iter()
            .filter(|s| s.v_h > h)
            .map(|s| {
                let info = &self.series[s.series_idx as usize];
                CongestionEvent {
                    series: info.key.clone(),
                    server: info.server.clone(),
                    time: s.time,
                    local_hour: s.local_hour,
                    v_h: s.v_h,
                }
            })
            .collect()
    }

    /// Per-series hourly congestion probability at threshold `h`:
    /// `[events/trials; 24]` in server-local hours (Fig. 6).
    pub fn hourly_probability(&self, h: f64) -> Vec<[f64; 24]> {
        let mut events = vec![[0u32; 24]; self.series.len()];
        let mut trials = vec![[0u32; 24]; self.series.len()];
        for s in &self.samples {
            let hh = (s.local_hour as usize).min(23);
            trials[s.series_idx as usize][hh] += 1;
            if s.v_h > h {
                events[s.series_idx as usize][hh] += 1;
            }
        }
        events
            .iter()
            .zip(&trials)
            .map(|(e, t)| {
                let mut out = [0.0; 24];
                for i in 0..24 {
                    if t[i] > 0 {
                        out[i] = e[i] as f64 / t[i] as f64;
                    }
                }
                out
            })
            .collect()
    }

    /// Total events per series at threshold `h` (for top-N ranking).
    pub fn events_per_series(&self, h: f64) -> Vec<u32> {
        let mut counts = vec![0u32; self.series.len()];
        for s in &self.samples {
            if s.v_h > h {
                counts[s.series_idx as usize] += 1;
            }
        }
        counts
    }

    /// Servers labelled *congested*: more than `min_day_fraction` of
    /// their days contain at least one event at threshold `h` (the Fig. 8
    /// criterion, 10 %).
    pub fn congested_series(&self, h: f64, min_day_fraction: f64) -> Vec<bool> {
        // series → (days with events, days total). Ordered map: the
        // fold below is commutative, but canonical iteration keeps the
        // path determinism-lintable without a suppression.
        let mut day_events: std::collections::BTreeMap<(u32, i64), bool> =
            std::collections::BTreeMap::new();
        for s in &self.samples {
            let e = day_events
                .entry((s.series_idx, s.local_day))
                .or_insert(false);
            *e |= s.v_h > h;
        }
        let mut with_events = vec![0u32; self.series.len()];
        let mut total_days = vec![0u32; self.series.len()];
        for ((idx, _), had) in &day_events {
            total_days[*idx as usize] += 1;
            if *had {
                with_events[*idx as usize] += 1;
            }
        }
        with_events
            .iter()
            .zip(&total_days)
            .map(|(&e, &t)| t > 0 && e as f64 / t as f64 > min_day_fraction)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::world::World;

    fn analysis() -> (World, CongestionAnalysis) {
        let world = World::tiny(141);
        let res = Campaign::new(&world, CampaignConfig::small(141))
            .runner()
            .run()
            .unwrap();
        let mut db = res.db;
        let a = CongestionAnalysis::build(
            &mut db,
            &world,
            "download",
            &[("method".into(), "topo".into())],
        );
        (world, a)
    }

    #[test]
    fn analysis_extracts_days_and_samples() {
        let (_, a) = analysis();
        assert!(!a.series.is_empty());
        assert!(!a.day_vars.is_empty());
        assert!(!a.samples.is_empty());
        // 12 servers × 4 days.
        assert_eq!(a.samples.len(), 12 * 4 * 24);
        for d in &a.day_vars {
            assert!((0.0..=1.0).contains(&d.v), "v = {}", d.v);
            assert!(d.t_max >= d.t_min);
        }
        for s in &a.samples {
            assert!((0.0..=1.0).contains(&s.v_h));
            assert!(s.local_hour < 24);
        }
    }

    #[test]
    fn fractions_decrease_with_threshold() {
        let (_, a) = analysis();
        let mut prev_d = f64::INFINITY;
        let mut prev_h = f64::INFINITY;
        for i in 0..=10 {
            let h = i as f64 / 10.0;
            let fd = a.fraction_days_above(h);
            let fh = a.fraction_hours_above(h);
            assert!(fd <= prev_d && fh <= prev_h);
            prev_d = fd;
            prev_h = fh;
        }
        assert_eq!(a.fraction_days_above(1.0), 0.0);
        assert!(a.fraction_hours_above(0.0) > 0.0);
    }

    #[test]
    fn events_match_fraction() {
        let (_, a) = analysis();
        let h = 0.5;
        let events = a.events(h);
        let expected = (a.fraction_hours_above(h) * a.samples.len() as f64).round() as usize;
        assert_eq!(events.len(), expected);
        for e in &events {
            assert!(e.v_h > h);
        }
    }

    #[test]
    fn hourly_probability_shapes() {
        let (_, a) = analysis();
        let probs = a.hourly_probability(0.3);
        assert_eq!(probs.len(), a.series.len());
        for p in &probs {
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn congested_series_consistent_with_events() {
        let (_, a) = analysis();
        let congested = a.congested_series(0.5, 0.1);
        assert_eq!(congested.len(), a.series.len());
        let per_series = a.events_per_series(0.5);
        for (i, c) in congested.iter().enumerate() {
            if *c {
                assert!(per_series[i] > 0, "congested series must have events");
            }
        }
    }

    #[test]
    fn elbow_sweep_produces_curve() {
        let (_, a) = analysis();
        let (curve, _elbow) = a.elbow_threshold(20);
        assert_eq!(curve.len(), 21);
        assert!(curve[0].1 >= curve[20].1);
    }
}
