//! The data pipeline (§3.3): raw bucket objects → time-series database.
//!
//! Measurement VMs upload line-protocol batches to the storage bucket;
//! the analysis VM (same region as the bucket, to avoid inter-region
//! transfer charges) parses them and indexes the points into the
//! time-series store, the role InfluxDB plays in the paper.

use cloudsim::bucket::Bucket;
use simnet::routing::Tier;
use simnet::time::SimTime;
use speedtest::client::TestResult;
use tsdb::{Db, Point};

/// Converts one test result into its storable point.
pub fn result_to_point(
    r: &TestResult,
    region: &str,
    method: &str,
) -> Point {
    Point::new("speedtest", r.time.as_secs())
        .tag("region", region)
        .tag("server", &r.server_id)
        .tag(
            "tier",
            if r.tier_premium {
                Tier::Premium.label()
            } else {
                Tier::Standard.label()
            },
        )
        .tag("method", method)
        .field("download", r.download_mbps)
        .field("upload", r.upload_mbps)
        .field("latency", r.latency_ms)
        .field("dloss", r.download_loss)
        .field("uloss", r.upload_loss)
}

/// Uploads a batch of results as one bucket object
/// (`raw/<region>/<day>/<vm>.lp`).
pub fn upload_batch(
    bucket: &mut Bucket,
    region: &str,
    method: &str,
    vm: &str,
    results: &[TestResult],
    now: SimTime,
) -> String {
    let points: Vec<Point> = results
        .iter()
        .map(|r| result_to_point(r, region, method))
        .collect();
    let body = tsdb::line::encode_batch(&points);
    let key = format!("raw/{}/{:04}/{}.lp", region, now.day(), vm);
    bucket.put(key.clone(), body, now);
    key
}

/// Ingests every object under `raw/` into the database, returning how
/// many points were indexed. Malformed lines abort the object (counted
/// in `errors`) without poisoning the rest.
pub fn ingest(bucket: &Bucket, db: &mut Db) -> IngestStats {
    let mut stats = IngestStats::default();
    for key in bucket.list("raw/") {
        let obj = bucket.get(key).expect("listed keys exist");
        match tsdb::line::decode_batch(&obj.data) {
            Ok(points) => {
                stats.points += points.len() as u64;
                db.insert_batch(points);
                stats.objects += 1;
            }
            Err(_) => stats.errors += 1,
        }
    }
    stats
}

/// Ingestion counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Objects parsed.
    pub objects: u64,
    /// Points indexed.
    pub points: u64,
    /// Objects that failed to parse.
    pub errors: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(server: &str, t: u64, down: f64) -> TestResult {
        TestResult {
            server_id: server.to_string(),
            time: SimTime(t),
            tier_premium: true,
            latency_ms: 20.0,
            download_mbps: down,
            upload_mbps: 95.0,
            download_loss: 0.001,
            upload_loss: 0.0005,
            duration_s: 35.0,
        }
    }

    #[test]
    fn point_carries_all_fields_and_tags() {
        let p = result_to_point(&result("s1", 3600, 400.0), "us-west1", "topo");
        assert_eq!(p.tags["region"], "us-west1");
        assert_eq!(p.tags["server"], "s1");
        assert_eq!(p.tags["tier"], "premium");
        assert_eq!(p.tags["method"], "topo");
        assert_eq!(p.fields["download"], 400.0);
        assert_eq!(p.fields.len(), 5);
        assert_eq!(p.time, 3600);
    }

    #[test]
    fn upload_then_ingest_roundtrip() {
        let mut bucket = Bucket::new("us-west1");
        let results = vec![result("s1", 0, 100.0), result("s2", 3600, 200.0)];
        let key = upload_batch(
            &mut bucket,
            "us-west1",
            "topo",
            "vm0",
            &results,
            SimTime(3700),
        );
        assert!(key.starts_with("raw/us-west1/0000/"));
        let mut db = Db::new();
        let stats = ingest(&bucket, &mut db);
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.points, 2);
        assert_eq!(stats.errors, 0);
        assert_eq!(db.points_written, 2);
        assert_eq!(db.series_count(), 2);
    }

    #[test]
    fn malformed_objects_counted_not_fatal() {
        let mut bucket = Bucket::new("r");
        bucket.put("raw/bad.lp", "this is not line protocol".into(), SimTime(0));
        let mut good = Bucket::new("r");
        let _ = good; // silence unused in older toolchains
        upload_batch(
            &mut bucket,
            "us-east1",
            "topo",
            "vm0",
            &[result("s1", 0, 1.0)],
            SimTime(10),
        );
        let mut db = Db::new();
        let stats = ingest(&bucket, &mut db);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.objects, 1);
        assert_eq!(db.points_written, 1);
    }

    #[test]
    fn non_raw_objects_ignored() {
        let mut bucket = Bucket::new("r");
        bucket.put("processed/x", "whatever".into(), SimTime(0));
        let mut db = Db::new();
        let stats = ingest(&bucket, &mut db);
        assert_eq!(stats.objects + stats.errors, 0);
    }
}
