//! The data pipeline (§3.3): raw bucket objects → time-series database.
//!
//! Measurement VMs upload line-protocol batches to the storage bucket;
//! the analysis VM (same region as the bucket, to avoid inter-region
//! transfer charges) parses them and indexes the points into the
//! time-series store, the role InfluxDB plays in the paper.

use cloudsim::bucket::Bucket;
use simnet::routing::Tier;
use simnet::time::SimTime;
use speedtest::client::TestResult;
use tsdb::{Db, Point};

/// Converts one test result into its storable point.
pub fn result_to_point(r: &TestResult, region: &str, method: &str) -> Point {
    Point::new("speedtest", r.time.as_secs())
        .tag("region", region)
        .tag("server", &r.server_id)
        .tag(
            "tier",
            if r.tier_premium {
                Tier::Premium.label()
            } else {
                Tier::Standard.label()
            },
        )
        .tag("method", method)
        .field("download", r.download_mbps)
        .field("upload", r.upload_mbps)
        .field("latency", r.latency_ms)
        .field("dloss", r.download_loss)
        .field("uloss", r.upload_loss)
}

/// Uploads a batch of results as one bucket object
/// (`raw/<region>/<day>/<vm>.lp`).
pub fn upload_batch(
    bucket: &mut Bucket,
    region: &str,
    method: &str,
    vm: &str,
    results: &[TestResult],
    now: SimTime,
) -> String {
    let points: Vec<Point> = results
        .iter()
        .map(|r| result_to_point(r, region, method))
        .collect();
    let body = tsdb::line::encode_batch(&points);
    let key = format!("raw/{}/{:04}/{}.lp", region, now.day(), vm);
    bucket.put(key.clone(), body, now);
    key
}

/// Fault-aware batch upload with bounded sim-time retries.
///
/// Encodes the batch once and attempts the upload under the fault plan;
/// failed attempts back off per `policy` (each attempt re-draws
/// independently). Every failure is recorded in `log` under
/// `log_region`: a later success marks the fault recovered, exhausting
/// the budget marks it lost with one server-hour per batched result.
/// Returns the object key on success, `None` when the batch was lost.
/// With an empty plan this is exactly [`upload_batch`].
#[allow(clippy::too_many_arguments)]
pub fn upload_batch_resilient(
    bucket: &mut Bucket,
    region: &str,
    method: &str,
    vm: &str,
    results: &[TestResult],
    now: SimTime,
    plan: &faultsim::FaultPlan,
    policy: &faultsim::RetryPolicy,
    log: &mut faultsim::FaultLog,
    log_region: &str,
) -> Option<String> {
    let points: Vec<Point> = results
        .iter()
        .map(|r| result_to_point(r, region, method))
        .collect();
    let body = tsdb::line::encode_batch(&points);
    let key = format!("raw/{}/{:04}/{}.lp", region, now.day(), vm);
    let jitter_key = faultsim::name_key(vm) ^ now.day();
    let mut fault_id = None;
    for attempt in 0..policy.max_attempts {
        match bucket.try_put(key.clone(), body.clone(), now, plan, vm, now.day(), attempt) {
            Ok(()) => {
                if let Some(id) = fault_id {
                    let recovered_at = now.as_secs() + policy.total_delay(attempt + 1, jitter_key);
                    log.mark_recovered(id, attempt, recovered_at);
                }
                return Some(key);
            }
            Err(_) if attempt == 0 => {
                fault_id = Some(log.record(
                    now.as_secs(),
                    faultsim::FaultKind::UploadFailure,
                    log_region,
                    vm,
                    format!("day {} batch", now.day()),
                ));
            }
            Err(_) => {}
        }
    }
    if let Some(id) = fault_id {
        log.mark_lost(id, results.len() as u64);
    }
    None
}

/// One decoded (or rejected) raw object: the CPU-bound half of ingest,
/// separated out so parallel workers can parse their own uploads while
/// the indexing half stays a serial, canonically-ordered merge.
#[derive(Debug)]
pub struct DecodedObject {
    /// Bucket key of the object.
    pub key: String,
    /// Parsed points, or the 1-based line number and parse error that
    /// aborted the object.
    pub result: Result<Vec<Point>, (usize, tsdb::line::ParseError)>,
}

/// Parses every object under `raw/` without touching the database.
/// Output follows bucket listing order (lexicographic keys).
pub fn decode_bucket(bucket: &Bucket) -> Vec<DecodedObject> {
    bucket
        .list("raw/")
        .into_iter()
        .map(|key| {
            let obj = bucket.get(key).expect("listed keys exist");
            DecodedObject {
                key: key.to_string(),
                result: tsdb::line::decode_batch_lines(&obj.data),
            }
        })
        .collect()
}

/// Indexes pre-decoded objects into the database, in the order given.
/// Callers merging per-worker decode output must sort by key first —
/// upload keys are unique per VM, so that reproduces the listing order
/// a serial [`ingest`] of the combined bucket would see.
pub fn ingest_decoded(
    objects: impl IntoIterator<Item = DecodedObject>,
    db: &mut Db,
) -> IngestStats {
    let mut stats = IngestStats::default();
    for obj in objects {
        match obj.result {
            Ok(points) => {
                stats.points += points.len() as u64;
                db.insert_batch(points);
                stats.objects += 1;
            }
            Err((line, e)) => {
                stats.errors += 1;
                let detail = format!("{}: line {line}: {e}", obj.key);
                #[cfg(debug_assertions)]
                eprintln!("ingest: skipping malformed object {detail}");
                stats.error_objects.push(detail);
            }
        }
    }
    stats
}

/// Ingests every object under `raw/` into the database, returning how
/// many points were indexed. Malformed lines abort the object (counted
/// in `errors`, with the offending key and line recorded in
/// [`IngestStats::error_objects`]) without poisoning the rest.
pub fn ingest(bucket: &Bucket, db: &mut Db) -> IngestStats {
    ingest_decoded(decode_bucket(bucket), db)
}

/// Ingestion counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IngestStats {
    /// Objects parsed.
    pub objects: u64,
    /// Points indexed.
    pub points: u64,
    /// Objects that failed to parse.
    pub errors: u64,
    /// One `"<object key>: line <n>: <error>"` entry per malformed
    /// object, in bucket listing order (parallel to `errors`).
    pub error_objects: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(server: &str, t: u64, down: f64) -> TestResult {
        TestResult {
            server_id: server.to_string(),
            time: SimTime(t),
            tier_premium: true,
            latency_ms: 20.0,
            download_mbps: down,
            upload_mbps: 95.0,
            download_loss: 0.001,
            upload_loss: 0.0005,
            duration_s: 35.0,
        }
    }

    #[test]
    fn point_carries_all_fields_and_tags() {
        let p = result_to_point(&result("s1", 3600, 400.0), "us-west1", "topo");
        assert_eq!(p.tags["region"], "us-west1");
        assert_eq!(p.tags["server"], "s1");
        assert_eq!(p.tags["tier"], "premium");
        assert_eq!(p.tags["method"], "topo");
        assert_eq!(p.fields["download"], 400.0);
        assert_eq!(p.fields.len(), 5);
        assert_eq!(p.time, 3600);
    }

    #[test]
    fn upload_then_ingest_roundtrip() {
        let mut bucket = Bucket::new("us-west1");
        let results = vec![result("s1", 0, 100.0), result("s2", 3600, 200.0)];
        let key = upload_batch(
            &mut bucket,
            "us-west1",
            "topo",
            "vm0",
            &results,
            SimTime(3700),
        );
        assert!(key.starts_with("raw/us-west1/0000/"));
        let mut db = Db::new();
        let stats = ingest(&bucket, &mut db);
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.points, 2);
        assert_eq!(stats.errors, 0);
        assert_eq!(db.points_written, 2);
        assert_eq!(db.series_count(), 2);
    }

    #[test]
    fn resilient_upload_matches_plain_with_empty_plan() {
        let results = vec![result("s1", 0, 100.0), result("s2", 3600, 200.0)];
        let mut plain = Bucket::new("us-west1");
        upload_batch(
            &mut plain,
            "us-west1",
            "topo",
            "vm0",
            &results,
            SimTime(3700),
        );
        let mut resilient = Bucket::new("us-west1");
        let mut log = faultsim::FaultLog::new();
        let key = upload_batch_resilient(
            &mut resilient,
            "us-west1",
            "topo",
            "vm0",
            &results,
            SimTime(3700),
            &faultsim::FaultPlan::none(),
            &faultsim::RetryPolicy::upload(),
            &mut log,
            "us-west1",
        )
        .unwrap();
        assert!(log.is_empty());
        let a = plain.get(&key).unwrap();
        let b = resilient.get(&key).unwrap();
        assert_eq!(a.data, b.data);
        assert_eq!(a.uploaded, b.uploaded);
    }

    #[test]
    fn resilient_upload_retries_then_loses() {
        let results = vec![result("s1", 0, 100.0)];
        // Certain failure: budget exhausted, batch lost, loss recorded.
        let mut plan = faultsim::FaultPlan::uniform(1, 0.0);
        plan.rates.upload_failure = 1.0;
        let mut bucket = Bucket::new("r");
        let mut log = faultsim::FaultLog::new();
        let key = upload_batch_resilient(
            &mut bucket,
            "us-east1",
            "topo",
            "vm0",
            &results,
            SimTime(100_000),
            &plan,
            &faultsim::RetryPolicy::upload(),
            &mut log,
            "us-east1",
        );
        assert!(key.is_none());
        assert!(bucket.is_empty());
        assert_eq!(log.summary().lost_s_hours, 1);

        // Moderate rate: over many days, some uploads fail at attempt 0
        // but recover on retry.
        let mut plan = faultsim::FaultPlan::uniform(3, 0.0);
        plan.rates.upload_failure = 0.3;
        let mut bucket = Bucket::new("r");
        let mut log = faultsim::FaultLog::new();
        let mut stored = 0;
        for day in 0..200u64 {
            let ok = upload_batch_resilient(
                &mut bucket,
                "us-east1",
                "topo",
                "vm0",
                &results,
                SimTime(day * 86_400),
                &plan,
                &faultsim::RetryPolicy::upload(),
                &mut log,
                "us-east1",
            );
            if ok.is_some() {
                stored += 1;
            }
        }
        let s = log.summary();
        assert!(s.recovered > 0, "some uploads should recover: {s:?}");
        assert_eq!(stored, 200 - s.lost);
    }

    #[test]
    fn malformed_objects_counted_not_fatal() {
        let mut bucket = Bucket::new("r");
        bucket.put("raw/bad.lp", "this is not line protocol".into(), SimTime(0));
        upload_batch(
            &mut bucket,
            "us-east1",
            "topo",
            "vm0",
            &[result("s1", 0, 1.0)],
            SimTime(10),
        );
        let mut db = Db::new();
        let stats = ingest(&bucket, &mut db);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.objects, 1);
        assert_eq!(db.points_written, 1);
        // The malformed object is named, with the offending line.
        assert_eq!(stats.error_objects.len(), 1);
        assert!(
            stats.error_objects[0].starts_with("raw/bad.lp: line 1:"),
            "{:?}",
            stats.error_objects
        );
    }

    #[test]
    fn each_malformed_object_surfaced_separately() {
        let mut bucket = Bucket::new("r");
        bucket.put("raw/one.lp", "m f=x 0".into(), SimTime(0));
        bucket.put("raw/two.lp", "m f=1 0\nnot a line".into(), SimTime(1));
        let mut db = Db::new();
        let stats = ingest(&bucket, &mut db);
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.error_objects.len(), 2);
        assert!(stats
            .error_objects
            .iter()
            .any(|e| e.contains("raw/one.lp: line 1")));
        assert!(stats
            .error_objects
            .iter()
            .any(|e| e.contains("raw/two.lp: line 2")));
    }

    #[test]
    fn sharded_decode_merge_matches_direct_ingest() {
        // Two VM-local buckets, decoded separately (as parallel workers
        // do), merged by key: identical stats and database state to a
        // serial ingest of the combined bucket.
        let mut vm0 = Bucket::new("r");
        upload_batch(
            &mut vm0,
            "us-east1",
            "topo",
            "vm0",
            &[result("s1", 0, 1.0), result("s2", 3600, 2.0)],
            SimTime(90_000),
        );
        vm0.put("raw/us-east1/0000/vm0-bad.lp", "nope".into(), SimTime(0));
        let mut vm1 = Bucket::new("r");
        upload_batch(
            &mut vm1,
            "us-east1",
            "topo",
            "vm1",
            &[result("s3", 7200, 3.0)],
            SimTime(90_000),
        );

        let mut decoded: Vec<DecodedObject> = decode_bucket(&vm1);
        decoded.extend(decode_bucket(&vm0));
        decoded.sort_by(|a, b| a.key.cmp(&b.key));
        let mut sharded_db = Db::new();
        let sharded = ingest_decoded(decoded, &mut sharded_db);

        let mut combined = Bucket::new("r");
        combined.absorb(vm0);
        combined.absorb(vm1);
        let mut serial_db = Db::new();
        let serial = ingest(&combined, &mut serial_db);

        assert_eq!(sharded, serial);
        assert_eq!(serial.objects, 2);
        assert_eq!(serial.errors, 1);
        assert_eq!(sharded_db.points_written, serial_db.points_written);
        assert_eq!(sharded_db.series_count(), serial_db.series_count());
    }

    #[test]
    fn non_raw_objects_ignored() {
        let mut bucket = Bucket::new("r");
        bucket.put("processed/x", "whatever".into(), SimTime(0));
        let mut db = Db::new();
        let stats = ingest(&bucket, &mut db);
        assert_eq!(stats.objects + stats.errors, 0);
    }
}
