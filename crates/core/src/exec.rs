//! The deterministic worker pool behind `--jobs N`.
//!
//! Campaign parallelism is *scatter/gather*: tasks are pure functions of
//! their index (every unit carries its own seeded RNG streams, so no
//! task observes another's side effects), workers pull indices from a
//! shared atomic counter, and results land in their task's slot. The
//! gather side therefore sees results in canonical task order no matter
//! which worker finished first — scheduling can change *when* a task
//! runs, never *what* it computes or where its output ends up.

use clasp_obs::MetricsRegistry;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `task(0..n)` across `jobs` worker threads and returns the
/// results in task-index order.
///
/// `jobs <= 1` (or a single task) runs inline on the caller's thread
/// with no pool at all — the serial path stays the serial path. Worker
/// threads are scoped, so `task` may borrow from the caller's stack.
///
/// # Panics
/// A panicking task propagates to the caller once the scope joins,
/// re-raised as `"scatter task <i> panicked: <message>"` for the
/// *lowest* panicking task index — the index a serial run would have
/// hit first — regardless of which worker observed its panic first.
pub fn scatter<R, F>(jobs: usize, n: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    scatter_with(jobs, n, || (), |(), i| task(i))
}

/// What the pool records about a panicking task: its index and the
/// panic message (downcast from the payload when it was a string).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`scatter`] with per-worker scratch state: every worker calls `init`
/// once on its own thread and hands the value to each task it runs.
///
/// This exists for memoization caches (the campaign's route-resolution
/// session) that are expensive to rebuild per task but must never be
/// shared across threads. Tasks therefore MUST stay pure with respect
/// to the context — reusing a warm context may only skip recomputation,
/// never change a result — or determinism is lost to scheduling.
pub fn scatter_with<C, R, I, F>(jobs: usize, n: usize, init: I, task: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> R + Sync,
{
    if jobs <= 1 || n <= 1 {
        let mut ctx = init();
        return (0..n).map(|i| task(&mut ctx, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let failed: Mutex<Option<(usize, String)>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| {
                let mut ctx = init();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match std::panic::catch_unwind(AssertUnwindSafe(|| task(&mut ctx, i))) {
                        Ok(r) => *slots[i].lock().expect("result slot") = Some(r),
                        Err(payload) => {
                            stop.store(true, Ordering::Relaxed);
                            let msg = panic_message(payload);
                            let mut f = failed.lock().expect("failure slot");
                            // Keep the lowest index: the failure a
                            // serial run would have surfaced.
                            if f.as_ref().is_none_or(|(j, _)| i < *j) {
                                *f = Some((i, msg));
                            }
                            break;
                        }
                    }
                }
            });
        }
    });
    if let Some((i, msg)) = failed.into_inner().expect("failure slot") {
        panic!("scatter task {i} panicked: {msg}");
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every task index was claimed and ran")
        })
        .collect()
}

/// [`scatter_with`] plus a private [`MetricsRegistry`] shard per
/// worker, returned in worker-index order alongside the results.
///
/// Shards must only accumulate counters and histograms (u64 counts):
/// which tasks land in which shard depends on scheduling, but u64 sums
/// are commutative and associative, so merging the shards — in any
/// order — yields totals that are bit-identical across `jobs` values.
pub fn scatter_metered<C, R, I, F>(
    jobs: usize,
    n: usize,
    init: I,
    task: F,
) -> (Vec<R>, Vec<MetricsRegistry>)
where
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, &mut MetricsRegistry, usize) -> R + Sync,
{
    let workers = if jobs <= 1 || n <= 1 { 1 } else { jobs.min(n) };
    let shards: Vec<Mutex<MetricsRegistry>> = (0..workers)
        .map(|_| Mutex::new(MetricsRegistry::new()))
        .collect();
    let worker_seq = AtomicUsize::new(0);
    let out = scatter_with(
        jobs,
        n,
        || {
            let w = worker_seq.fetch_add(1, Ordering::Relaxed);
            (init(), w)
        },
        |(ctx, w), i| {
            let mut shard = shards[*w].lock().expect("metric shard");
            task(ctx, &mut shard, i)
        },
    );
    let shards = shards
        .into_iter()
        .map(|m| m.into_inner().expect("metric shard"))
        .collect();
    (out, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_task_order_regardless_of_jobs() {
        let serial = scatter(1, 17, |i| i * i);
        for jobs in [2, 4, 8, 32] {
            assert_eq!(scatter(jobs, 17, |i| i * i), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_task() {
        assert_eq!(scatter::<usize, _>(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(scatter(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_jobs_than_tasks() {
        assert_eq!(scatter(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn workers_share_borrowed_state() {
        let base = [10u64, 20, 30, 40, 50];
        let doubled = scatter(3, base.len(), |i| base[i] * 2);
        assert_eq!(doubled, vec![20, 40, 60, 80, 100]);
    }

    #[test]
    fn context_initialized_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let out = scatter_with(
            3,
            20,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |ctx, i| {
                *ctx += 1;
                i
            },
        );
        assert_eq!(out, (0..20).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        scatter(8, 100, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_panic_reports_failing_task_index() {
        let caught = std::panic::catch_unwind(|| {
            scatter(4, 32, |i| {
                if i == 13 {
                    panic!("boom at {i}");
                }
                i
            })
        })
        .expect_err("scatter must propagate the panic");
        let msg = caught
            .downcast_ref::<String>()
            .expect("formatted message")
            .clone();
        assert!(msg.contains("scatter task 13 panicked"), "{msg}");
        assert!(msg.contains("boom at 13"), "{msg}");
    }

    #[test]
    fn lowest_panicking_index_wins() {
        // Several tasks panic; the surfaced index must be the smallest,
        // matching what a serial run would have hit first.
        let caught = std::panic::catch_unwind(|| {
            scatter(8, 64, |i| {
                if i % 7 == 5 {
                    panic!("bad task");
                }
                i
            })
        })
        .expect_err("scatter must propagate the panic");
        let msg = caught.downcast_ref::<String>().unwrap().clone();
        let reported: usize = msg
            .strip_prefix("scatter task ")
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("index in message");
        assert!(reported % 7 == 5, "{msg}");
        // The scatter claims indices in order and stops on failure, so
        // the first panicking index (5) is observed before any higher
        // one can be the *only* record.
        assert_eq!(reported, 5, "{msg}");
    }

    #[test]
    fn metered_shards_merge_identically_across_jobs() {
        let totals = |jobs: usize| {
            let (out, shards) = scatter_metered(
                jobs,
                40,
                || (),
                |(), m, i| {
                    m.inc("tasks", 1);
                    m.observe("idx", &[10.0, 20.0, 30.0], i as f64);
                    i * 2
                },
            );
            assert_eq!(out, (0..40).map(|i| i * 2).collect::<Vec<_>>());
            let mut merged = MetricsRegistry::new();
            for s in &shards {
                merged.merge(s);
            }
            (shards.len(), merged)
        };
        let (n1, serial) = totals(1);
        assert_eq!(n1, 1);
        for jobs in [2, 4, 8] {
            let (nw, merged) = totals(jobs);
            assert!(nw <= jobs);
            assert_eq!(merged, serial, "jobs={jobs}");
        }
        assert_eq!(serial.counter("tasks"), 40);
        assert_eq!(serial.histogram("idx").unwrap().total(), 40);
    }
}
