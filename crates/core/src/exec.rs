//! The deterministic worker pool behind `--jobs N`.
//!
//! Campaign parallelism is *scatter/gather*: tasks are pure functions of
//! their index (every unit carries its own seeded RNG streams, so no
//! task observes another's side effects), workers pull indices from a
//! shared atomic counter, and results land in their task's slot. The
//! gather side therefore sees results in canonical task order no matter
//! which worker finished first — scheduling can change *when* a task
//! runs, never *what* it computes or where its output ends up.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `task(0..n)` across `jobs` worker threads and returns the
/// results in task-index order.
///
/// `jobs <= 1` (or a single task) runs inline on the caller's thread
/// with no pool at all — the serial path stays the serial path. Worker
/// threads are scoped, so `task` may borrow from the caller's stack.
///
/// # Panics
/// A panicking task propagates to the caller once the scope joins.
pub fn scatter<R, F>(jobs: usize, n: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    scatter_with(jobs, n, || (), |(), i| task(i))
}

/// [`scatter`] with per-worker scratch state: every worker calls `init`
/// once on its own thread and hands the value to each task it runs.
///
/// This exists for memoization caches (the campaign's route-resolution
/// session) that are expensive to rebuild per task but must never be
/// shared across threads. Tasks therefore MUST stay pure with respect
/// to the context — reusing a warm context may only skip recomputation,
/// never change a result — or determinism is lost to scheduling.
pub fn scatter_with<C, R, I, F>(jobs: usize, n: usize, init: I, task: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> R + Sync,
{
    if jobs <= 1 || n <= 1 {
        let mut ctx = init();
        return (0..n).map(|i| task(&mut ctx, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| {
                let mut ctx = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = task(&mut ctx, i);
                    *slots[i].lock().expect("result slot") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every task index was claimed and ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_task_order_regardless_of_jobs() {
        let serial = scatter(1, 17, |i| i * i);
        for jobs in [2, 4, 8, 32] {
            assert_eq!(scatter(jobs, 17, |i| i * i), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_task() {
        assert_eq!(scatter::<usize, _>(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(scatter(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_jobs_than_tasks() {
        assert_eq!(scatter(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn workers_share_borrowed_state() {
        let base = [10u64, 20, 30, 40, 50];
        let doubled = scatter(3, base.len(), |i| base[i] * 2);
        assert_eq!(doubled, vec![20, 40, 60, 80, 100]);
    }

    #[test]
    fn context_initialized_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let out = scatter_with(
            3,
            20,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |ctx, i| {
                *ctx += 1;
                i
            },
        );
        assert_eq!(out, (0..20).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        scatter(8, 100, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
