//! CLASP — the CLoud-based Applications Speed Platform.
//!
//! This crate is the paper's primary contribution: a measurement platform
//! that orchestrates cloud VMs to run longitudinal throughput tests
//! against Internet speed-test servers, and the analysis that detects
//! diurnal congestion in the results.
//!
//! The pieces, mapped to the paper:
//!
//! * [`world`] — the shared environment: topology, server registry, load
//!   model, routing (the substitute for "the Internet + GCP");
//! * [`select`] — §3.1's two server-selection methods:
//!   [`select::topology`] (bdrmap pilot scan → group servers by border
//!   link → pick one per link) and [`select::differential`]
//!   (Speedchecker-style tier-latency pre-test → candidate tuples →
//!   server choice);
//! * [`plan`] — §3.2's deployment planning: the 17-tests/hour budget, VM
//!   counts per region, zone spreading;
//! * [`campaign`] — the longitudinal measurement loop: hourly cron with
//!   randomized order, speed tests, traceroutes, bucket uploads,
//!   billing;
//! * [`exec`] — the deterministic worker pool behind `--jobs N`:
//!   campaign units scatter across scoped threads and gather in
//!   canonical order, bit-identical to the serial run;
//! * [`runner`] — the unified execution entrypoint: one builder for
//!   fresh/resumed, batch/streaming, serial/parallel, observed or not;
//! * [`pipeline`] — §3.3's processing: raw bucket objects → time-series
//!   database;
//! * [`congestion`] — §3.3's detection method: normalized peak-to-trough
//!   variability `V(s,d)`, the elbow-chosen threshold `H`, hourly labels
//!   `V_H(s,t)`, congestion events and hour-of-day probabilities;
//! * [`tiercmp`] — §4.1's premium-vs-standard comparison `Δ_m(S,t)`;
//! * [`congestion_ext`] — the §5 future-work detectors (autocorrelation
//!   and hidden-Markov-model based), implemented and compared against
//!   the threshold method;
//! * [`reselect`] — the §5 future-work automatic re-selection: re-run
//!   the pilot scan against a churned server registry and compute the
//!   update plan;
//! * [`diag`] — congestion localization and mitigation ranking, scored
//!   against the simulator's per-link ground truth: fault-injection
//!   scenarios, ranked border links per window (precision@1 / MRR), and
//!   predicted-vs-replayed mitigation actions (see DESIGN.md §14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod congestion;
pub mod congestion_ext;
pub mod diag;
pub mod exec;
pub mod pipeline;
pub mod plan;
pub mod reselect;
pub mod runner;
pub mod select;
pub mod tiercmp;
pub mod world;

pub use campaign::{Campaign, CampaignConfig, CampaignResult};
pub use clasp_obs::Observer;
pub use congestion::{CongestionAnalysis, CongestionEvent, DayVariability};
pub use runner::Runner;
pub use world::World;
