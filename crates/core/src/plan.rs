//! Deployment planning (§3.2).
//!
//! "CLASP determines the number of measurement VMs to deploy in each
//! cloud region and the number of tests each VM will perform to achieve
//! measurement granularity of one throughput test per hour per test
//! server." One VM runs at most 17 tests per hour (120 s per test, 20 min
//! of traceroutes, 5 min of uploads); VMs spread across availability
//! zones.

use cloudsim::cron::CronSchedule;
use cloudsim::region::Region;
use cloudsim::vm::{CloudApi, MachineType, TrafficShaping};
use simnet::routing::Tier;
use simnet::time::SimTime;

/// The deployment plan for one region.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    /// Region planned for.
    pub region: &'static str,
    /// Measurement VMs to create.
    pub n_vms: usize,
    /// Server ids assigned to each VM (round-robin).
    pub assignments: Vec<Vec<String>>,
}

/// Plans one region's deployment for a server list.
pub fn plan_region(
    region: &'static Region,
    servers: &[String],
    cron: &CronSchedule,
) -> DeploymentPlan {
    let n_vms = cron.vms_needed(servers.len());
    let assignments = if n_vms == 0 {
        Vec::new()
    } else {
        cron.assign(
            &servers.iter().map(String::as_str).collect::<Vec<_>>(),
            n_vms,
        )
        .into_iter()
        .map(|v| v.into_iter().map(str::to_string).collect())
        .collect()
    };
    DeploymentPlan {
        region: region.name,
        n_vms,
        assignments,
    }
}

/// Materialises a plan: creates the VMs through the cloud API. Returns
/// the VM indices, one per assignment.
pub fn deploy(
    api: &mut CloudApi<'_>,
    region: &'static Region,
    plan: &DeploymentPlan,
    tier: Tier,
    now: SimTime,
) -> Vec<usize> {
    (0..plan.n_vms)
        .map(|i| {
            api.create_vm(
                region,
                i as u16,
                MachineType::N1Standard2,
                tier,
                TrafficShaping::clasp_default(),
                now,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim::region::REGIONS;

    fn servers(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("srv-{i}")).collect()
    }

    #[test]
    fn plan_matches_budget_math() {
        let cron = CronSchedule::new(1);
        let p = plan_region(&REGIONS[0], &servers(106), &cron);
        assert_eq!(p.n_vms, 7); // ceil(106/17)
        let total: usize = p.assignments.iter().map(Vec::len).sum();
        assert_eq!(total, 106);
        assert!(p.assignments.iter().all(|a| a.len() <= 17));
    }

    #[test]
    fn empty_server_list_needs_no_vms() {
        let cron = CronSchedule::new(1);
        let p = plan_region(&REGIONS[1], &servers(0), &cron);
        assert_eq!(p.n_vms, 0);
        assert!(p.assignments.is_empty());
    }

    #[test]
    fn deploy_creates_vms_across_zones() {
        let topo = simnet::topology::Topology::generate(simnet::topology::TopologyConfig::tiny(1));
        let mut api = CloudApi::new(&topo);
        let cron = CronSchedule::new(1);
        let plan = plan_region(&REGIONS[0], &servers(40), &cron);
        let vms = deploy(&mut api, &REGIONS[0], &plan, Tier::Premium, SimTime::EPOCH);
        assert_eq!(vms.len(), 3); // ceil(40/17)
        let zones: std::collections::BTreeSet<&str> =
            vms.iter().map(|&i| api.vms[i].zone.as_str()).collect();
        assert!(zones.len() >= 2, "VMs spread across zones");
    }
}
