//! Server selection (§3.1): the paper's two methods.

pub mod differential;
pub mod topology;

pub use differential::{DifferentialSelection, LatencyClass};
pub use topology::TopologySelection;
