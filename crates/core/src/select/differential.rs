//! Differential-based server selection (§3.1, method 2).
//!
//! The pre-test measures latency from >10k edge vantage points to VMs on
//! both network tiers, groups samples by `<city, AS, region, tier>`,
//! keeps tuples with more than 100 measurements, and computes per-tuple
//! medians. Candidate tuples are those where the tiers differ by ≥ 50 ms
//! in absolute value ("significantly different") or by ≤ 10 ms
//! ("comparable"). Speed-test servers in the same `<city, AS>` as a
//! candidate tuple are eligible; 15–17 are chosen per region,
//! "heuristically maximizing geographic and network coverage".

use crate::world::World;
use clasp_stats::median;
use simnet::geo::CityId;
use simnet::perf::PerfModel;
use simnet::routing::{Paths, Tier};
use simnet::time::SimTime;
use simnet::topology::AsId;
use speedtest::vantage::VantageSet;
use std::collections::{BTreeMap, HashMap};

/// Latency relation between the tiers for a candidate tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyClass {
    /// |Δ| ≤ 10 ms.
    Comparable,
    /// Premium at least 50 ms lower.
    PremiumLower,
    /// Standard at least 50 ms lower.
    StandardLower,
}

impl LatencyClass {
    /// Display label (used in Fig. 5 legends).
    pub fn label(&self) -> &'static str {
        match self {
            LatencyClass::Comparable => "comparable",
            LatencyClass::PremiumLower => "premium-lower",
            LatencyClass::StandardLower => "standard-lower",
        }
    }
}

/// One selected server with its pre-test class.
#[derive(Debug, Clone)]
pub struct DifferentialPick {
    /// Server id.
    pub server_id: String,
    /// Latency class of its `<city, AS>` tuple.
    pub class: LatencyClass,
    /// Median premium latency of the tuple, ms.
    pub premium_ms: f64,
    /// Median standard latency of the tuple, ms.
    pub standard_ms: f64,
}

/// Result of the differential selection for one region.
#[derive(Debug, Clone)]
pub struct DifferentialSelection {
    /// Region name.
    pub region: &'static str,
    /// Tuples with enough samples.
    pub tuples_considered: usize,
    /// Tuples matching the candidate conditions.
    pub candidate_tuples: usize,
    /// The selected servers.
    pub picks: Vec<DifferentialPick>,
}

/// Pre-test parameters.
#[derive(Debug, Clone, Copy)]
pub struct PreTestConfig {
    /// Probes per VP per tier (the paper requires >100 per tuple; tuples
    /// aggregate several VPs, so this times VPs-per-tuple crosses 100).
    pub probes_per_vp: u32,
    /// Minimum samples for a tuple to be considered.
    pub min_samples: usize,
    /// Candidate threshold: "significantly different", ms.
    pub big_delta_ms: f64,
    /// Candidate threshold: "comparable", ms.
    pub small_delta_ms: f64,
    /// Servers to pick.
    pub picks: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for PreTestConfig {
    fn default() -> Self {
        Self {
            probes_per_vp: 120,
            min_samples: 100,
            big_delta_ms: 50.0,
            small_delta_ms: 10.0,
            picks: 17,
            seed: 0xd1ff,
        }
    }
}

/// Runs the differential selection for one region.
pub fn select(
    world: &World,
    paths: &Paths<'_>,
    perf: &PerfModel<'_>,
    region_name: &'static str,
    region_city: CityId,
    cfg: &PreTestConfig,
) -> DifferentialSelection {
    let topo = &world.topo;
    let region_country = topo.cities.get(region_city).country;
    let vm_ip = topo.vm_ip(region_city, 1);
    let vps = VantageSet::generate(topo, cfg.seed);
    let samples = vps.probe_tiers(
        paths,
        perf,
        region_city,
        vm_ip,
        SimTime::EPOCH,
        cfg.probes_per_vp,
        cfg.seed,
    );

    // Group by <city, AS, tier> (region is fixed here). Ordered map:
    // the tuple emission order below is observable downstream.
    let mut grouped: BTreeMap<(AsId, CityId, bool), Vec<f64>> = BTreeMap::new();
    for s in &samples {
        let vp = &vps.vps[s.vp as usize];
        grouped
            .entry((vp.as_id, vp.city, s.tier == Tier::Premium))
            .or_default()
            .push(s.rtt_ms);
    }

    // Per-tuple medians where both tiers have enough samples.
    let mut tuples: Vec<(AsId, CityId, f64, f64)> = Vec::new();
    let mut seen: std::collections::BTreeSet<(u32, u16)> = std::collections::BTreeSet::new();
    for (&(as_id, city, premium), rtts) in &grouped {
        if !premium || !seen.insert((as_id.0, city.0)) {
            continue;
        }
        let std_key = (as_id, city, false);
        let Some(std_rtts) = grouped.get(&std_key) else {
            continue;
        };
        if rtts.len() < cfg.min_samples || std_rtts.len() < cfg.min_samples {
            continue;
        }
        let prem_med = median(rtts).expect("non-empty");
        let std_med = median(std_rtts).expect("non-empty");
        tuples.push((as_id, city, prem_med, std_med));
    }
    let tuples_considered = tuples.len();

    // Candidate conditions.
    let classify = |prem: f64, std: f64| -> Option<LatencyClass> {
        let delta = std - prem;
        if delta.abs() <= cfg.small_delta_ms {
            Some(LatencyClass::Comparable)
        } else if delta >= cfg.big_delta_ms {
            Some(LatencyClass::PremiumLower)
        } else if -delta >= cfg.big_delta_ms {
            Some(LatencyClass::StandardLower)
        } else {
            None
        }
    };
    let mut candidates: Vec<(AsId, CityId, LatencyClass, f64, f64)> = tuples
        .into_iter()
        .filter_map(|(a, c, p, s)| classify(p, s).map(|cl| (a, c, cl, p, s)))
        .collect();
    let candidate_tuples = candidates.len();

    // Deterministic order, then greedy coverage maximisation with a
    // per-class quota: the paper's selection deliberately includes all
    // three latency classes (Fig. 5 colours by them), so no single class
    // may take more than its share plus the unfilled remainder.
    candidates.sort_by_key(|(a, c, _, _, _)| (a.0, c.0));
    let quota = cfg.picks.div_ceil(3) + 1;
    let mut class_counts: HashMap<LatencyClass, usize> = HashMap::new();
    let mut picks: Vec<DifferentialPick> = Vec::new();
    let mut seen_cities: std::collections::BTreeSet<u16> = Default::default();
    let mut seen_ases: std::collections::BTreeSet<u32> = Default::default();
    let mut seen_countries: std::collections::BTreeSet<&str> = Default::default();
    let mut remaining = candidates.clone();
    while picks.len() < cfg.picks && !remaining.is_empty() {
        // Score: new country (4) + new city (2) + new AS (1); classes
        // over quota are heavily penalised but not excluded (so the
        // selection still fills up when one class dominates candidates).
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, (a, c, class, _, _))| {
                let country = topo.cities.get(*c).country;
                let mut score: i32 = 0;
                if class_counts.get(class).copied().unwrap_or(0) >= quota {
                    score -= 20;
                }
                // From a non-US region, US servers are redundant with
                // the US campaigns (the paper's europe-west1 picks span
                // Europe, India and Australia — Fig. 7f).
                if country == "US" && region_country != "US" {
                    score -= 15;
                }
                if !seen_countries.contains(country) {
                    score += 4;
                }
                if !seen_cities.contains(&c.0) {
                    score += 2;
                }
                if !seen_ases.contains(&a.0) {
                    score += 1;
                }
                (i, score)
            })
            .max_by_key(|&(i, score)| (score, std::cmp::Reverse(i)))
            .expect("non-empty");
        let (as_id, city, class, prem, std_) = remaining.remove(best_idx);
        // A candidate tuple is only usable if a speed-test server exists
        // in the same <city, AS>.
        let server = world
            .registry
            .servers
            .iter()
            .find(|s| s.as_id == as_id && s.city == city);
        let Some(server) = server else { continue };
        if picks.iter().any(|p| p.server_id == server.id) {
            continue;
        }
        *class_counts.entry(class).or_insert(0) += 1;
        seen_cities.insert(city.0);
        seen_ases.insert(as_id.0);
        seen_countries.insert(topo.cities.get(city).country);
        picks.push(DifferentialPick {
            server_id: server.id.clone(),
            class,
            premium_ms: prem,
            standard_ms: std_,
        });
    }

    DifferentialSelection {
        region: region_name,
        tuples_considered,
        candidate_tuples,
        picks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64) -> (World, DifferentialSelection) {
        let world = World::tiny(seed);
        let sel = {
            let session = world.session();
            let region = world.topo.cities.by_name("St. Ghislain").unwrap();
            select(
                &world,
                &session.paths,
                &session.perf,
                "europe-west1",
                region,
                &PreTestConfig {
                    probes_per_vp: 110,
                    ..PreTestConfig::default()
                },
            )
        };
        (world, sel)
    }

    #[test]
    fn pretest_finds_tuples_and_candidates() {
        let (_, sel) = run(111);
        assert!(sel.tuples_considered > 10, "{}", sel.tuples_considered);
        assert!(sel.candidate_tuples > 0);
        assert!(sel.candidate_tuples <= sel.tuples_considered);
    }

    #[test]
    fn picks_have_servers_and_classes() {
        let (world, sel) = run(112);
        assert!(!sel.picks.is_empty());
        assert!(sel.picks.len() <= 17);
        for p in &sel.picks {
            assert!(world.registry.by_id(&p.server_id).is_some());
            match p.class {
                LatencyClass::Comparable => {
                    assert!((p.standard_ms - p.premium_ms).abs() <= 10.0);
                }
                LatencyClass::PremiumLower => {
                    assert!(p.standard_ms - p.premium_ms >= 50.0);
                }
                LatencyClass::StandardLower => {
                    assert!(p.premium_ms - p.standard_ms >= 50.0);
                }
            }
        }
    }

    #[test]
    fn picks_are_distinct_servers() {
        let (_, sel) = run(113);
        let mut ids: Vec<&str> = sel.picks.iter().map(|p| p.server_id.as_str()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn selection_is_deterministic() {
        let (_, a) = run(114);
        let (_, b) = run(114);
        let ids = |s: &DifferentialSelection| {
            s.picks
                .iter()
                .map(|p| p.server_id.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn class_labels() {
        assert_eq!(LatencyClass::Comparable.label(), "comparable");
        assert_eq!(LatencyClass::PremiumLower.label(), "premium-lower");
        assert_eq!(LatencyClass::StandardLower.label(), "standard-lower");
    }
}
