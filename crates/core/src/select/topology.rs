//! Topology-based server selection (§3.1, method 1).
//!
//! From a VM in each region:
//!
//! 1. run a `bdrmap` pilot scan to discover the region's interdomain
//!    links (Table 1 column 1);
//! 2. run paris-traceroutes to every US speed-test server, resolve hops
//!    with prefix-to-AS, and match them against the bdrmap far-side IPs —
//!    this groups servers by the border link they traverse (column 2 is
//!    the number of groups);
//! 3. from each group, pick the server with the shortest AS-path length
//!    to the region (ties: lowest traceroute RTT);
//! 4. apply the per-region measurement budget (the paper deployed 106 /
//!    25 / 184 / 40 / 56 servers; budget, not method, set those counts).

use crate::world::World;
use nettools::bdrmap::{BdrMap, SimAliasResolver};
use nettools::scamper::{Scamper, Target};
use nettools::traceroute::{traceroute, TraceMode};
use simnet::geo::CityId;
use simnet::routing::{Paths, Tier};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The stable per-destination-prefix egress discriminator: all traffic
/// from a region toward one `<AS, city>` prefix uses the same border
/// interface.
pub fn prefix_flow(asn: u32, city: u16, region_city: u16) -> u64 {
    simnet::routing::load_key(
        b"prefix",
        asn as u64,
        ((city as u64) << 16) | region_city as u64,
    )
}

/// Result of the topology-based selection for one region.
#[derive(Debug, Clone)]
pub struct TopologySelection {
    /// Region name this selection was computed for.
    pub region: &'static str,
    /// Interdomain links bdrmap discovered in the pilot scan.
    pub bdrmap_links: usize,
    /// Distinct border links traversed by traceroutes to all US servers.
    pub links_traversed: usize,
    /// Selected server ids (one per border link, budget-capped).
    pub servers: Vec<String>,
    /// For each selected server: the far-side IP of its border link.
    pub server_link: HashMap<String, Ipv4Addr>,
}

impl TopologySelection {
    /// Coverage of the US-traversed links by the selected servers.
    pub fn coverage(&self) -> f64 {
        if self.links_traversed == 0 {
            return 0.0;
        }
        self.servers.len() as f64 / self.links_traversed as f64
    }
}

/// Pilot-scan probing parameters.
#[derive(Debug, Clone, Copy)]
pub struct PilotConfig {
    /// Flow ids probed per bdrmap target (ECMP sweep).
    pub flows_per_target: u64,
    /// Cities sampled per AS in the bdrmap scan.
    pub cities_per_as: usize,
    /// Alias-resolution coverage.
    pub alias_coverage: f64,
    /// Probe seed.
    pub seed: u64,
}

impl Default for PilotConfig {
    fn default() -> Self {
        Self {
            flows_per_target: 16,
            cities_per_as: 2,
            alias_coverage: 0.85,
            seed: 0xb0a7,
        }
    }
}

/// Runs the full topology-based selection for one region against the
/// world's current registry.
pub fn select(
    world: &World,
    paths: &Paths<'_>,
    region_name: &'static str,
    region_city: CityId,
    budget: usize,
    pilot: &PilotConfig,
) -> TopologySelection {
    select_with_registry(
        world,
        &world.registry,
        paths,
        region_name,
        region_city,
        budget,
        pilot,
    )
}

/// [`select`] against an explicit registry — used by the automatic
/// re-selection of §5 to run the pilot against an updated server list.
pub fn select_with_registry(
    world: &World,
    registry: &speedtest::platform::ServerRegistry,
    paths: &Paths<'_>,
    region_name: &'static str,
    region_city: CityId,
    budget: usize,
    pilot: &PilotConfig,
) -> TopologySelection {
    let topo = &world.topo;
    let vm_ip = topo.vm_ip(region_city, 0);

    // --- 1. bdrmap pilot scan over the whole routed Internet. ---
    let mut scan_targets: Vec<Target> = Vec::new();
    for id in topo.non_cloud_ases() {
        let node = topo.as_node(id);
        for &city in node.cities.iter().take(pilot.cities_per_as) {
            scan_targets.push(Target {
                as_id: id,
                city,
                ip: topo.host_ip(id, city, 0),
            });
        }
    }
    let engine = Scamper::default();
    let scan_traces = engine.trace_many(
        paths,
        region_city,
        vm_ip,
        &scan_targets,
        Tier::Premium,
        TraceMode::Paris,
        pilot.flows_per_target,
        pilot.seed,
    );
    let aliases = SimAliasResolver::new(topo, pilot.alias_coverage);
    let bdr = BdrMap::infer(
        &scan_traces,
        &world.p2a,
        simnet::topology::CLOUD_ASN,
        &aliases,
    );

    // --- 2. traceroute to all US servers; group by far-side IP. ---
    let us_servers: Vec<&speedtest::platform::Server> = registry.in_country("US");
    // group: far-side IP → (server id, as-path len, rtt)
    let mut groups: HashMap<Ipv4Addr, Vec<(String, u32, f64)>> = HashMap::new();
    for server in us_servers.iter() {
        // Egress interface assignment is per destination prefix (BGP picks
        // one best path per prefix), not per five-tuple: servers in the
        // same <AS, city> share an interface. This is what makes 75–92 %
        // of servers share interconnections with others (§4).
        let flow = prefix_flow(server.asn.0, server.city.0, region_city.0);
        let Some(trace) = traceroute(
            paths,
            region_city,
            vm_ip,
            server.as_id,
            server.city,
            server.ip,
            Tier::Premium,
            TraceMode::Paris,
            flow,
            pilot.seed ^ 1,
        ) else {
            continue;
        };
        // Match responsive hops against bdrmap-identified far-side IPs.
        // The border is the *last* matching hop: early cloud hops can
        // appear in the bdrmap set when a trace elsewhere had silent
        // interfaces, but the true far side is always the deepest match.
        let far = trace
            .responsive_ips()
            .into_iter()
            .rev()
            .find(|ip| bdr.links.contains_key(ip));
        let Some(far_ip) = far else { continue };
        let Some(len) = paths.routing().as_path_len(topo.cloud, server.as_id) else {
            continue;
        };
        let rtt = trace.dst_rtt_ms().unwrap_or(f64::INFINITY);
        groups
            .entry(far_ip)
            .or_default()
            .push((server.id.clone(), len, rtt));
    }
    let links_traversed = groups.len();

    // --- 3. one server per link: shortest AS path, then lowest RTT. ---
    let mut chosen: Vec<(Ipv4Addr, String, u32, f64)> = groups
        .into_iter()
        .map(|(far, mut cands)| {
            cands.sort_by(|a, b| {
                a.1.cmp(&b.1)
                    .then(a.2.partial_cmp(&b.2).expect("finite rtts"))
                    .then(a.0.cmp(&b.0))
            });
            let best = cands.into_iter().next().expect("group non-empty");
            (far, best.0, best.1, best.2)
        })
        .collect();

    // --- 4. budget: prefer direct peering and low latency. ---
    chosen.sort_by(|a, b| {
        a.2.cmp(&b.2)
            .then(a.3.partial_cmp(&b.3).expect("finite rtts"))
            .then(a.1.cmp(&b.1))
    });
    chosen.truncate(budget);

    let server_link: HashMap<String, Ipv4Addr> = chosen
        .iter()
        .map(|(far, id, _, _)| (id.clone(), *far))
        .collect();
    let servers: Vec<String> = chosen.into_iter().map(|(_, id, _, _)| id).collect();

    TopologySelection {
        region: region_name,
        bdrmap_links: bdr.link_count(),
        links_traversed,
        servers,
        server_link,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    fn run_tiny(budget: usize) -> (World, TopologySelection) {
        let world = World::tiny(101);
        let sel = {
            let session = world.session();
            let region = world.topo.cities.by_name("The Dalles").unwrap();
            select(
                &world,
                &session.paths,
                "us-west1",
                region,
                budget,
                &PilotConfig::default(),
            )
        };
        (world, sel)
    }

    #[test]
    fn selection_discovers_links_and_picks_servers() {
        let (_, sel) = run_tiny(100);
        assert!(sel.bdrmap_links > 10, "bdrmap links = {}", sel.bdrmap_links);
        assert!(
            sel.links_traversed > 3,
            "links traversed = {}",
            sel.links_traversed
        );
        assert!(!sel.servers.is_empty());
        assert!(sel.servers.len() <= sel.links_traversed);
        assert!(sel.coverage() <= 1.0);
    }

    #[test]
    fn one_server_per_link() {
        let (_, sel) = run_tiny(100);
        // Each selected server maps to a distinct far-side IP.
        let mut fars: Vec<Ipv4Addr> = sel.server_link.values().copied().collect();
        let n = fars.len();
        fars.sort_unstable();
        fars.dedup();
        assert_eq!(fars.len(), n);
        assert_eq!(sel.server_link.len(), sel.servers.len());
    }

    #[test]
    fn budget_caps_selection() {
        let (_, unbounded) = run_tiny(1000);
        let (_, capped) = run_tiny(3);
        assert_eq!(capped.servers.len(), 3.min(unbounded.servers.len()));
        // The capped set prefers short AS paths: it must be a subset of
        // the unbounded set.
        for s in &capped.servers {
            assert!(unbounded.servers.contains(s));
        }
    }

    #[test]
    fn selected_servers_exist_in_registry() {
        let (world, sel) = run_tiny(50);
        for id in &sel.servers {
            let s = world.registry.by_id(id).expect("selected server exists");
            assert_eq!(s.country, "US");
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let (_, a) = run_tiny(20);
        let (_, b) = run_tiny(20);
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.bdrmap_links, b.bdrmap_links);
    }
}
