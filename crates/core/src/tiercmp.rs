//! Premium-vs-standard tier comparison (§4.1, Fig. 5).
//!
//! The three differential-region VM pairs measure each selected server on
//! both tiers in the same hour; the relative difference
//! `Δ_m(S,t) = (T_m^prem(S,t) − T_m^std(S,t)) / T_m^std(S,t)` is computed
//! per metric `m ∈ {download, upload, latency}` and grouped by the
//! server's pre-test latency class (comparable / premium-lower /
//! standard-lower), which colours the Fig. 5 CDFs.

use crate::select::differential::{DifferentialSelection, LatencyClass};
use std::collections::HashMap;
use tsdb::Db;

/// Per-hour `(download, upload, latency, dloss)` sums for one tier.
type HourStats = HashMap<u64, (f64, f64, f64, f64)>;

/// Relative differences for one server across the campaign.
#[derive(Debug, Clone, Default)]
pub struct ServerDeltas {
    /// Δ download per paired hour.
    pub download: Vec<f64>,
    /// Δ upload per paired hour.
    pub upload: Vec<f64>,
    /// Δ latency per paired hour.
    pub latency: Vec<f64>,
    /// Mean premium download loss (the ">10 % loss on eight targets"
    /// diagnosis).
    pub premium_dloss_mean: f64,
    /// Mean standard download loss.
    pub standard_dloss_mean: f64,
}

/// The full comparison for one differential region.
#[derive(Debug)]
pub struct TierComparison {
    /// Region compared.
    pub region: &'static str,
    /// Per-server deltas with the server's latency class.
    pub servers: Vec<(String, LatencyClass, ServerDeltas)>,
}

impl TierComparison {
    /// Builds the comparison from the campaign database and the region's
    /// differential selection.
    pub fn build(db: &mut Db, selection: &DifferentialSelection) -> Self {
        let mut servers = Vec::new();
        for pick in &selection.picks {
            let mut per_tier: HashMap<bool, HourStats> = HashMap::new();
            for premium in [true, false] {
                let tier = if premium { "premium" } else { "standard" };
                let filters = vec![
                    ("server".to_string(), pick.server_id.clone()),
                    ("tier".to_string(), tier.to_string()),
                    ("method".to_string(), "diff".to_string()),
                    ("region".to_string(), selection.region.to_string()),
                ];
                for s in db.matching_series("speedtest", &filters) {
                    for (t, fields) in s.samples() {
                        // Align to the hour: the two VMs test the same
                        // server in the same hour but at different slots.
                        let hour = *t / 3600;
                        let entry = (
                            fields.get("download").copied().unwrap_or(f64::NAN),
                            fields.get("upload").copied().unwrap_or(f64::NAN),
                            fields.get("latency").copied().unwrap_or(f64::NAN),
                            fields.get("dloss").copied().unwrap_or(f64::NAN),
                        );
                        per_tier.entry(premium).or_default().insert(hour, entry);
                    }
                }
            }
            let (Some(prem), Some(std_)) = (per_tier.get(&true), per_tier.get(&false)) else {
                continue;
            };
            let mut deltas = ServerDeltas::default();
            let mut prem_loss = Vec::new();
            let mut std_loss = Vec::new();
            let mut hours: Vec<u64> = prem.keys().copied().collect();
            hours.sort_unstable();
            for h in hours {
                let (Some(p), Some(s)) = (prem.get(&h), std_.get(&h)) else {
                    continue;
                };
                let rel = |a: f64, b: f64| -> Option<f64> {
                    (a.is_finite() && b.is_finite() && b > 0.0).then(|| (a - b) / b)
                };
                if let Some(d) = rel(p.0, s.0) {
                    deltas.download.push(d);
                }
                if let Some(d) = rel(p.1, s.1) {
                    deltas.upload.push(d);
                }
                if let Some(d) = rel(p.2, s.2) {
                    deltas.latency.push(d);
                }
                if p.3.is_finite() {
                    prem_loss.push(p.3);
                }
                if s.3.is_finite() {
                    std_loss.push(s.3);
                }
            }
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            deltas.premium_dloss_mean = mean(&prem_loss);
            deltas.standard_dloss_mean = mean(&std_loss);
            servers.push((pick.server_id.clone(), pick.class, deltas));
        }
        Self {
            region: selection.region,
            servers,
        }
    }

    /// Pools Δ values of one metric across servers of one class.
    pub fn pooled(&self, class: LatencyClass, metric: Metric) -> Vec<f64> {
        let mut out = Vec::new();
        for (_, c, d) in &self.servers {
            if *c != class {
                continue;
            }
            out.extend(match metric {
                Metric::Download => d.download.iter(),
                Metric::Upload => d.upload.iter(),
                Metric::Latency => d.latency.iter(),
            });
        }
        out
    }

    /// Fraction of download measurements where the standard tier was
    /// faster (Δ_d < 0) — the paper's headline §4.1 observation.
    pub fn standard_faster_fraction(&self) -> f64 {
        let all: Vec<f64> = self
            .servers
            .iter()
            .flat_map(|(_, _, d)| d.download.iter().copied())
            .collect();
        if all.is_empty() {
            return 0.0;
        }
        all.iter().filter(|&&d| d < 0.0).count() as f64 / all.len() as f64
    }

    /// Servers whose mean premium download loss exceeds `threshold`
    /// (the paper found eight above 10 %).
    pub fn premium_lossy_servers(&self, threshold: f64) -> Vec<&str> {
        self.servers
            .iter()
            .filter(|(_, _, d)| d.premium_dloss_mean > threshold)
            .map(|(id, _, _)| id.as_str())
            .collect()
    }
}

/// Metric selector for pooled distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Download throughput.
    Download,
    /// Upload throughput.
    Upload,
    /// Latency.
    Latency,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::world::World;

    fn comparison() -> TierComparison {
        let world = World::tiny(151);
        let res = Campaign::new(&world, CampaignConfig::small(151))
            .runner()
            .run()
            .unwrap();
        let mut db = res.db;
        TierComparison::build(&mut db, &res.diff_selections[0])
    }

    #[test]
    fn paired_deltas_exist_for_every_pick() {
        let cmp = comparison();
        assert!(!cmp.servers.is_empty());
        for (_, _, d) in &cmp.servers {
            // 2 days × 24 paired hours.
            assert_eq!(d.download.len(), 48);
            assert_eq!(d.upload.len(), 48);
            assert_eq!(d.latency.len(), 48);
        }
    }

    #[test]
    fn deltas_are_finite() {
        let cmp = comparison();
        for (_, _, d) in &cmp.servers {
            for v in d.download.iter().chain(&d.upload).chain(&d.latency) {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn standard_faster_fraction_in_unit_interval() {
        let cmp = comparison();
        let f = cmp.standard_faster_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn pooled_respects_class() {
        let cmp = comparison();
        let total: usize = [
            LatencyClass::Comparable,
            LatencyClass::PremiumLower,
            LatencyClass::StandardLower,
        ]
        .iter()
        .map(|c| cmp.pooled(*c, Metric::Download).len())
        .sum();
        let direct: usize = cmp.servers.iter().map(|(_, _, d)| d.download.len()).sum();
        assert_eq!(total, direct);
    }

    #[test]
    fn loss_means_are_probabilities() {
        let cmp = comparison();
        for (_, _, d) in &cmp.servers {
            assert!((0.0..=1.0).contains(&d.premium_dloss_mean));
            assert!((0.0..=1.0).contains(&d.standard_dloss_mean));
        }
        let lossy = cmp.premium_lossy_servers(0.0);
        assert!(lossy.len() <= cmp.servers.len());
    }
}
