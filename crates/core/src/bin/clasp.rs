//! The `clasp` command-line tool: drive the platform the way its
//! operators would, one stage at a time.
//!
//! ```text
//! clasp crawl  [--seed N]                      # crawl the server registries
//! clasp select [--seed N] [--region R] [--budget N]
//! clasp run    [--seed N] [--region R] [--budget N] [--days N] [--jobs N]
//!              [--fault-profile P] [--metrics FILE] [--trace FILE]
//! clasp analyze [--seed N] [--region R] [--budget N] [--days N] [--jobs N]
//!              [--threshold H] [--metrics FILE] [--trace FILE]
//! clasp stream [--seed N] [--region R] [--budget N] [--days N] [--jobs N]
//!              [--threshold H] [--auto-threshold] [--fault-profile P]
//!              [--metrics FILE] [--trace FILE]
//! clasp report [--seed N] [--region R] [--budget N] [--days N] [--jobs N]
//!              [--fault-profile P] [--paper]    # observed run + full report
//! clasp bill   [--seed N] [--days N]           # cost forecast for a deployment
//! clasp serve  [--seed N] [--region R] [--budget N] [--days N] [--jobs N]
//!              [--clients N] [--port P] [--metrics FILE]
//! ```
//!
//! Everything is deterministic in `--seed`; `run` prints the line-protocol
//! sample of what lands in the bucket, `analyze` prints the congestion
//! report.
//!
//! `stream` runs the same campaign with the incremental detection engine
//! attached: congestion labels, threshold recalibration and alerts are
//! produced online while results land, then cross-checked element-wise
//! against the batch analysis of the very same database.
//!
//! `--fault-profile` takes a built-in profile name (`none`, `light`,
//! `moderate`, `heavy`, `gcp-2020`) or a path to a JSON plan; the run
//! then injects faults, retries its way through them, and reports the
//! fault summary and per-region data completeness.
//!
//! `--jobs N` runs the campaign on N worker threads; `--jobs 0` (the
//! default) uses the machine's available parallelism, `--jobs 1` forces
//! the serial path. Results are bit-identical at every setting.
//!
//! `--metrics FILE` / `--trace FILE` attach a deterministic observer to
//! the run and write its canonical metrics / trace JSON — byte-identical
//! at every `--jobs` setting and across checkpoint resumes. `report`
//! runs an observed campaign and renders the telemetry as one report:
//! per-phase timing, per-VM test budgets, completeness, and billing.
//!
//! `serve` runs a campaign and loads its results into a `clasp-serve`
//! server as `--clients N` concurrent sequenced ingest clients, then
//! self-checks that served query responses are byte-identical to
//! in-process evaluation over the same snapshot generation. With
//! `--port P` it then stays up serving the line-delimited JSON protocol
//! over TCP (`--port 0` picks a free port and prints it).

use clasp_core::campaign::{Campaign, CampaignConfig};
use clasp_core::congestion::CongestionAnalysis;
use clasp_core::world::World;
use clasp_core::Observer;

fn arg_u64(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_f64(args: &[String], name: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(args: &[String], name: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn arg_opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// FNV-1a over `s`: a stable, dependency-free digest of the campaign
/// knobs, used as the serve response-cache's `config_hash` identity.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn usage() -> ! {
    eprintln!(
        "usage: clasp <crawl|select|run|analyze|stream|report|diag|bill|serve> \
         [--seed N] [--region R] [--budget N] [--days N] [--jobs N] \
         [--threshold H] [--auto-threshold] [--paper] \
         [--fault-profile <name|path.json>] \
         [--scenarios N] [--min-top1 F] [--min-agreement F] [--json] \
         [--clients N] [--port P] \
         [--metrics FILE] [--trace FILE]"
    );
    std::process::exit(2);
}

/// Writes the observer's canonical metrics/trace JSON to the paths
/// given on the command line, if any.
fn write_telemetry(obs: &Observer, metrics: Option<&str>, trace: Option<&str>) {
    for (path, body, what) in [
        (metrics, obs.metrics_string(), "metrics"),
        (trace, obs.trace_string(), "trace"),
    ] {
        let Some(path) = path else { continue };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("cannot write {what} to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {what} to {path}");
    }
}

/// Renders the per-VM budget table from the observer's
/// `vm.<unit>/<name>.*` counters.
fn render_vm_table(metrics: &clasp_obs::MetricsRegistry) -> String {
    use std::collections::BTreeMap;
    // vm id → (assigned, expected, executed, collected)
    let mut rows: BTreeMap<String, [u64; 4]> = BTreeMap::new();
    for (name, v) in metrics.counters() {
        let Some(rest) = name.strip_prefix("vm.") else {
            continue;
        };
        let Some((vm, metric)) = rest.rsplit_once('.') else {
            continue;
        };
        let slot = match metric {
            "assigned" => 0,
            "expected_tests" => 1,
            "tests_executed" => 2,
            "tests_collected" => 3,
            _ => continue,
        };
        rows.entry(vm.to_string()).or_default()[slot] += v;
    }
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<48} {:>4} {:>9} {:>9} {:>9} {:>6}\n",
        "vm", "srv", "expected", "executed", "collected", "util%"
    ));
    for (vm, [assigned, expected, executed, collected]) in &rows {
        let util = if *expected > 0 {
            *executed as f64 / *expected as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {vm:<48} {assigned:>4} {expected:>9} {executed:>9} {collected:>9} {util:>5.1}%\n"
        ));
    }
    out
}

/// Resolves `--fault-profile`: a built-in name first, else a JSON file.
fn load_fault_profile(spec: &str) -> faultsim::FaultPlan {
    if let Some(plan) = faultsim::FaultPlan::builtin(spec) {
        return plan;
    }
    match std::fs::read_to_string(spec) {
        Ok(text) => match faultsim::FaultPlan::from_json_str(&text) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("bad fault profile {spec}: {e}");
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("unknown fault profile {spec} (not a built-in, and not readable: {e})");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage()
    };
    let seed = arg_u64(&args, "--seed", 42);
    let region_name = arg_str(&args, "--region", "us-west1");
    let budget = arg_u64(&args, "--budget", 34) as usize;
    let days = arg_u64(&args, "--days", 7);
    let threshold = arg_f64(&args, "--threshold", 0.5);
    let jobs = arg_u64(&args, "--jobs", 0) as usize;

    let world = World::new(seed);
    let region = cloudsim::region::Region::by_name(&region_name).unwrap_or_else(|| {
        eprintln!("unknown region {region_name}");
        std::process::exit(2);
    });

    match cmd.as_str() {
        "crawl" => {
            let us = world.registry.in_country("US");
            println!(
                "{} servers across the three platforms ({} US, {} US ASes)",
                world.registry.servers.len(),
                us.len(),
                speedtest::platform::ServerRegistry::distinct_ases(&us)
            );
            for platform in [
                speedtest::platform::Platform::Ookla,
                speedtest::platform::Platform::MLab,
                speedtest::platform::Platform::Comcast,
            ] {
                let n = world
                    .registry
                    .servers
                    .iter()
                    .filter(|s| s.platform == platform)
                    .count();
                println!("  {:<8} {n}", platform.label());
            }
        }
        "select" => {
            let session = world.session();
            let sel = clasp_core::select::topology::select(
                &world,
                &session.paths,
                region.name,
                region.city_id(&world.topo.cities),
                budget,
                &clasp_core::select::topology::PilotConfig::default(),
            );
            println!(
                "{}: bdrmap {} links, {} traversed, {} selected ({:.1}% coverage)",
                sel.region,
                sel.bdrmap_links,
                sel.links_traversed,
                sel.servers.len(),
                sel.coverage() * 100.0
            );
            for sid in &sel.servers {
                let s = world.registry.by_id(sid).expect("selected exists");
                println!("  {:<14} {} [{}]", sid, s.sponsor, sel.server_link[sid]);
            }
        }
        "run" | "analyze" => {
            let mut config = CampaignConfig::small(seed);
            config.days = days;
            config.topo_regions = vec![(region.name, budget)];
            config.diff_regions.clear();
            config.keep_raw = true;
            config.jobs = jobs;
            let fault_spec = arg_str(&args, "--fault-profile", "none");
            config.fault_plan = load_fault_profile(&fault_spec);
            let metrics_path = arg_opt(&args, "--metrics");
            let trace_path = arg_opt(&args, "--trace");
            let obs = Observer::new();
            let campaign = Campaign::new(&world, config);
            let mut runner = campaign.runner();
            if metrics_path.is_some() || trace_path.is_some() {
                runner = runner.observer(&obs);
            }
            let result = runner.run().expect("fresh runs cannot fail");
            write_telemetry(&obs, metrics_path.as_deref(), trace_path.as_deref());
            println!(
                "campaign: {} tests, {} VMs, {} raw objects, ${:.2}",
                result.tests_run,
                result.vm_count,
                result.raw_objects,
                result.billing.total_usd()
            );
            if !result.fault_log.is_empty() {
                let s = result.fault_log.summary();
                println!(
                    "faults: {} injected, {} recovered ({} retries), {} lost ({} s-hours)",
                    s.total, s.recovered, s.retries, s.lost, s.lost_s_hours
                );
                for (kind, n) in &s.by_kind {
                    println!("  {kind:<16} {n}");
                }
                println!(
                    "\ncompleteness ({}):\n{}",
                    if result.completeness.reconciles() {
                        "reconciles with fault log"
                    } else {
                        "DOES NOT RECONCILE"
                    },
                    result.completeness.render()
                );
            }
            if cmd == "run" {
                // Show a sample of what landed in the bucket.
                let bucket = &result.buckets[0];
                if let Some(key) = bucket.list("raw/").first() {
                    println!("\nfirst object {key}:");
                    for line in bucket.get(key).unwrap().data.lines().take(5) {
                        println!("  {line}");
                    }
                }
                return;
            }
            let mut db = result.db;
            let analysis = CongestionAnalysis::build(
                &mut db,
                &world,
                "download",
                &[("method".to_string(), "topo".to_string())],
            );
            let (_, elbow) = analysis.elbow_threshold(20);
            println!(
                "\ncongestion @ H={threshold}: {:.1}% of s-days, {:.2}% of s-hours (elbow suggests {:?})",
                analysis.fraction_days_above(threshold) * 100.0,
                analysis.fraction_hours_above(threshold) * 100.0,
                elbow
            );
            let congested = analysis.congested_series(threshold, 0.10);
            let n_congested = congested.iter().filter(|c| **c).count();
            println!(
                "{n_congested}/{} servers congested (>10% of days with an event)",
                congested.len()
            );
        }
        "stream" => {
            let mut config = CampaignConfig::small(seed);
            config.days = days;
            config.topo_regions = vec![(region.name, budget)];
            config.diff_regions.clear();
            config.keep_raw = true;
            config.jobs = jobs;
            let fault_spec = arg_str(&args, "--fault-profile", "none");
            config.fault_plan = load_fault_profile(&fault_spec);

            let mut engine_cfg = clasp_stream::EngineConfig::paper();
            engine_cfg.threshold = if args.iter().any(|a| a == "--auto-threshold") {
                clasp_stream::ThresholdMode::Auto {
                    initial: threshold,
                    min_days: 30,
                }
            } else {
                clasp_stream::ThresholdMode::Fixed(threshold)
            };

            let metrics_path = arg_opt(&args, "--metrics");
            let trace_path = arg_opt(&args, "--trace");
            let obs = Observer::new();
            let campaign = Campaign::new(&world, config);
            let mut engine = campaign.stream_engine(engine_cfg);
            let mut runner = campaign.runner().streaming(&mut engine);
            if metrics_path.is_some() || trace_path.is_some() {
                runner = runner.observer(&obs);
            }
            let result = runner.run().expect("fresh runs cannot fail");
            write_telemetry(&obs, metrics_path.as_deref(), trace_path.as_deref());
            println!(
                "campaign: {} tests, {} VMs, ${:.2}",
                result.tests_run,
                result.vm_count,
                result.billing.total_usd()
            );
            if !result.fault_log.is_empty() {
                let s = result.fault_log.summary();
                println!(
                    "faults: {} injected, {} recovered ({} retries), {} lost ({} s-hours)",
                    s.total, s.recovered, s.retries, s.lost, s.lost_s_hours
                );
            }
            let s = engine.stats();
            println!(
                "stream: {} events, {} matched, {} days closed, {} labels",
                s.events_seen, s.points_matched, s.days_closed, s.labels_emitted
            );
            println!(
                "health: {} out-of-order, {} duplicates, {} gap-hours, \
                 {} late-dropped, {} bus-dropped",
                s.out_of_order, s.duplicates, s.gap_hours, s.late_dropped, s.bus_overflow
            );
            let h = engine.threshold();
            println!(
                "congestion @ H={h}: {:.1}% of s-days, {:.2}% of s-hours \
                 (streaming elbow suggests {:?})",
                engine.fraction_days_above(h) * 100.0,
                engine.fraction_hours_above(h) * 100.0,
                engine.elbow()
            );
            let congested = engine.congested_series(0.10);
            println!(
                "{}/{} servers congested (>10% of days with an event)",
                congested.iter().filter(|c| **c).count(),
                congested.len()
            );
            if !engine.alerts().is_empty() {
                println!("alerts ({}):", engine.alerts().len());
                for a in engine.alerts().iter().take(8) {
                    println!(
                        "  {:<14} {:>7}s..{:>7}s peak V_H {:.2} ({} events{})",
                        a.server,
                        a.start,
                        a.end,
                        a.peak_v_h,
                        a.events,
                        if a.open { ", still open" } else { "" }
                    );
                }
            }

            // Differential check: the batch analysis over the same Db must
            // agree element-wise with what the engine computed online.
            let mut db = result.db;
            let analysis = CongestionAnalysis::build(
                &mut db,
                &world,
                "download",
                &[("method".to_string(), "topo".to_string())],
            );
            let days_ok = analysis.day_vars.len() == engine.day_records().len()
                && analysis
                    .day_vars
                    .iter()
                    .zip(engine.day_records())
                    .all(|(b, d)| {
                        b.local_day == d.local_day
                            && b.v == d.v
                            && b.t_max == d.t_max
                            && b.t_min == d.t_min
                            && b.n == d.n
                    });
            let hours_ok = analysis.samples.len() == engine.labels().len()
                && analysis.samples.iter().zip(engine.labels()).all(|(b, l)| {
                    b.series_idx == l.series_idx
                        && b.time == l.time
                        && b.local_hour == l.local_hour
                        && b.value == l.value
                        && b.v_h == l.v_h
                });
            println!(
                "\ndifferential vs batch: day records {}, hourly samples {}",
                if days_ok { "identical" } else { "MISMATCH" },
                if hours_ok { "identical" } else { "MISMATCH" }
            );
            if !days_ok || !hours_ok {
                std::process::exit(1);
            }
        }
        "report" => {
            let config = if args.iter().any(|a| a == "--paper") {
                let mut c = CampaignConfig::paper(seed);
                c.jobs = jobs;
                c.fault_plan = load_fault_profile(&arg_str(&args, "--fault-profile", "gcp-2020"));
                c
            } else {
                let mut c = CampaignConfig::small(seed);
                c.days = days;
                c.topo_regions = vec![(region.name, budget)];
                c.jobs = jobs;
                c.fault_plan = load_fault_profile(&arg_str(&args, "--fault-profile", "none"));
                c
            };
            let obs = Observer::new();
            let result = Campaign::new(&world, config)
                .runner()
                .observer(&obs)
                .run()
                .expect("fresh runs cannot fail");
            write_telemetry(
                &obs,
                arg_opt(&args, "--metrics").as_deref(),
                arg_opt(&args, "--trace").as_deref(),
            );
            let m = obs.metrics();
            println!("phases (wall time is informational; logical time is replayable):");
            println!("{}", obs.render_span_table());
            println!("per-VM test budgets:");
            println!("{}", render_vm_table(&m));
            println!(
                "completeness: {:.2}% ({} server-hours missing{})",
                result.completeness.overall_completeness() * 100.0,
                result.completeness.total_missing(),
                if result.completeness.reconciles() {
                    ", reconciles with fault log"
                } else {
                    "; DOES NOT RECONCILE"
                }
            );
            if !result.fault_log.is_empty() {
                let s = result.fault_log.summary();
                println!(
                    "faults: {} injected, {} recovered ({} retries), {} lost ({} s-hours)",
                    s.total, s.recovered, s.retries, s.lost, s.lost_s_hours
                );
            }
            println!(
                "ingest: {} objects, {} points, {} malformed",
                m.counter("ingest.objects"),
                m.counter("ingest.points"),
                m.counter("ingest.errors"),
            );
            println!(
                "billing: ${:.2} total (${:.2} VM, ${:.2} egress, ${:.2} storage) \
                 for {} VMs, {} tests",
                result.billing.total_usd(),
                result.billing.vm_usd(),
                result.billing.egress_usd(),
                result.billing.storage_usd(),
                result.vm_count,
                result.tests_run
            );
        }
        "serve" => {
            let clients = arg_u64(&args, "--clients", 4).max(1);
            let mut config = CampaignConfig::small(seed);
            config.days = days;
            config.topo_regions = vec![(region.name, budget)];
            config.diff_regions.clear();
            config.jobs = jobs;
            let campaign = Campaign::new(&world, config);
            let result = campaign.runner().run().expect("fresh runs cannot fail");
            let mut db = result.db;
            let source = db.snapshot();
            println!(
                "campaign: {} tests across {} series",
                result.tests_run,
                source.series_count()
            );

            // Identity for the cache key: the campaign seed plus a hash
            // of the knobs that shape its data.
            let config_hash = fnv1a(&format!("{}:{budget}:{days}:{seed}", region.name));
            let server = std::sync::Arc::new(clasp_serve::Server::new(clasp_serve::ServerConfig {
                seed,
                config_hash,
                ..clasp_serve::ServerConfig::default()
            }));

            // Shard the campaign's points round-robin across N ingest
            // clients and feed them as sequenced batches — the arrival
            // interleaving cannot change the published bytes.
            let mut shards: Vec<Vec<tsdb::Point>> = vec![Vec::new(); clients as usize];
            let mut idx = 0usize;
            for series in source.series() {
                for (t, fields) in series.samples() {
                    shards[idx % clients as usize].push(tsdb::Point::from_parts(
                        series.measurement.clone(),
                        series.tags.clone(),
                        fields.clone(),
                        *t,
                    ));
                    idx += 1;
                }
            }
            let mut feeders: Vec<clasp_serve::Client<clasp_serve::LocalTransport>> = (0..clients)
                .map(|k| {
                    clasp_serve::Client::new(
                        format!("ingest-{k:03}"),
                        clasp_serve::LocalTransport::new(std::sync::Arc::clone(&server)),
                    )
                })
                .collect();
            const BATCH: usize = 512;
            let mut pending: Vec<Vec<tsdb::Point>> = shards;
            let mut fed = 0u64;
            while pending.iter().any(|s| !s.is_empty()) {
                for (k, shard) in pending.iter_mut().enumerate() {
                    if shard.is_empty() {
                        continue;
                    }
                    let take = shard.len().min(BATCH);
                    let batch: Vec<tsdb::Point> = shard.drain(..take).collect();
                    fed += batch.len() as u64;
                    feeders[k].ingest(batch).expect("ingest batch");
                }
            }
            let generation = feeders[0].publish().expect("publish");
            println!(
                "serve: {fed} points via {clients} sequenced clients, generation {generation}"
            );

            // Self-check: served bytes vs in-process evaluation over
            // the server's own snapshot, twice (miss then cache hit).
            let snap = server.snapshot();
            let specs = [
                clasp_serve::QuerySpec::select("speedtest", "download")
                    .aggregate(tsdb::Aggregate::Percentile(95.0))
                    .group_by_time(86400),
                clasp_serve::QuerySpec::select("speedtest", "upload")
                    .aggregate(tsdb::Aggregate::Mean),
                clasp_serve::QuerySpec::select("speedtest", "latency")
                    .aggregate(tsdb::Aggregate::Percentile(5.0)),
            ];
            let mut reader = clasp_serve::Client::new(
                "reader",
                clasp_serve::LocalTransport::new(std::sync::Arc::clone(&server)),
            );
            for spec in &specs {
                let direct = spec.to_query().run_snapshot(&snap);
                let body = clasp_serve::proto::results_to_value(snap.generation(), &direct);
                let serde_json::Value::Object(m) = body else {
                    unreachable!("results_to_value returns an object")
                };
                let expect = clasp_serve::proto::ok_response(m);
                for pass in ["miss", "hit"] {
                    let (_, raw) = reader.query(spec).expect("query");
                    if raw != expect {
                        eprintln!("serve equivalence MISMATCH ({pass}): {}", spec.canonical());
                        std::process::exit(1);
                    }
                }
            }
            let cache = server.cache_stats();
            println!(
                "serve equivalence: identical across {} queries ({} cache hits, {} misses)",
                specs.len() * 2,
                cache.hits,
                cache.misses
            );
            if let Some(path) = arg_opt(&args, "--metrics") {
                let obs = Observer::new();
                server.record_metrics(&obs);
                write_telemetry(&obs, Some(&path), None);
            }

            if let Some(port) = arg_opt(&args, "--port") {
                let port: u16 = port.parse().unwrap_or_else(|_| {
                    eprintln!("bad port {port}");
                    std::process::exit(2);
                });
                let listener =
                    std::net::TcpListener::bind(("127.0.0.1", port)).unwrap_or_else(|e| {
                        eprintln!("cannot bind 127.0.0.1:{port}: {e}");
                        std::process::exit(1);
                    });
                let addr = listener.local_addr().expect("bound socket has an address");
                println!("serving line-delimited JSON on {addr} (Ctrl-C to stop)");
                if let Err(e) = clasp_serve::wire::serve_listener(&server, &listener) {
                    eprintln!("accept loop failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "diag" => {
            let mut cfg = clasp_core::diag::DiagConfig::new(seed);
            cfg.scenarios = arg_u64(&args, "--scenarios", cfg.scenarios);
            cfg.days = arg_u64(&args, "--days", cfg.days);
            cfg.budget = arg_u64(&args, "--budget", cfg.budget as u64) as usize;
            cfg.jobs = jobs.max(1);
            cfg.threshold = threshold;
            let metrics_path = arg_opt(&args, "--metrics");
            let trace_path = arg_opt(&args, "--trace");
            let observed = metrics_path.is_some() || trace_path.is_some();
            let obs = Observer::new();
            let report = clasp_core::diag::run_suite(&cfg, observed.then_some(&obs));
            if args.iter().any(|a| a == "--json") {
                println!("{}", serde_json::to_string(&report.to_json()));
            } else {
                print!("{}", report.render());
            }
            write_telemetry(&obs, metrics_path.as_deref(), trace_path.as_deref());
            // CI regression gates: fail the run when the diagnosis
            // quality drops below the recorded floors.
            let min_top1 = arg_f64(&args, "--min-top1", 0.0);
            let min_agreement = arg_f64(&args, "--min-agreement", 0.0);
            if report.top1_rate() < min_top1 {
                eprintln!(
                    "diag: top-1 localization rate {:.2} below floor {min_top1:.2}",
                    report.top1_rate()
                );
                std::process::exit(1);
            }
            if report.mitigation_agreement() < min_agreement {
                eprintln!(
                    "diag: mitigation agreement {:.2} below floor {min_agreement:.2}",
                    report.mitigation_agreement()
                );
                std::process::exit(1);
            }
        }
        "bill" => {
            let mut billing = cloudsim::billing::Billing::new();
            let vms = budget.div_ceil(17) as f64;
            billing.record_vm_hours(
                cloudsim::vm::MachineType::N1Standard2,
                vms * days as f64 * 24.0,
            );
            let per_test_up = 100.0 / 8.0 * 15.0 * 1e6;
            let egress = (vms * days as f64 * 24.0 * 17.0 * per_test_up) as u64;
            billing.record_transfer(true, egress, egress * 4);
            println!(
                "forecast for {budget} servers over {days} days: {:.0} USD ({:.0} VM, {:.0} egress)",
                billing.total_usd(),
                billing.vm_usd(),
                billing.egress_usd()
            );
        }
        _ => usage(),
    }
}
