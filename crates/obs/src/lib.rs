//! # clasp-obs — deterministic observability
//!
//! Metrics, span timers, and a structured event log for the CLASP
//! reproduction, built so that telemetry is part of the *replayable*
//! output rather than a source of nondeterminism:
//!
//! - [`MetricsRegistry`] holds counters, gauges, and fixed-bound
//!   histograms. Worker shards accumulate only `u64` counts, which
//!   merge commutatively — totals are bit-identical no matter how the
//!   scheduler partitioned the tasks across `--jobs N` threads.
//! - [`Observer`] adds a *logical clock*: an explicitly-advanced
//!   counter of canonical work quanta. Spans record logical start/end
//!   (plus wall time for human-facing reports, excluded from JSON), so
//!   the span tree serializes byte-identically across job counts and
//!   across checkpoint resumes.
//! - [`EventLog`] records discrete happenings, including every fault
//!   absorbed from a [`faultsim::FaultLog`].
//!
//! The intended use is one [`Observer`] per campaign run, shared by
//! reference: the main thread advances the clock and opens/closes
//! spans at phase barriers; worker threads fill private
//! [`MetricsRegistry`] shards that the main thread merges in canonical
//! order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod registry;
mod report;
mod span;

pub use event::{Event, EventLog};
pub use registry::{Histogram, MetricsRegistry};
pub use report::render_span_table;
pub use span::{SpanRec, Tracer};

use serde_json::{Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct Inner {
    metrics: MetricsRegistry,
    tracer: Tracer,
    events: EventLog,
}

/// Shared observability sink for one campaign run.
///
/// `Sync`: the logical clock is atomic and everything else sits behind
/// one mutex that deterministic code paths only touch from the main
/// thread (workers use private shards instead, merged via
/// [`Observer::merge_shard`]).
pub struct Observer {
    clock: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for Observer {
    fn default() -> Observer {
        Observer::new()
    }
}

impl Observer {
    /// A fresh observer with the logical clock at zero.
    pub fn new() -> Observer {
        Observer {
            clock: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                metrics: MetricsRegistry::new(),
                tracer: Tracer::new(),
                events: EventLog::new(),
            }),
        }
    }

    /// Advances the logical clock by `quanta` units of canonical work.
    ///
    /// Call only at deterministic points (phase barriers, per-unit
    /// merges) with amounts derived from campaign inputs — never from
    /// scheduling (thread counts, timing, queue depths).
    pub fn advance(&self, quanta: u64) {
        self.clock.fetch_add(quanta, Ordering::Relaxed);
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Opens a span; it closes (at the then-current logical time) when
    /// the returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let idx = self.lock().tracer.open(name, self.now());
        SpanGuard { obs: self, idx }
    }

    /// Runs `f` with mutable access to the registry (main thread only
    /// for anything that must stay deterministic).
    pub fn with_metrics<T>(&self, f: impl FnOnce(&mut MetricsRegistry) -> T) -> T {
        f(&mut self.lock().metrics)
    }

    /// Merges a worker shard into the registry.
    ///
    /// Shards must contain only counters and histograms (u64 counts);
    /// merging is then independent of how tasks were grouped.
    pub fn merge_shard(&self, shard: &MetricsRegistry) {
        self.lock().metrics.merge(shard);
    }

    /// Records a structured event at the current logical time.
    pub fn event(&self, kind: &str, scope: &str, detail: impl Into<String>) {
        let now = self.now();
        self.lock().events.push(now, kind, scope, detail);
    }

    /// Absorbs a fault log into the event log at the current logical
    /// time (see [`EventLog::absorb_fault_log`]).
    pub fn absorb_fault_log(&self, log: &faultsim::FaultLog) {
        let now = self.now();
        self.lock().events.absorb_fault_log(now, log);
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        self.lock().metrics.clone()
    }

    /// Snapshot of the recorded spans, in open order.
    pub fn spans(&self) -> Vec<SpanRec> {
        self.lock().tracer.spans().to_vec()
    }

    /// Snapshot of the recorded events, in append order.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.events().to_vec()
    }

    /// Canonical metrics JSON (see [`MetricsRegistry::to_json`]).
    pub fn metrics_json(&self) -> Value {
        self.lock().metrics.to_json()
    }

    /// Canonical metrics JSON as a string — byte-identical across
    /// `--jobs N` and checkpoint resumes.
    pub fn metrics_string(&self) -> String {
        serde_json::to_string(&self.metrics_json())
    }

    /// Canonical trace JSON: `{"clock": .., "spans": [..],
    /// "events": [..]}`. Wall time is excluded.
    pub fn trace_json(&self) -> Value {
        let inner = self.lock();
        let mut m = Map::new();
        m.insert("clock".into(), self.clock.load(Ordering::Relaxed).into());
        m.insert("spans".into(), inner.tracer.to_json());
        m.insert("events".into(), inner.events.to_json());
        Value::Object(m)
    }

    /// Canonical trace JSON as a string.
    pub fn trace_string(&self) -> String {
        serde_json::to_string(&self.trace_json())
    }

    /// Human-facing per-span table (logical + wall time). Wall columns
    /// vary run to run; this is for terminals, not for diffing.
    pub fn render_span_table(&self) -> String {
        report::render_span_table(&self.spans())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("observer lock poisoned")
    }
}

/// RAII guard returned by [`Observer::span`]; closes the span on drop.
pub struct SpanGuard<'a> {
    obs: &'a Observer,
    idx: u32,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let now = self.obs.now();
        self.obs.lock().tracer.close(self.idx, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_spans_and_metrics_flow() {
        let obs = Observer::new();
        {
            let _root = obs.span("campaign");
            {
                let _p0 = obs.span("phase0");
                obs.advance(3);
            }
            obs.with_metrics(|m| m.inc("exec.route_tables", 3));
            {
                let _p1 = obs.span("phase1");
                obs.advance(2);
            }
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "campaign");
        assert_eq!((spans[0].start, spans[0].end), (0, 5));
        assert_eq!((spans[1].start, spans[1].end), (0, 3));
        assert_eq!((spans[2].start, spans[2].end), (3, 5));
        assert_eq!(obs.metrics().counter("exec.route_tables"), 3);
    }

    #[test]
    fn shard_merge_order_independent_totals() {
        let shard = |vals: &[u64]| {
            let mut r = MetricsRegistry::new();
            for &v in vals {
                r.inc("tests", v);
                r.observe("lat", &[10.0, 100.0], v as f64);
            }
            r
        };
        let a = Observer::new();
        a.merge_shard(&shard(&[1, 2]));
        a.merge_shard(&shard(&[3, 4, 5]));
        let b = Observer::new();
        b.merge_shard(&shard(&[1, 2, 3, 4]));
        b.merge_shard(&shard(&[5]));
        assert_eq!(a.metrics_string(), b.metrics_string());
    }

    #[test]
    fn trace_json_is_deterministic_given_same_logical_work() {
        let run = || {
            let obs = Observer::new();
            {
                let _s = obs.span("phase");
                obs.advance(7);
                obs.event("unit.merged", "topo:r1", "points=7");
            }
            obs.trace_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observer_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Observer>();
    }
}
