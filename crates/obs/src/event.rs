//! Structured event log: discrete things that happened, with logical
//! timestamps, including every fault absorbed from a
//! [`faultsim::FaultLog`].

use faultsim::{FaultLog, FaultOutcome};
use serde_json::{Map, Value};

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Logical-clock value when the event was recorded.
    pub time: u64,
    /// Dotted event kind, e.g. `"unit.merged"` or `"fault.api_error"`.
    pub kind: String,
    /// What the event is about (unit label, region/VM, …).
    pub scope: String,
    /// Free-form detail, already rendered deterministically.
    pub detail: String,
}

/// Append-only list of [`Event`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Appends one event.
    pub fn push(&mut self, time: u64, kind: &str, scope: &str, detail: impl Into<String>) {
        self.events.push(Event {
            time,
            kind: kind.to_string(),
            scope: scope.to_string(),
            detail: detail.into(),
        });
    }

    /// All events, in append order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Converts every fault in `log` into a `fault.<kind>` event at
    /// logical time `time`.
    ///
    /// Fault times are sim-seconds, not logical ticks, so they land in
    /// the detail string; the events keep the log's canonical order
    /// (PR 1's absorb rules already make that order replay-invariant).
    pub fn absorb_fault_log(&mut self, time: u64, log: &FaultLog) {
        for f in log.faults() {
            let scope = if f.vm.is_empty() {
                f.region.clone()
            } else {
                format!("{}/{}", f.region, f.vm)
            };
            let outcome = match f.outcome {
                FaultOutcome::Unhandled => "unhandled".to_string(),
                FaultOutcome::Recovered {
                    retries,
                    recovered_at,
                } => format!("recovered retries={retries} at={recovered_at}"),
                FaultOutcome::Lost { s_hours } => format!("lost s_hours={s_hours}"),
            };
            let detail = if f.detail.is_empty() {
                format!("t={} {}", f.time, outcome)
            } else {
                format!("t={} {} ({})", f.time, outcome, f.detail)
            };
            self.push(time, &format!("fault.{}", f.kind.name()), &scope, detail);
        }
    }

    /// Canonical JSON array of events.
    pub fn to_json(&self) -> Value {
        Value::Array(
            self.events
                .iter()
                .map(|e| {
                    let mut m = Map::new();
                    m.insert("time".into(), e.time.into());
                    m.insert("kind".into(), e.kind.clone().into());
                    m.insert("scope".into(), e.scope.clone().into());
                    m.insert("detail".into(), e.detail.clone().into());
                    Value::Object(m)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::FaultKind;

    #[test]
    fn absorb_renders_outcomes() {
        let mut log = FaultLog::new();
        let a = log.record(3600, FaultKind::UploadFailure, "us-west1", "vm-0", "day 2");
        log.mark_recovered(a, 2, 3660);
        let b = log.record(7200, FaultKind::VmPreemption, "us-west1", "vm-1", "");
        log.mark_lost(b, 4);

        let mut ev = EventLog::new();
        ev.absorb_fault_log(42, &log);
        assert_eq!(ev.len(), 2);
        assert_eq!(ev.events()[0].kind, "fault.upload_failure");
        assert_eq!(ev.events()[0].scope, "us-west1/vm-0");
        assert_eq!(ev.events()[0].time, 42);
        assert!(ev.events()[0].detail.contains("recovered retries=2"));
        assert!(ev.events()[1].detail.contains("lost s_hours=4"));
    }

    #[test]
    fn json_shape() {
        let mut ev = EventLog::new();
        ev.push(7, "unit.merged", "topo:us-west1", "objects=3 points=9");
        let json = serde_json::to_string(&ev.to_json());
        assert!(json.contains("\"kind\":\"unit.merged\""));
        assert!(json.contains("\"time\":7"));
    }
}
