//! Terminal rendering of recorded spans.

use crate::span::SpanRec;

fn fmt_wall(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders spans as an indented table: name, wall time, logical ticks.
///
/// Wall columns are real elapsed time and vary run to run; logical
/// columns are replay-invariant.
pub fn render_span_table(spans: &[SpanRec]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<42} {:>10} {:>12}\n",
        "span", "wall", "logical"
    ));
    for s in spans {
        let name = format!("{}{}", "  ".repeat(s.depth as usize), s.name);
        out.push_str(&format!(
            "{:<42} {:>10} {:>12}\n",
            name,
            fmt_wall(s.wall_ns),
            s.end.saturating_sub(s.start),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_indented_rows() {
        let spans = vec![
            SpanRec {
                name: "campaign".into(),
                parent: None,
                depth: 0,
                start: 0,
                end: 9,
                wall_ns: 2_500_000,
            },
            SpanRec {
                name: "phase0".into(),
                parent: Some(0),
                depth: 1,
                start: 0,
                end: 4,
                wall_ns: 900,
            },
        ];
        let table = render_span_table(&spans);
        assert!(table.contains("campaign"));
        assert!(table.contains("  phase0"));
        assert!(table.contains("2.5ms"));
        assert!(table.contains("900ns"));
    }
}
