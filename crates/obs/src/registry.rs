//! The metric store: counters, gauges, and fixed-bound histograms.
//!
//! Everything here is built for *deterministic merging*. Worker shards
//! only ever accumulate `u64` counts (counter increments, histogram
//! bucket hits), which are commutative and associative, so merging
//! shards in any grouping yields bit-identical totals no matter how the
//! scheduler partitioned the tasks. Gauges are last-write-wins and must
//! therefore only be set on the serial (main-thread) side of a run.
//!
//! Names are flat dotted strings held in `BTreeMap`s, so iteration and
//! JSON serialization are in canonical (sorted) order for free.

use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// A histogram with fixed, immutable bucket boundaries.
///
/// `counts[i]` counts observations `v <= bounds[i]` (first matching
/// bucket wins); the final slot is the overflow bucket. There is
/// deliberately **no** floating-point sum accumulator: f64 addition is
/// non-associative, and per-worker shard grouping depends on
/// scheduling, so a sum would break bit-identity across `--jobs N`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` slots; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Adds another histogram's counts into this one.
    ///
    /// # Panics
    /// If the bucket boundaries differ — merging histograms of the same
    /// name but different shapes is always a bug.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "bounds".into(),
            Value::Array(self.bounds.iter().map(|&b| b.into()).collect()),
        );
        m.insert(
            "counts".into(),
            Value::Array(self.counts.iter().map(|&c| c.into()).collect()),
        );
        m.insert("total".into(), self.total.into());
        Value::Object(m)
    }

    fn from_json(v: &Value) -> Result<Histogram, String> {
        let arr = |k: &str| -> Result<Vec<Value>, String> {
            v.get(k)
                .and_then(|x| x.as_array())
                .cloned()
                .ok_or_else(|| format!("histogram missing {k:?} array"))
        };
        let bounds: Vec<f64> = arr("bounds")?
            .iter()
            .map(|x| x.as_f64().ok_or("histogram bound must be a number"))
            .collect::<Result<_, _>>()?;
        let counts: Vec<u64> = arr("counts")?
            .iter()
            .map(|x| x.as_u64().ok_or("histogram count must be a u64"))
            .collect::<Result<_, _>>()?;
        if counts.len() != bounds.len() + 1 {
            return Err("histogram counts/bounds length mismatch".into());
        }
        let total = v
            .get("total")
            .and_then(|x| x.as_u64())
            .ok_or("histogram missing total")?;
        if counts.iter().sum::<u64>() != total {
            return Err("histogram total does not match counts".into());
        }
        Ok(Histogram {
            bounds,
            counts,
            total,
        })
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Cheap to create (three empty maps), so per-worker shards cost
/// nothing up front. Serialization is canonical: sorted names, and
/// only replay-invariant `u64`/fixed-bound state in shards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        if by == 0 && !self.counters.contains_key(name) {
            // Still materialize the counter so "seen but zero" is
            // distinguishable — and identical across runs.
            self.counters.insert(name.to_string(), 0);
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets gauge `name`. Last write wins: serial-side only.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name`, creating it with `bounds` on
    /// first sight.
    ///
    /// # Panics
    /// If the histogram exists with different bounds.
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        let h = self
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
        assert_eq!(h.bounds(), bounds, "histogram {name:?} bounds changed");
        h.observe(v);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any observation created it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in canonical (sorted) order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in canonical (sorted) order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in canonical (sorted) order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds every metric of `other` into this registry.
    ///
    /// Counters and histograms add (order-independent); gauges are
    /// last-write-wins, so shards produced on worker threads must not
    /// set gauges — only the serial side may.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Canonical JSON: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}` with sorted keys throughout.
    pub fn to_json(&self) -> Value {
        let mut counters = Map::new();
        for (k, &v) in &self.counters {
            counters.insert(k.clone(), v.into());
        }
        let mut gauges = Map::new();
        for (k, &v) in &self.gauges {
            gauges.insert(k.clone(), v.into());
        }
        let mut histograms = Map::new();
        for (k, h) in &self.histograms {
            histograms.insert(k.clone(), h.to_json());
        }
        let mut m = Map::new();
        m.insert("counters".into(), Value::Object(counters));
        m.insert("gauges".into(), Value::Object(gauges));
        m.insert("histograms".into(), Value::Object(histograms));
        Value::Object(m)
    }

    /// Restores a registry serialized by [`Self::to_json`].
    pub fn from_json(v: &Value) -> Result<MetricsRegistry, String> {
        let obj = |k: &str| -> Result<Map, String> {
            match v.get(k) {
                None => Ok(Map::new()),
                Some(Value::Object(m)) => Ok(m.clone()),
                Some(_) => Err(format!("registry {k:?} must be an object")),
            }
        };
        let mut reg = MetricsRegistry::new();
        for (k, x) in obj("counters")? {
            let n = x.as_u64().ok_or_else(|| format!("counter {k:?} not u64"))?;
            reg.counters.insert(k, n);
        }
        for (k, x) in obj("gauges")? {
            let n = x.as_f64().ok_or_else(|| format!("gauge {k:?} not f64"))?;
            reg.gauges.insert(k, n);
        }
        for (k, x) in obj("histograms")? {
            reg.histograms.insert(k, Histogram::from_json(&x)?);
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 5.0, 10.0]);
        for v in [0.5, 1.0, 3.0, 10.0, 99.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_rejects_shape_mismatch() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn merge_is_grouping_independent() {
        // Simulate three worker shards with arbitrary task grouping.
        let obs = [0.5, 2.0, 7.0, 0.1, 9.0, 3.0, 100.0];
        let bounds = [1.0, 5.0, 10.0];
        let shard = |vals: &[f64]| {
            let mut r = MetricsRegistry::new();
            for &v in vals {
                r.inc("n", 1);
                r.observe("h", &bounds, v);
            }
            r
        };
        let mut a = MetricsRegistry::new();
        a.merge(&shard(&obs[..3]));
        a.merge(&shard(&obs[3..5]));
        a.merge(&shard(&obs[5..]));

        let mut b = MetricsRegistry::new();
        b.merge(&shard(&obs[..6]));
        b.merge(&shard(&obs[6..]));

        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.to_json()),
            serde_json::to_string(&b.to_json())
        );
        assert_eq!(a.counter("n"), 7);
    }

    #[test]
    fn zero_inc_materializes_counter() {
        let mut r = MetricsRegistry::new();
        r.inc("seen", 0);
        assert_eq!(r.counter("seen"), 0);
        assert!(serde_json::to_string(&r.to_json()).contains("seen"));
    }

    #[test]
    fn json_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.inc("a.b", 3);
        r.inc("a.c", 0);
        r.set_gauge("g", 2.5);
        r.observe("h", &[1.0, 2.0], 1.5);
        r.observe("h", &[1.0, 2.0], 9.0);
        let back = MetricsRegistry::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
        assert_eq!(
            serde_json::to_string(&r.to_json()),
            serde_json::to_string(&back.to_json())
        );
    }

    #[test]
    fn from_json_rejects_bad_total() {
        let mut r = MetricsRegistry::new();
        r.observe("h", &[1.0], 0.5);
        let mut v = r.to_json();
        if let Value::Object(m) = &mut v {
            if let Some(Value::Object(hs)) = m.get_mut("histograms") {
                if let Some(Value::Object(h)) = hs.get_mut("h") {
                    h.insert("total".into(), 99u64.into());
                }
            }
        }
        assert!(MetricsRegistry::from_json(&v).is_err());
    }
}
