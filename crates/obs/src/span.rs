//! Hierarchical span timers on a logical clock.
//!
//! Spans measure two clocks at once. The *logical* clock is an
//! explicitly-advanced counter of canonical work quanta (route tables
//! warmed, units prepped, points ingested, …) — it is a pure function
//! of the campaign's inputs, so span start/end values are bit-identical
//! across `--jobs N` and across checkpoint resumes. The *wall* clock is
//! real elapsed nanoseconds, kept for human-facing reports but
//! **excluded from JSON** so trace files stay byte-comparable.
//!
//! Spans must be opened and closed on the deterministic (main) thread:
//! the tree shape is part of the replayable output.

use serde_json::{Map, Value};
use std::time::Instant;

/// One completed (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Span name, e.g. `"phase2:vm_exec"`.
    pub name: String,
    /// Index of the enclosing span, if any.
    pub parent: Option<u32>,
    /// Nesting depth (root spans are 0).
    pub depth: u32,
    /// Logical-clock value at open.
    pub start: u64,
    /// Logical-clock value at close (== `start` while open).
    pub end: u64,
    /// Wall-clock nanoseconds between open and close. Real time: NOT
    /// serialized, varies run to run.
    pub wall_ns: u64,
}

/// Records spans in open order and tracks the current nesting stack.
#[derive(Debug, Default)]
pub struct Tracer {
    spans: Vec<SpanRec>,
    stack: Vec<u32>,
    opened: Vec<Instant>,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Opens a span named `name` at logical time `now`; returns its
    /// index for [`Self::close`].
    pub fn open(&mut self, name: &str, now: u64) -> u32 {
        let idx = self.spans.len() as u32;
        let parent = self.stack.last().copied();
        self.spans.push(SpanRec {
            name: name.to_string(),
            parent,
            depth: self.stack.len() as u32,
            start: now,
            end: now,
            wall_ns: 0,
        });
        self.stack.push(idx);
        self.opened.push(Instant::now());
        idx
    }

    /// Closes span `idx` at logical time `now`.
    ///
    /// Spans close LIFO; closing a span that is not innermost also
    /// closes everything opened inside it (guard drops run outer-last,
    /// so this only matters on unwind paths).
    pub fn close(&mut self, idx: u32, now: u64) {
        while let Some(&top) = self.stack.last() {
            self.stack.pop();
            let started = self.opened.pop().expect("opened stack tracks span stack");
            let span = &mut self.spans[top as usize];
            span.end = now;
            span.wall_ns = started.elapsed().as_nanos() as u64;
            if top == idx {
                break;
            }
        }
    }

    /// All spans, in open order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    /// Canonical JSON array of spans. Wall time is intentionally
    /// omitted: the result is a pure function of the campaign inputs.
    pub fn to_json(&self) -> Value {
        Value::Array(
            self.spans
                .iter()
                .map(|s| {
                    let mut m = Map::new();
                    m.insert("name".into(), s.name.clone().into());
                    m.insert(
                        "parent".into(),
                        match s.parent {
                            Some(p) => (p as u64).into(),
                            None => Value::Null,
                        },
                    );
                    m.insert("depth".into(), (s.depth as u64).into());
                    m.insert("start".into(), s.start.into());
                    m.insert("end".into(), s.end.into());
                    Value::Object(m)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_logical_durations() {
        let mut t = Tracer::new();
        let root = t.open("campaign", 0);
        let a = t.open("phase0", 0);
        t.close(a, 4);
        let b = t.open("phase1", 4);
        t.close(b, 9);
        t.close(root, 9);

        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "campaign");
        assert_eq!(spans[0].depth, 0);
        assert_eq!((spans[0].start, spans[0].end), (0, 9));
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].depth, 1);
        assert_eq!((spans[1].start, spans[1].end), (0, 4));
        assert_eq!((spans[2].start, spans[2].end), (4, 9));
    }

    #[test]
    fn json_excludes_wall_time() {
        let mut t = Tracer::new();
        let s = t.open("x", 1);
        t.close(s, 2);
        let json = serde_json::to_string(&t.to_json());
        assert!(json.contains("\"name\":\"x\""));
        assert!(!json.contains("wall"));
    }

    #[test]
    fn closing_outer_span_closes_inner() {
        let mut t = Tracer::new();
        let outer = t.open("outer", 0);
        let _inner = t.open("inner", 1);
        t.close(outer, 5);
        assert!(t.stack.is_empty());
        assert_eq!(t.spans[1].end, 5);
        assert_eq!(t.spans[0].end, 5);
    }
}
