//! Empirical cumulative distribution functions.
//!
//! Fig. 5 of the paper plots CDFs of the relative tier difference
//! `Δ_m(S,t)`; this module provides the ECDF evaluated at arbitrary points
//! plus an export of the step function for plotting.

/// An empirical CDF built from a finite sample.
///
/// ```
/// use clasp_stats::Ecdf;
/// let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(e.eval(2.5), 0.5);
/// assert_eq!(e.eval(4.0), 1.0);
/// ```
///
/// The constructor sorts a copy of the sample once; evaluation is then a
/// binary search, so evaluating the CDF at many points (as the plot
/// renderers do) is cheap.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from `sample`. NaN values are dropped.
    ///
    /// Returns `None` when the sample contains no finite values.
    pub fn new(sample: &[f64]) -> Option<Self> {
        let mut sorted: Vec<f64> = sample.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        Some(Self { sorted })
    }

    /// Number of (finite) observations backing the ECDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the ECDF holds no observations (never the case for a
    /// successfully constructed value, kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we
        // predicate on `v <= x` over a sorted slice.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of the sample strictly below `x`, i.e. `P(X < x)`.
    pub fn eval_strict(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v < x);
        count as f64 / self.sorted.len() as f64
    }

    /// Returns the step-function support points `(x_i, F(x_i))` suitable for
    /// plotting; one point per distinct observation.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < self.sorted.len() && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n));
            i = j;
        }
        out
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Inverse CDF by linear interpolation (used to sample display grids).
    pub fn inverse(&self, q: f64) -> f64 {
        crate::percentile::quantile_sorted(&self.sorted, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_or_all_nan_is_none() {
        assert!(Ecdf::new(&[]).is_none());
        assert!(Ecdf::new(&[f64::NAN, f64::NAN]).is_none());
    }

    #[test]
    fn eval_basic_steps() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn strict_vs_inclusive_at_atom() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.eval(1.0), 0.5);
        assert_eq!(e.eval_strict(1.0), 0.0);
    }

    #[test]
    fn nan_dropped_not_counted() {
        let e = Ecdf::new(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.eval(2.0), 0.5);
    }

    #[test]
    fn steps_deduplicate() {
        let e = Ecdf::new(&[2.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.steps(), vec![(1.0, 1.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn min_max_inverse() {
        let e = Ecdf::new(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 5.0);
        assert_eq!(e.inverse(0.5), 3.0);
    }

    #[test]
    fn monotone_nondecreasing() {
        let e = Ecdf::new(&[0.3, -1.2, 4.5, 2.2, 2.2]).unwrap();
        let mut prev = 0.0;
        for i in -20..=60 {
            let f = e.eval(i as f64 / 10.0);
            assert!(f >= prev, "ECDF must be monotone");
            prev = f;
        }
    }
}
