//! Quantile and percentile estimation.
//!
//! The paper reports 95th-percentile throughput and 5th-percentile latency
//! "instead of the maximum throughput and lowest latency, to mitigate
//! outliers" (§4.1). We use the linear-interpolation estimator (type 7 in
//! the Hyndman–Fan taxonomy, the R/NumPy default) so results are stable
//! under small sample-size changes.

/// Returns the `q`-quantile (`0.0 ..= 1.0`) of `data` using linear
/// interpolation between order statistics.
///
/// ```
/// let sample = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(clasp_stats::quantile(&sample, 0.5), Some(25.0));
/// assert_eq!(clasp_stats::quantile(&[], 0.5), None);
/// ```
///
/// The input does not need to be sorted; a sorted copy is made internally.
/// Returns `None` for an empty slice or a `q` outside `[0, 1]`. NaN values
/// are rejected (returns `None`) rather than silently mis-sorted.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&q) || data.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    Some(quantile_sorted(&sorted, q))
}

/// Like [`quantile`] but assumes `sorted` is already ascending and NaN-free.
///
/// This avoids the copy-and-sort when the caller computes many quantiles of
/// the same sample (as Fig. 4 does for every server-month).
///
/// # Panics
/// Panics if `sorted` is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Returns the `p`-th percentile (`0.0 ..= 100.0`) of `data`.
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    quantile(data, p / 100.0)
}

/// Returns the median of `data`.
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_yields_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn out_of_range_q_yields_none() {
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
    }

    #[test]
    fn nan_rejected() {
        assert_eq!(quantile(&[1.0, f64::NAN], 0.5), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.5), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn median_of_odd_sample_is_middle() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
    }

    #[test]
    fn extremes_are_min_and_max() {
        let data = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(9.0));
    }

    #[test]
    fn p95_of_uniform_grid() {
        // 0..=100 inclusive: p95 lands exactly on 95.
        let data: Vec<f64> = (0..=100).map(f64::from).collect();
        assert_eq!(percentile(&data, 95.0), Some(95.0));
        assert_eq!(percentile(&data, 5.0), Some(5.0));
    }

    #[test]
    fn interpolation_between_order_statistics() {
        // Four points, q=0.25 → pos 0.75 → 10 + 0.75*(20-10) = 17.5.
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&data, 0.25), Some(17.5));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let data = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(quantile(&data, 0.25), Some(17.5));
    }

    #[test]
    fn finite_inputs_yield_finite_quantiles() {
        // NaN-free guarantee for the serve layer: whatever rank an
        // arbitrary client asks for, finite samples must produce a
        // finite estimate (including extreme magnitudes, where naive
        // `lo + (hi - lo) * frac` could overflow to infinity only if
        // the spread itself overflows — these stay in range).
        let data = [-1e300, -2.5, 0.0, 2.5, 1e300];
        for q in [0.0, 0.001, 0.25, 0.5, 0.75, 0.999, 1.0] {
            let v = quantile(&data, q).expect("finite input");
            assert!(v.is_finite(), "q={q} -> {v}");
        }
        for p in [0.0, 5.0, 50.0, 95.0, 100.0] {
            let v = percentile(&data, p).expect("finite input");
            assert!(v.is_finite(), "p={p} -> {v}");
        }
    }

    #[test]
    fn two_sample_interpolation_spans_the_range() {
        // The smallest non-degenerate sample: every rank interpolates
        // linearly between the two order statistics, never outside.
        let data = [10.0, 20.0];
        assert_eq!(quantile(&data, 0.0), Some(10.0));
        assert_eq!(quantile(&data, 0.5), Some(15.0));
        assert_eq!(quantile(&data, 1.0), Some(20.0));
        for q in [0.1, 0.3, 0.7, 0.9] {
            let v = quantile(&data, q).unwrap();
            assert!((10.0..=20.0).contains(&v), "q={q} -> {v}");
        }
    }

    #[test]
    fn equal_samples_are_a_fixed_point() {
        // Interpolation between equal order statistics must return the
        // value exactly (no `x + 0 * eps` drift).
        let data = [7.25; 9];
        for q in [0.0, 0.33, 0.5, 0.66, 1.0] {
            assert_eq!(quantile(&data, q), Some(7.25));
        }
    }

    #[test]
    fn quantile_sorted_matches_quantile() {
        let mut data = vec![9.0, 2.0, 7.0, 7.0, 1.0, 5.5];
        let q = quantile(&data, 0.9).unwrap();
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(quantile_sorted(&data, 0.9), q);
    }
}
