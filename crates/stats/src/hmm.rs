//! A two-state Gaussian hidden Markov model.
//!
//! The second §5 extension: "hidden Markov model \[28\] to capture changes
//! and patterns in throughput and latency data to detect different types
//! of congestion events" (the paper cites Mouchet et al.'s HMM RTT
//! characterisation). This is a small, dependency-free implementation of
//! a 2-state Gaussian HMM — states ≈ {uncongested, congested} — with
//! Baum–Welch training (in log space) and Viterbi decoding. The
//! `clasp-core` congestion module layers the congestion semantics on top.

/// Model parameters for `K = 2` states.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianHmm {
    /// Initial state distribution (length 2).
    pub pi: [f64; 2],
    /// Transition matrix, `trans[i][j] = P(j at t+1 | i at t)`.
    pub trans: [[f64; 2]; 2],
    /// Per-state emission mean.
    pub mean: [f64; 2],
    /// Per-state emission standard deviation (floored).
    pub std: [f64; 2],
}

const STD_FLOOR: f64 = 1e-3;
const LOG_EPS: f64 = -1e12;

fn ln_gauss(x: f64, mean: f64, std: f64) -> f64 {
    let s = std.max(STD_FLOOR);
    let z = (x - mean) / s;
    -0.5 * z * z - s.ln() - 0.918_938_533_204_672_7 // ln(sqrt(2π))
}

fn ln_sum_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let m = a.max(b);
    m + ((a - m).exp() + (b - m).exp()).ln()
}

impl GaussianHmm {
    /// A data-driven starting point: state 0 around the upper third of
    /// the sample, state 1 around the lower third, sticky transitions.
    pub fn init_from(data: &[f64]) -> Option<Self> {
        if data.len() < 4 {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
        let hi = crate::percentile::quantile_sorted(&sorted, 0.75);
        let lo = crate::percentile::quantile_sorted(&sorted, 0.25);
        if hi <= lo {
            return None; // degenerate sample
        }
        let spread = ((hi - lo) / 2.0).max(STD_FLOOR);
        Some(Self {
            pi: [0.9, 0.1],
            trans: [[0.9, 0.1], [0.2, 0.8]],
            mean: [hi, lo],
            std: [spread, spread],
        })
    }

    /// Log-likelihood of `data` under the model (forward algorithm).
    pub fn log_likelihood(&self, data: &[f64]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut alpha = [
            self.pi[0].max(1e-300).ln() + ln_gauss(data[0], self.mean[0], self.std[0]),
            self.pi[1].max(1e-300).ln() + ln_gauss(data[0], self.mean[1], self.std[1]),
        ];
        for &x in &data[1..] {
            let mut next = [LOG_EPS; 2];
            for (j, nj) in next.iter_mut().enumerate() {
                let from0 = alpha[0] + self.trans[0][j].max(1e-300).ln();
                let from1 = alpha[1] + self.trans[1][j].max(1e-300).ln();
                *nj = ln_sum_exp(from0, from1) + ln_gauss(x, self.mean[j], self.std[j]);
            }
            alpha = next;
        }
        ln_sum_exp(alpha[0], alpha[1])
    }

    /// One Baum–Welch iteration; returns the updated model and the
    /// pre-update log-likelihood.
    fn em_step(&self, data: &[f64]) -> (Self, f64) {
        let n = data.len();
        // Forward (log).
        let mut alpha = vec![[LOG_EPS; 2]; n];
        for (j, aj) in alpha[0].iter_mut().enumerate() {
            *aj = self.pi[j].max(1e-300).ln() + ln_gauss(data[0], self.mean[j], self.std[j]);
        }
        for t in 1..n {
            for j in 0..2 {
                let a = alpha[t - 1][0] + self.trans[0][j].max(1e-300).ln();
                let b = alpha[t - 1][1] + self.trans[1][j].max(1e-300).ln();
                alpha[t][j] = ln_sum_exp(a, b) + ln_gauss(data[t], self.mean[j], self.std[j]);
            }
        }
        let ll = ln_sum_exp(alpha[n - 1][0], alpha[n - 1][1]);

        // Backward (log).
        let mut beta = vec![[0.0f64; 2]; n];
        for t in (0..n - 1).rev() {
            for i in 0..2 {
                let a = self.trans[i][0].max(1e-300).ln()
                    + ln_gauss(data[t + 1], self.mean[0], self.std[0])
                    + beta[t + 1][0];
                let b = self.trans[i][1].max(1e-300).ln()
                    + ln_gauss(data[t + 1], self.mean[1], self.std[1])
                    + beta[t + 1][1];
                beta[t][i] = ln_sum_exp(a, b);
            }
        }

        // Posteriors.
        let mut gamma = vec![[0.0f64; 2]; n];
        for t in 0..n {
            let g0 = alpha[t][0] + beta[t][0] - ll;
            let g1 = alpha[t][1] + beta[t][1] - ll;
            let norm = ln_sum_exp(g0, g1);
            gamma[t] = [(g0 - norm).exp(), (g1 - norm).exp()];
        }
        // Expected transitions.
        let mut xi_sum = [[0.0f64; 2]; 2];
        for t in 0..n - 1 {
            let mut xis = [[LOG_EPS; 2]; 2];
            let mut norm = f64::NEG_INFINITY;
            for i in 0..2 {
                for j in 0..2 {
                    xis[i][j] = alpha[t][i]
                        + self.trans[i][j].max(1e-300).ln()
                        + ln_gauss(data[t + 1], self.mean[j], self.std[j])
                        + beta[t + 1][j];
                    norm = ln_sum_exp(norm, xis[i][j]);
                }
            }
            for i in 0..2 {
                for (j, xj) in xi_sum[i].iter_mut().enumerate() {
                    *xj += (xis[i][j] - norm).exp();
                }
            }
        }

        // Re-estimate.
        let mut new = self.clone();
        new.pi = [gamma[0][0].max(1e-6), gamma[0][1].max(1e-6)];
        let pin = new.pi[0] + new.pi[1];
        new.pi = [new.pi[0] / pin, new.pi[1] / pin];
        for i in 0..2 {
            let denom: f64 = (0..n - 1).map(|t| gamma[t][i]).sum::<f64>().max(1e-9);
            for (j, xj) in xi_sum[i].iter().enumerate() {
                new.trans[i][j] = (xj / denom).clamp(1e-4, 1.0);
            }
            let row = new.trans[i][0] + new.trans[i][1];
            new.trans[i] = [new.trans[i][0] / row, new.trans[i][1] / row];

            let weight: f64 = (0..n).map(|t| gamma[t][i]).sum::<f64>().max(1e-9);
            let mean: f64 = (0..n).map(|t| gamma[t][i] * data[t]).sum::<f64>() / weight;
            let var: f64 = (0..n)
                .map(|t| gamma[t][i] * (data[t] - mean).powi(2))
                .sum::<f64>()
                / weight;
            new.mean[i] = mean;
            new.std[i] = var.sqrt().max(STD_FLOOR);
        }
        (new, ll)
    }

    /// Trains with Baum–Welch until the log-likelihood improves by less
    /// than `tol` or `max_iters` is reached. Returns the trained model
    /// and the final log-likelihood.
    pub fn train(data: &[f64], max_iters: usize, tol: f64) -> Option<(Self, f64)> {
        let mut model = Self::init_from(data)?;
        let mut last_ll = f64::NEG_INFINITY;
        for _ in 0..max_iters {
            let (next, ll) = model.em_step(data);
            model = next;
            if (ll - last_ll).abs() < tol {
                last_ll = ll;
                break;
            }
            last_ll = ll;
        }
        Some((model, last_ll))
    }

    /// Viterbi decoding: the most likely state sequence (0 = the
    /// higher-mean state by construction of [`Self::init_from`], though
    /// training may swap them — use [`Self::low_state`] to identify the
    /// congested one).
    pub fn viterbi(&self, data: &[f64]) -> Vec<u8> {
        if data.is_empty() {
            return Vec::new();
        }
        let n = data.len();
        let mut delta = vec![[LOG_EPS; 2]; n];
        let mut psi = vec![[0u8; 2]; n];
        for (j, dj) in delta[0].iter_mut().enumerate() {
            *dj = self.pi[j].max(1e-300).ln() + ln_gauss(data[0], self.mean[j], self.std[j]);
        }
        for t in 1..n {
            for j in 0..2 {
                let via0 = delta[t - 1][0] + self.trans[0][j].max(1e-300).ln();
                let via1 = delta[t - 1][1] + self.trans[1][j].max(1e-300).ln();
                let (best, arg) = if via0 >= via1 { (via0, 0) } else { (via1, 1) };
                delta[t][j] = best + ln_gauss(data[t], self.mean[j], self.std[j]);
                psi[t][j] = arg;
            }
        }
        let mut states = vec![0u8; n];
        states[n - 1] = u8::from(delta[n - 1][1] > delta[n - 1][0]);
        for t in (0..n - 1).rev() {
            states[t] = psi[t + 1][states[t + 1] as usize];
        }
        states
    }

    /// Index of the lower-mean state (the "congested" one for throughput
    /// observations).
    pub fn low_state(&self) -> u8 {
        u8::from(self.mean[1] < self.mean[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A series that sits around `hi` but dips to `lo` for the given
    /// hour ranges each day.
    fn dipping_series(days: usize, hi: f64, lo: f64, dip: std::ops::Range<usize>) -> Vec<f64> {
        (0..days * 24)
            .map(|h| {
                let hour = h % 24;
                let n = (((h * 48271) % 997) as f64 / 997.0 - 0.5) * 0.06;
                if dip.contains(&hour) {
                    lo * (1.0 + n)
                } else {
                    hi * (1.0 + n)
                }
            })
            .collect()
    }

    #[test]
    fn init_requires_spread() {
        assert!(GaussianHmm::init_from(&[1.0, 1.0, 1.0, 1.0]).is_none());
        assert!(GaussianHmm::init_from(&[1.0, 2.0]).is_none());
        assert!(GaussianHmm::init_from(&[1.0, 2.0, 3.0, 4.0]).is_some());
    }

    #[test]
    fn training_improves_likelihood() {
        let data = dipping_series(10, 500.0, 120.0, 19..23);
        let init = GaussianHmm::init_from(&data).unwrap();
        let ll0 = init.log_likelihood(&data);
        let (trained, ll1) = GaussianHmm::train(&data, 30, 1e-4).unwrap();
        assert!(ll1 >= ll0, "EM must not decrease likelihood: {ll0} → {ll1}");
        assert!(trained.std[0] > 0.0 && trained.std[1] > 0.0);
    }

    #[test]
    fn trained_means_separate_the_modes() {
        let data = dipping_series(10, 500.0, 120.0, 19..23);
        let (m, _) = GaussianHmm::train(&data, 40, 1e-4).unwrap();
        let lo = m.mean[m.low_state() as usize];
        let hi = m.mean[1 - m.low_state() as usize];
        assert!((100.0..200.0).contains(&lo), "low mean {lo}");
        assert!((420.0..580.0).contains(&hi), "high mean {hi}");
    }

    #[test]
    fn viterbi_recovers_the_dips() {
        let data = dipping_series(8, 500.0, 120.0, 19..23);
        let (m, _) = GaussianHmm::train(&data, 40, 1e-4).unwrap();
        let states = m.viterbi(&data);
        let low = m.low_state();
        let mut correct = 0;
        for (h, s) in states.iter().enumerate() {
            let hour = h % 24;
            let should_dip = (19..23).contains(&hour);
            if (*s == low) == should_dip {
                correct += 1;
            }
        }
        let acc = correct as f64 / states.len() as f64;
        assert!(acc > 0.95, "viterbi accuracy = {acc}");
    }

    #[test]
    fn flat_series_yields_one_dominant_state() {
        // Noise-only series: viterbi should not flap between states
        // constantly once trained.
        let data: Vec<f64> = (0..300)
            .map(|h| 400.0 + (((h * 48271) % 997) as f64 / 997.0 - 0.5) * 8.0)
            .collect();
        if let Some((m, _)) = GaussianHmm::train(&data, 30, 1e-4) {
            let states = m.viterbi(&data);
            let flips = states.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(flips < states.len() / 4, "{flips} flips");
        }
    }

    #[test]
    fn log_likelihood_prefers_matching_model() {
        let data = dipping_series(6, 500.0, 120.0, 19..23);
        let (good, _) = GaussianHmm::train(&data, 30, 1e-4).unwrap();
        let bad = GaussianHmm {
            pi: [0.5, 0.5],
            trans: [[0.5, 0.5], [0.5, 0.5]],
            mean: [50.0, 60.0],
            std: [1.0, 1.0],
        };
        assert!(good.log_likelihood(&data) > bad.log_likelihood(&data));
    }

    #[test]
    fn viterbi_empty_input() {
        let m = GaussianHmm::init_from(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(m.viterbi(&[]).is_empty());
    }
}
