//! Fixed-width histograms.
//!
//! Used for the hour-of-day congestion probability profiles (Fig. 6): 24
//! bins, each accumulating "congestion events in the hour" over
//! "measurements in the hour".

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets.
///
/// Values outside the range are counted in saturating edge buckets when
/// `clamp` is enabled, otherwise dropped (and counted as `out_of_range`).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    out_of_range: u64,
    clamp: bool,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width buckets.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            out_of_range: 0,
            clamp: false,
        }
    }

    /// Enables clamping: out-of-range values land in the edge buckets.
    pub fn clamped(mut self) -> Self {
        self.clamp = true;
        self
    }

    /// Bucket index for `x`, if in range (or clamped).
    fn index_of(&self, x: f64) -> Option<usize> {
        if x.is_nan() {
            return None;
        }
        let n = self.counts.len();
        if x < self.lo {
            return self.clamp.then_some(0);
        }
        if x >= self.hi {
            return self.clamp.then_some(n - 1);
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        Some(((frac * n as f64) as usize).min(n - 1))
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        match self.index_of(x) {
            Some(i) => self.counts[i] += 1,
            None => self.out_of_range += 1,
        }
    }

    /// Adds `w` observations at `x`.
    pub fn add_n(&mut self, x: f64, w: u64) {
        match self.index_of(x) {
            Some(i) => self.counts[i] += w,
            None => self.out_of_range += w,
        }
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations that fell outside `[lo, hi)` (zero when clamped).
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Total observations recorded in buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let n = self.counts.len();
        let w = (self.hi - self.lo) / n as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }

    /// Normalised bucket frequencies (empty histogram yields all-zero).
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// Ratio-of-histograms helper: per-bucket `events / trials`, with empty
/// buckets reported as 0. This is exactly the paper's hourly congestion
/// probability (# congestion events in the hour / # measurements).
pub fn bucket_probability(events: &Histogram, trials: &Histogram) -> Vec<f64> {
    assert_eq!(
        events.counts.len(),
        trials.counts.len(),
        "histograms must have the same shape"
    );
    events
        .counts
        .iter()
        .zip(&trials.counts)
        .map(|(&e, &t)| if t == 0 { 0.0 } else { e as f64 / t as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn basic_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn upper_edge_is_exclusive() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(10.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.out_of_range(), 1);
    }

    #[test]
    fn clamped_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10).clamped();
        h.add(-5.0);
        h.add(15.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.out_of_range(), 0);
    }

    #[test]
    fn nan_never_counted_even_clamped() {
        let mut h = Histogram::new(0.0, 1.0, 2).clamped();
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
        assert_eq!(h.out_of_range(), 1);
    }

    #[test]
    fn weighted_add() {
        let mut h = Histogram::new(0.0, 24.0, 24);
        h.add_n(13.2, 7);
        assert_eq!(h.counts()[13], 7);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().iter().map(|p| p.0).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for i in 0..50 {
            h.add((i % 5) as f64 / 5.0 + 0.01);
        }
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_frequencies_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.frequencies(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn hourly_probability_ratio() {
        let mut events = Histogram::new(0.0, 24.0, 24);
        let mut trials = Histogram::new(0.0, 24.0, 24);
        for hour in 0..24 {
            trials.add_n(hour as f64 + 0.5, 10);
        }
        events.add_n(20.5, 3); // evening congestion
        let p = bucket_probability(&events, &trials);
        assert_eq!(p[20], 0.3);
        assert_eq!(p[3], 0.0);
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn probability_shape_mismatch_panics() {
        let a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 1.0, 3);
        bucket_probability(&a, &b);
    }
}
