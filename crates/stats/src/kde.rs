//! Gaussian kernel density estimation.
//!
//! Fig. 4 of the paper decorates each scatter plot with "the kernel density
//! of throughput and latency" along the axes. This module provides a plain
//! Gaussian KDE with Silverman's rule-of-thumb bandwidth, which is what the
//! common plotting stacks (seaborn/matplotlib) default to.

/// A Gaussian kernel density estimator over a one-dimensional sample.
#[derive(Debug, Clone)]
pub struct GaussianKde {
    sample: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Builds a KDE with Silverman's rule-of-thumb bandwidth
    /// `0.9 * min(sigma, IQR/1.34) * n^(-1/5)`.
    ///
    /// NaN values are dropped. Returns `None` when fewer than two finite
    /// observations remain or when the sample is degenerate (zero spread),
    /// in which case a density estimate is meaningless.
    pub fn new(sample: &[f64]) -> Option<Self> {
        let clean: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        if clean.len() < 2 {
            return None;
        }
        let n = clean.len() as f64;
        let mean = clean.iter().sum::<f64>() / n;
        let var = clean.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let sigma = var.sqrt();

        let mut sorted = clean.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let iqr = crate::percentile::quantile_sorted(&sorted, 0.75)
            - crate::percentile::quantile_sorted(&sorted, 0.25);

        let spread = if iqr > 0.0 {
            sigma.min(iqr / 1.34)
        } else {
            sigma
        };
        if spread <= 0.0 {
            return None;
        }
        let bandwidth = 0.9 * spread * n.powf(-0.2);
        Some(Self {
            sample: clean,
            bandwidth,
        })
    }

    /// Builds a KDE with an explicit bandwidth (must be positive and finite).
    pub fn with_bandwidth(sample: &[f64], bandwidth: f64) -> Option<Self> {
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return None;
        }
        let clean: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
        if clean.is_empty() {
            return None;
        }
        Some(Self {
            sample: clean,
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Evaluates the density estimate at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
        let h = self.bandwidth;
        let n = self.sample.len() as f64;
        let sum: f64 = self
            .sample
            .iter()
            .map(|&xi| {
                let u = (x - xi) / h;
                (-0.5 * u * u).exp()
            })
            .sum();
        sum * INV_SQRT_2PI / (n * h)
    }

    /// Evaluates the density on an evenly spaced grid of `points` values
    /// spanning `[lo, hi]`; returns `(x, density)` pairs for plotting.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "grid needs at least two points");
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_samples_rejected() {
        assert!(GaussianKde::new(&[]).is_none());
        assert!(GaussianKde::new(&[1.0]).is_none());
        assert!(GaussianKde::new(&[2.0, 2.0, 2.0]).is_none());
        assert!(GaussianKde::new(&[f64::NAN, 1.0]).is_none());
    }

    #[test]
    fn explicit_bandwidth_validation() {
        assert!(GaussianKde::with_bandwidth(&[1.0], 0.0).is_none());
        assert!(GaussianKde::with_bandwidth(&[1.0], f64::NAN).is_none());
        assert!(GaussianKde::with_bandwidth(&[1.0], 1.0).is_some());
    }

    #[test]
    fn density_peaks_near_data() {
        let kde = GaussianKde::new(&[0.0, 0.1, -0.1, 0.05, -0.05]).unwrap();
        assert!(kde.eval(0.0) > kde.eval(1.0));
        assert!(kde.eval(0.0) > kde.eval(-1.0));
    }

    #[test]
    fn density_is_nonnegative_everywhere() {
        let kde = GaussianKde::new(&[1.0, 5.0, 9.0]).unwrap();
        for i in -100..200 {
            assert!(kde.eval(i as f64 / 10.0) >= 0.0);
        }
    }

    #[test]
    fn integrates_to_about_one() {
        let kde = GaussianKde::new(&[0.0, 1.0, 2.0, 3.0, 4.0]).unwrap();
        // Trapezoid rule over a wide window.
        let grid = kde.grid(-20.0, 24.0, 4401);
        let mut integral = 0.0;
        for w in grid.windows(2) {
            integral += 0.5 * (w[0].1 + w[1].1) * (w[1].0 - w[0].0);
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn bimodal_sample_has_two_modes() {
        let mut s = vec![];
        for i in 0..50 {
            s.push(i as f64 * 0.01); // cluster at ~0
            s.push(10.0 + i as f64 * 0.01); // cluster at ~10
        }
        let kde = GaussianKde::new(&s).unwrap();
        let trough = kde.eval(5.0);
        assert!(kde.eval(0.25) > trough * 2.0);
        assert!(kde.eval(10.25) > trough * 2.0);
    }

    #[test]
    fn grid_endpoints_and_length() {
        let kde = GaussianKde::new(&[0.0, 1.0]).unwrap();
        let g = kde.grid(-1.0, 2.0, 4);
        assert_eq!(g.len(), 4);
        assert_eq!(g[0].0, -1.0);
        assert_eq!(g[3].0, 2.0);
    }
}
