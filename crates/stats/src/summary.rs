//! Streaming summary statistics.
//!
//! Welford's online algorithm for mean/variance plus running extrema. The
//! campaign pipeline keeps one `Summary` per (VM, server, day) to compute
//! the peak-to-trough variability `V(s,d)` without retaining raw samples.

/// Online mean / variance / min / max accumulator (Welford).
///
/// ```
/// use clasp_stats::Summary;
/// // A day of throughput samples: V(s,d) = (max-min)/max.
/// let day: Summary = [400.0, 380.0, 120.0, 390.0].into_iter().collect();
/// assert_eq!(day.normalized_variability(), Some(0.7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. NaN observations are ignored.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations accumulated.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (n−1 denominator); `None` with fewer than two points.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Peak-to-trough range `max − min`; `None` when empty.
    pub fn range(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max - self.min)
    }

    /// The paper's normalised peak-to-trough variability
    /// `V = (max − min) / max` (§3.3). `None` when empty or when the peak
    /// is not positive (throughput of 0 for a whole day carries no
    /// variability signal).
    pub fn normalized_variability(&self) -> Option<f64> {
        if self.n == 0 || self.max <= 0.0 {
            return None;
        }
        Some((self.max - self.min) / self.max)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.normalized_variability(), None);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [5.0].into_iter().collect();
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), None);
        assert_eq!(s.range(), Some(0.0));
        assert_eq!(s.normalized_variability(), Some(0.0));
    }

    #[test]
    fn known_mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Sample variance of that classic set is 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn nan_is_skipped() {
        let s: Summary = [1.0, f64::NAN, 3.0].into_iter().collect();
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn variability_matches_formula() {
        let s: Summary = [100.0, 400.0, 250.0].into_iter().collect();
        assert!((s.normalized_variability().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn variability_none_for_nonpositive_peak() {
        let s: Summary = [0.0, 0.0].into_iter().collect();
        assert_eq!(s.normalized_variability(), None);
        let s: Summary = [-3.0, -1.0].into_iter().collect();
        assert_eq!(s.normalized_variability(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let all: Summary = data.into_iter().collect();
        let mut a: Summary = data[..4].iter().copied().collect();
        let b: Summary = data[4..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - all.variance().unwrap()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        a.merge(&Summary::new());
        assert_eq!(a.count(), 2);
        let mut e = Summary::new();
        let b: Summary = [1.0, 2.0].into_iter().collect();
        e.merge(&b);
        assert_eq!(e.mean(), Some(1.5));
    }
}
