//! Autocorrelation analysis.
//!
//! §5 of the paper: "we will improve our congestion detection method
//! using time series analysis approaches, such as autocorrelation \[11\]
//! ... to capture changes and patterns in throughput and latency data".
//! This module implements that extension: the sample autocorrelation
//! function and a diurnal-periodicity detector built on it (a strong
//! lag-24 peak in hourly throughput is the signature of time-of-day
//! congestion, per Dhamdhere et al.'s interdomain congestion work the
//! paper cites).

/// Sample autocorrelation of `series` at `lag`.
///
/// ```
/// // A perfectly periodic series correlates strongly at its period.
/// let s: Vec<f64> = (0..96).map(|h| ((h % 24) as f64)).collect();
/// let a24 = clasp_stats::autocorrelation(&s, 24).unwrap();
/// assert!(a24 > 0.7);
/// ```
///
/// Uses the biased estimator (normalising by `n`), which keeps the ACF
/// positive semi-definite. Returns `None` when the series is shorter than
/// `lag + 2` or has zero variance.
pub fn autocorrelation(series: &[f64], lag: usize) -> Option<f64> {
    let n = series.len();
    if n < lag + 2 {
        return None;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|v| (v - mean).powi(2)).sum();
    if var <= 0.0 {
        return None;
    }
    let cov: f64 = series[..n - lag]
        .iter()
        .zip(&series[lag..])
        .map(|(a, b)| (a - mean) * (b - mean))
        .sum();
    Some(cov / var)
}

/// The autocorrelation function for lags `0..=max_lag`.
pub fn acf(series: &[f64], max_lag: usize) -> Vec<f64> {
    (0..=max_lag)
        .map(|lag| autocorrelation(series, lag).unwrap_or(0.0))
        .collect()
}

/// Diurnal-periodicity verdict for an hourly series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalSignal {
    /// ACF at lag 24 (one local day).
    pub acf_24: f64,
    /// Mean ACF at the non-harmonic lags 6..18 (the "background").
    pub background: f64,
    /// Whether the lag-24 peak stands out of the background.
    pub is_diurnal: bool,
}

/// Threshold by which the lag-24 autocorrelation must exceed the
/// non-harmonic background to call a series diurnal.
pub const DIURNAL_MARGIN: f64 = 0.15;

/// Detects time-of-day structure in an hourly series: a clear ACF peak at
/// lag 24 relative to intermediate lags.
pub fn diurnal_signal(hourly: &[f64]) -> Option<DiurnalSignal> {
    let acf_24 = autocorrelation(hourly, 24)?;
    let mid: Vec<f64> = (6..=18)
        .filter_map(|lag| autocorrelation(hourly, lag))
        .collect();
    if mid.is_empty() {
        return None;
    }
    let background = mid.iter().sum::<f64>() / mid.len() as f64;
    Some(DiurnalSignal {
        acf_24,
        background,
        is_diurnal: acf_24 > background + DIURNAL_MARGIN && acf_24 > 0.2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sinusoid_24(days: usize, amp: f64, noise: f64) -> Vec<f64> {
        (0..days * 24)
            .map(|h| {
                let phase = (h % 24) as f64 / 24.0 * std::f64::consts::TAU;
                // Deterministic pseudo-noise.
                let n = ((h * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                500.0 + amp * phase.sin() + noise * n
            })
            .collect()
    }

    #[test]
    fn lag_zero_is_one() {
        let s = sinusoid_24(5, 100.0, 10.0);
        assert!((autocorrelation(&s, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_or_flat_series_yield_none() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), None);
        assert_eq!(autocorrelation(&[3.0; 50], 1), None);
    }

    #[test]
    fn periodic_series_peaks_at_period() {
        let s = sinusoid_24(10, 150.0, 20.0);
        let a24 = autocorrelation(&s, 24).unwrap();
        let a11 = autocorrelation(&s, 11).unwrap();
        assert!(a24 > 0.7, "acf24 = {a24}");
        assert!(a24 > a11 + 0.5);
    }

    #[test]
    fn acf_has_expected_length_and_bounds() {
        let s = sinusoid_24(6, 80.0, 30.0);
        let f = acf(&s, 48);
        assert_eq!(f.len(), 49);
        for v in &f {
            assert!((-1.0001..=1.0001).contains(v));
        }
        assert!(f[48] > 0.3, "two-day lag echoes the period: {}", f[48]);
    }

    #[test]
    fn diurnal_detector_flags_diurnal_series() {
        let s = sinusoid_24(10, 150.0, 25.0);
        let d = diurnal_signal(&s).unwrap();
        assert!(d.is_diurnal, "{d:?}");
        assert!(d.acf_24 > d.background);
    }

    #[test]
    fn diurnal_detector_rejects_white_noise() {
        let s: Vec<f64> = (0..240)
            .map(|h| 400.0 + (((h * 2654435761u64 as usize) % 997) as f64 - 498.0))
            .collect();
        let d = diurnal_signal(&s).unwrap();
        assert!(!d.is_diurnal, "{d:?}");
    }

    #[test]
    fn diurnal_detector_rejects_trend_only() {
        // A pure linear trend correlates at every lag — no 24h peak.
        let s: Vec<f64> = (0..240).map(|h| h as f64).collect();
        let d = diurnal_signal(&s).unwrap();
        assert!(!d.is_diurnal, "trend must not read as diurnal: {d:?}");
    }
}
