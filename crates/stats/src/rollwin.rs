//! Sliding-window extrema over a time-ordered stream.
//!
//! The streaming congestion engine needs the maximum and minimum
//! throughput over a trailing time window, updated once per arriving
//! sample in O(1) amortized. The classic structure is a pair of
//! *monotonic deques*: the max-deque keeps a decreasing front-to-back
//! sequence of candidates (anything dominated by a newer, larger sample
//! can never become the window maximum again), the min-deque the
//! increasing mirror. Each sample is pushed and popped at most once, so
//! any run of `n` pushes costs O(n) total regardless of window size.

use std::collections::VecDeque;

/// Monotonic-deque max/min over a trailing `[t − window, t]` time span.
///
/// Samples must arrive with non-decreasing timestamps; out-of-order
/// pushes are rejected (returning `false`) so the caller can count them
/// instead of silently corrupting the deque invariants.
#[derive(Debug, Clone, Default)]
pub struct SlidingExtrema {
    window: u64,
    /// Decreasing values: front is the current maximum.
    maxd: VecDeque<(u64, f64)>,
    /// Increasing values: front is the current minimum.
    mind: VecDeque<(u64, f64)>,
    last_t: Option<u64>,
}

impl SlidingExtrema {
    /// Creates a window of `window` seconds (inclusive of the newest
    /// sample's own instant).
    pub fn new(window: u64) -> Self {
        Self {
            window,
            maxd: VecDeque::new(),
            mind: VecDeque::new(),
            last_t: None,
        }
    }

    /// Pushes `(t, v)`; returns `false` (sample ignored) when `t` is
    /// older than the newest sample already pushed.
    pub fn push(&mut self, t: u64, v: f64) -> bool {
        if self.last_t.is_some_and(|last| t < last) {
            return false;
        }
        self.last_t = Some(t);
        let horizon = t.saturating_sub(self.window);
        while self.maxd.front().is_some_and(|&(ft, _)| ft < horizon) {
            self.maxd.pop_front();
        }
        while self.mind.front().is_some_and(|&(ft, _)| ft < horizon) {
            self.mind.pop_front();
        }
        while self.maxd.back().is_some_and(|&(_, bv)| bv <= v) {
            self.maxd.pop_back();
        }
        while self.mind.back().is_some_and(|&(_, bv)| bv >= v) {
            self.mind.pop_back();
        }
        self.maxd.push_back((t, v));
        self.mind.push_back((t, v));
        true
    }

    /// Current window maximum.
    pub fn max(&self) -> Option<f64> {
        self.maxd.front().map(|&(_, v)| v)
    }

    /// Current window minimum.
    pub fn min(&self) -> Option<f64> {
        self.mind.front().map(|&(_, v)| v)
    }

    /// Normalized peak-to-trough difference `(max − min) / max` over the
    /// window — the paper's `V`, computed live. `None` until a sample
    /// with a positive maximum is in the window.
    pub fn variability(&self) -> Option<f64> {
        match (self.max(), self.min()) {
            (Some(mx), Some(mn)) if mx > 0.0 => Some((mx - mn) / mx),
            _ => None,
        }
    }

    /// Timestamp of the newest accepted sample.
    pub fn last_time(&self) -> Option<u64> {
        self.last_t
    }

    /// True when no sample is inside the window.
    pub fn is_empty(&self) -> bool {
        self.maxd.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrema_track_a_growing_window() {
        let mut w = SlidingExtrema::new(100);
        for (t, v) in [(0, 5.0), (10, 3.0), (20, 8.0), (30, 1.0)] {
            assert!(w.push(t, v));
        }
        assert_eq!(w.max(), Some(8.0));
        assert_eq!(w.min(), Some(1.0));
    }

    #[test]
    fn old_samples_expire() {
        let mut w = SlidingExtrema::new(50);
        w.push(0, 100.0);
        w.push(10, 2.0);
        w.push(100, 5.0); // horizon 50: both earlier samples gone
        assert_eq!(w.max(), Some(5.0));
        assert_eq!(w.min(), Some(5.0));
    }

    #[test]
    fn boundary_sample_still_inside() {
        let mut w = SlidingExtrema::new(50);
        w.push(0, 9.0);
        w.push(50, 1.0); // horizon = 0, the t=0 sample is inclusive
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn out_of_order_rejected() {
        let mut w = SlidingExtrema::new(100);
        assert!(w.push(50, 1.0));
        assert!(!w.push(40, 99.0));
        assert_eq!(w.max(), Some(1.0));
        assert_eq!(w.last_time(), Some(50));
    }

    #[test]
    fn equal_timestamps_accepted() {
        let mut w = SlidingExtrema::new(100);
        assert!(w.push(10, 1.0));
        assert!(w.push(10, 7.0));
        assert_eq!(w.max(), Some(7.0));
        assert_eq!(w.min(), Some(1.0));
    }

    #[test]
    fn variability_matches_direct_computation() {
        let mut w = SlidingExtrema::new(1_000);
        let vals = [400.0, 380.0, 150.0, 410.0, 390.0];
        for (i, &v) in vals.iter().enumerate() {
            w.push(i as u64 * 10, v);
        }
        let mx = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mn = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(w.variability(), Some((mx - mn) / mx));
    }

    #[test]
    fn matches_naive_over_random_walk() {
        // Deterministic pseudo-random walk; compare against a naive
        // rescan at every step.
        let mut w = SlidingExtrema::new(37);
        let mut hist: Vec<(u64, f64)> = Vec::new();
        let mut x = 7u64;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as f64 / 1e6;
            let t = i * 3;
            w.push(t, v);
            hist.push((t, v));
            let horizon = t.saturating_sub(37);
            let in_win: Vec<f64> = hist
                .iter()
                .filter(|&&(ht, _)| ht >= horizon)
                .map(|&(_, hv)| hv)
                .collect();
            let mx = in_win.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mn = in_win.iter().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(w.max(), Some(mx), "step {i}");
            assert_eq!(w.min(), Some(mn), "step {i}");
        }
    }

    #[test]
    fn empty_window_reports_nothing() {
        let w = SlidingExtrema::new(10);
        assert!(w.is_empty());
        assert_eq!(w.max(), None);
        assert_eq!(w.variability(), None);
    }
}
