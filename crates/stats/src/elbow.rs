//! Elbow-point detection on monotone curves.
//!
//! §3.3 of the paper: "We applies the elbow method to locate a cut-off
//! point that would label a reasonable portion (<30%) of VM-server days
//! (s-days) and hours (s-hours) as congested by varying H." The authors
//! sweep the variability threshold `H` from 0 to 1, look at the fraction of
//! s-days labelled congested, and pick the knee of that curve (H = 0.5).
//!
//! We implement the standard maximum-distance-to-chord method (the core of
//! the "Kneedle" algorithm): normalise the curve to the unit square, draw
//! the chord between the first and last points, and return the index whose
//! perpendicular distance to the chord is largest.

/// Returns the index of the elbow (knee) of the curve `(xs[i], ys[i])`.
///
/// The curve is expected to be sampled on increasing `xs`. Returns `None`
/// when fewer than three points are given, when lengths differ, or when the
/// curve is completely flat in either axis (no elbow exists).
pub fn elbow_index(xs: &[f64], ys: &[f64]) -> Option<usize> {
    if xs.len() != ys.len() || xs.len() < 3 {
        return None;
    }
    let (x0, xn) = (xs[0], xs[xs.len() - 1]);
    let (y0, yn) = (ys[0], ys[ys.len() - 1]);
    let dx = xn - x0;
    let dy = yn - y0;
    if dx == 0.0 || dy == 0.0 {
        return None;
    }

    // Normalise into the unit square so the chord distance is scale-free.
    let mut best = (0.0_f64, None);
    for i in 1..xs.len() - 1 {
        let u = (xs[i] - x0) / dx;
        let v = (ys[i] - y0) / dy;
        // Perpendicular distance from (u, v) to the chord (0,0)-(1,1) is
        // |u - v| / sqrt(2); the constant factor does not affect argmax.
        let d = (u - v).abs();
        if d > best.0 {
            best = (d, Some(i));
        }
    }
    best.1
}

/// Convenience wrapper: sweep a labelling function over thresholds and
/// return `(threshold, fraction)` pairs plus the detected elbow threshold.
///
/// `fraction_at` maps a threshold to the fraction of items labelled
/// positive at that threshold; the paper's use is
/// "fraction of s-days with V(s,d) > H".
pub fn threshold_sweep<F>(thresholds: &[f64], mut fraction_at: F) -> (Vec<(f64, f64)>, Option<f64>)
where
    F: FnMut(f64) -> f64,
{
    let curve: Vec<(f64, f64)> = thresholds.iter().map(|&h| (h, fraction_at(h))).collect();
    let xs: Vec<f64> = curve.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = curve.iter().map(|p| p.1).collect();
    let elbow = elbow_index(&xs, &ys).map(|i| xs[i]);
    (curve, elbow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_short_or_mismatched() {
        assert_eq!(elbow_index(&[0.0, 1.0], &[1.0, 0.0]), None);
        assert_eq!(elbow_index(&[0.0, 0.5, 1.0], &[1.0, 0.0]), None);
    }

    #[test]
    fn flat_curve_has_no_elbow() {
        assert_eq!(elbow_index(&[0.0, 0.5, 1.0], &[1.0, 1.0, 1.0]), None);
        assert_eq!(elbow_index(&[1.0, 1.0, 1.0], &[0.0, 0.5, 1.0]), None);
    }

    #[test]
    fn sharp_knee_is_found() {
        // y stays ~1 until x = 0.5 then collapses: elbow at the drop.
        let xs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 0.5 { 1.0 - 0.05 * x } else { 0.5 - x })
            .collect();
        let idx = elbow_index(&xs, &ys).unwrap();
        assert!((4..=6).contains(&idx), "elbow at {idx} (x = {})", xs[idx]);
    }

    #[test]
    fn exponential_decay_knee() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (-8.0 * x).exp()).collect();
        let idx = elbow_index(&xs, &ys).unwrap();
        // Analytic knee of e^(-8x) against the chord is near x = ln(8)/8 ≈ 0.26.
        assert!((0.1..0.45).contains(&xs[idx]), "x = {}", xs[idx]);
    }

    #[test]
    fn straight_line_distance_is_tiny() {
        let xs: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        // A perfectly straight line still returns *an* index (ties broken by
        // first max) but every interior distance is ~0; the function's
        // contract is argmax, so we just require it not to panic.
        let _ = elbow_index(&xs, &ys);
    }

    #[test]
    fn sweep_reports_curve_and_elbow() {
        let thresholds: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let (curve, elbow) = threshold_sweep(&thresholds, |h| (-6.0 * h).exp());
        assert_eq!(curve.len(), 21);
        let h = elbow.unwrap();
        assert!((0.1..0.6).contains(&h), "elbow h = {h}");
    }
}
