//! Elbow-point detection on monotone curves.
//!
//! §3.3 of the paper: "We applies the elbow method to locate a cut-off
//! point that would label a reasonable portion (<30%) of VM-server days
//! (s-days) and hours (s-hours) as congested by varying H." The authors
//! sweep the variability threshold `H` from 0 to 1, look at the fraction of
//! s-days labelled congested, and pick the knee of that curve (H = 0.5).
//!
//! We implement the standard maximum-distance-to-chord method (the core of
//! the "Kneedle" algorithm): normalise the curve to the unit square, draw
//! the chord between the first and last points, and return the index whose
//! perpendicular distance to the chord is largest.

/// Returns the index of the elbow (knee) of the curve `(xs[i], ys[i])`.
///
/// The curve is expected to be sampled on increasing `xs`. Returns `None`
/// when fewer than three points are given, when lengths differ, or when the
/// curve is completely flat in either axis (no elbow exists).
pub fn elbow_index(xs: &[f64], ys: &[f64]) -> Option<usize> {
    if xs.len() != ys.len() || xs.len() < 3 {
        return None;
    }
    let (x0, xn) = (xs[0], xs[xs.len() - 1]);
    let (y0, yn) = (ys[0], ys[ys.len() - 1]);
    let dx = xn - x0;
    let dy = yn - y0;
    if dx == 0.0 || dy == 0.0 {
        return None;
    }

    // Normalise into the unit square so the chord distance is scale-free.
    let mut best = (0.0_f64, None);
    for i in 1..xs.len() - 1 {
        let u = (xs[i] - x0) / dx;
        let v = (ys[i] - y0) / dy;
        // Perpendicular distance from (u, v) to the chord (0,0)-(1,1) is
        // |u - v| / sqrt(2); the constant factor does not affect argmax.
        let d = (u - v).abs();
        if d > best.0 {
            best = (d, Some(i));
        }
    }
    best.1
}

/// Convenience wrapper: sweep a labelling function over thresholds and
/// return `(threshold, fraction)` pairs plus the detected elbow threshold.
///
/// `fraction_at` maps a threshold to the fraction of items labelled
/// positive at that threshold; the paper's use is
/// "fraction of s-days with V(s,d) > H".
pub fn threshold_sweep<F>(thresholds: &[f64], mut fraction_at: F) -> (Vec<(f64, f64)>, Option<f64>)
where
    F: FnMut(f64) -> f64,
{
    let curve: Vec<(f64, f64)> = thresholds.iter().map(|&h| (h, fraction_at(h))).collect();
    let xs: Vec<f64> = curve.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = curve.iter().map(|p| p.1).collect();
    let elbow = elbow_index(&xs, &ys).map(|i| xs[i]);
    (curve, elbow)
}

/// Incremental threshold sweep: the online counterpart of
/// [`threshold_sweep`] over the paper's `V(s,d)` values.
///
/// Maintains, for every sweep threshold `h_k = k / steps`, the exact
/// count of observed values with `v > h_k` — a cumulative histogram of
/// the variability distribution keyed by the sweep grid. Adding an
/// observation is O(steps) in the worst case (and exits early once the
/// thresholds exceed the value), which in the streaming engine happens
/// once per *series-day*, not per point; querying the elbow is
/// O(steps). The curve it produces is identical to rebuilding
/// [`threshold_sweep`] over the full value set, because each counter
/// applies the very same strict `v > h` comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingElbow {
    /// `above[k]` = number of values `v` with `v > k / steps`.
    above: Vec<u64>,
    total: u64,
}

impl StreamingElbow {
    /// A sweep over `steps + 1` thresholds `0/steps ..= steps/steps`.
    ///
    /// # Panics
    /// Panics when `steps < 2` (an elbow needs at least 3 curve points).
    pub fn new(steps: usize) -> Self {
        assert!(steps >= 2, "elbow sweep needs at least 3 thresholds");
        Self {
            above: vec![0; steps + 1],
            total: 0,
        }
    }

    /// Number of sweep intervals (`thresholds() - 1`).
    pub fn steps(&self) -> usize {
        self.above.len() - 1
    }

    /// Records one observed value.
    pub fn add(&mut self, v: f64) {
        self.total += 1;
        let steps = self.steps();
        for (k, slot) in self.above.iter_mut().enumerate() {
            if v > k as f64 / steps as f64 {
                *slot += 1;
            } else {
                // Thresholds increase with k, so no later one can pass.
                break;
            }
        }
    }

    /// Observations recorded so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact fraction of observations strictly above threshold index `k`.
    pub fn fraction_above(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.above[k] as f64 / self.total as f64
    }

    /// The `(threshold, fraction)` curve, as [`threshold_sweep`] returns.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let steps = self.steps();
        (0..=steps)
            .map(|k| (k as f64 / steps as f64, self.fraction_above(k)))
            .collect()
    }

    /// The current elbow threshold, when one exists.
    pub fn elbow(&self) -> Option<f64> {
        let curve = self.curve();
        let xs: Vec<f64> = curve.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = curve.iter().map(|p| p.1).collect();
        elbow_index(&xs, &ys).map(|i| xs[i])
    }

    /// Raw per-threshold counts (for snapshot/restore).
    pub fn counts(&self) -> &[u64] {
        &self.above
    }

    /// Rebuilds the sweep from snapshot counts.
    ///
    /// # Panics
    /// Panics when fewer than 3 counts are given or they are not
    /// monotonically non-increasing (no value distribution produces an
    /// increasing strict-above curve).
    pub fn from_counts(above: Vec<u64>, total: u64) -> Self {
        assert!(above.len() >= 3, "need at least 3 thresholds");
        assert!(
            above.windows(2).all(|w| w[0] >= w[1]),
            "above-counts must be non-increasing"
        );
        Self { above, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_short_or_mismatched() {
        assert_eq!(elbow_index(&[0.0, 1.0], &[1.0, 0.0]), None);
        assert_eq!(elbow_index(&[0.0, 0.5, 1.0], &[1.0, 0.0]), None);
    }

    #[test]
    fn flat_curve_has_no_elbow() {
        assert_eq!(elbow_index(&[0.0, 0.5, 1.0], &[1.0, 1.0, 1.0]), None);
        assert_eq!(elbow_index(&[1.0, 1.0, 1.0], &[0.0, 0.5, 1.0]), None);
    }

    #[test]
    fn sharp_knee_is_found() {
        // y stays ~1 until x = 0.5 then collapses: elbow at the drop.
        let xs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 0.5 { 1.0 - 0.05 * x } else { 0.5 - x })
            .collect();
        let idx = elbow_index(&xs, &ys).unwrap();
        assert!((4..=6).contains(&idx), "elbow at {idx} (x = {})", xs[idx]);
    }

    #[test]
    fn exponential_decay_knee() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (-8.0 * x).exp()).collect();
        let idx = elbow_index(&xs, &ys).unwrap();
        // Analytic knee of e^(-8x) against the chord is near x = ln(8)/8 ≈ 0.26.
        assert!((0.1..0.45).contains(&xs[idx]), "x = {}", xs[idx]);
    }

    #[test]
    fn straight_line_distance_is_tiny() {
        let xs: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        // A perfectly straight line still returns *an* index (ties broken by
        // first max) but every interior distance is ~0; the function's
        // contract is argmax, so we just require it not to panic.
        let _ = elbow_index(&xs, &ys);
    }

    #[test]
    fn sweep_reports_curve_and_elbow() {
        let thresholds: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
        let (curve, elbow) = threshold_sweep(&thresholds, |h| (-6.0 * h).exp());
        assert_eq!(curve.len(), 21);
        let h = elbow.unwrap();
        assert!((0.1..0.6).contains(&h), "elbow h = {h}");
    }

    /// Values with a heavy low mode and a thin high tail; the streaming
    /// sweep must agree with the batch sweep on the whole curve and on
    /// the elbow, point for point.
    #[test]
    fn streaming_matches_batch_sweep() {
        let values: Vec<f64> = (0..400)
            .map(|i| {
                let x = i as f64 / 400.0;
                if i % 7 == 0 {
                    0.5 + x / 2.0
                } else {
                    x * 0.3
                }
            })
            .collect();
        let steps = 20usize;
        let mut online = StreamingElbow::new(steps);
        for &v in &values {
            online.add(v);
        }
        let thresholds: Vec<f64> = (0..=steps).map(|k| k as f64 / steps as f64).collect();
        let (batch_curve, batch_elbow) = threshold_sweep(&thresholds, |h| {
            values.iter().filter(|&&v| v > h).count() as f64 / values.len() as f64
        });
        assert_eq!(online.curve(), batch_curve);
        assert_eq!(online.elbow(), batch_elbow);
    }

    #[test]
    fn streaming_exact_edge_values() {
        // Values landing exactly on thresholds exercise the strict `>`.
        let mut e = StreamingElbow::new(4);
        for v in [0.0, 0.25, 0.5, 0.75, 1.0] {
            e.add(v);
        }
        // v > 0.0 for four of five; v > 0.25 for three; etc.
        assert_eq!(e.counts(), &[4, 3, 2, 1, 0]);
        assert_eq!(e.total(), 5);
    }

    #[test]
    fn streaming_snapshot_roundtrip() {
        let mut e = StreamingElbow::new(10);
        for i in 0..57 {
            e.add((i % 13) as f64 / 13.0);
        }
        let back = StreamingElbow::from_counts(e.counts().to_vec(), e.total());
        assert_eq!(back, e);
        assert_eq!(back.elbow(), e.elbow());
    }

    #[test]
    fn empty_streaming_sweep_is_flat() {
        let e = StreamingElbow::new(10);
        assert_eq!(e.elbow(), None);
        assert!(e.curve().iter().all(|&(_, f)| f == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least 3 thresholds")]
    fn tiny_streaming_sweep_panics() {
        StreamingElbow::new(1);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn increasing_counts_rejected() {
        StreamingElbow::from_counts(vec![1, 2, 3], 3);
    }
}
