//! Statistics utilities for the CLASP reproduction.
//!
//! This crate collects the numerical building blocks that the paper's
//! analysis pipeline relies on:
//!
//! * [`percentile`](mod@percentile) — quantile estimation used for the "95th percentile
//!   download throughput / 5th percentile latency" scatter plots (Fig. 4);
//! * [`ecdf`] — empirical CDFs used for the tier-comparison plots (Fig. 5);
//! * [`kde`] — Gaussian kernel density estimation used for the marginal
//!   density curves on the Fig. 4 scatter plots;
//! * [`elbow`] — elbow-point detection used to pick the congestion
//!   threshold `H` from the variability sweep (Fig. 2, §3.3);
//! * [`histogram`] — fixed-width binning for hour-of-day congestion
//!   probability profiles (Fig. 6);
//! * [`summary`] — streaming summary statistics (mean/variance/extrema);
//! * [`rollwin`] — monotonic-deque sliding-window extrema, the O(1)
//!   amortized data structure behind the online congestion engine's
//!   live variability windows;
//! * [`autocorr`] and [`hmm`] — the paper's §5 future-work extensions:
//!   autocorrelation-based diurnal detection and a two-state Gaussian
//!   hidden Markov model for state-based congestion detection.
//!
//! All functions are deterministic; none of them touch the system clock or
//! an RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autocorr;
pub mod ecdf;
pub mod elbow;
pub mod histogram;
pub mod hmm;
pub mod kde;
pub mod percentile;
pub mod rollwin;
pub mod summary;

pub use autocorr::{acf, autocorrelation, diurnal_signal};
pub use ecdf::Ecdf;
pub use elbow::{elbow_index, StreamingElbow};
pub use histogram::Histogram;
pub use hmm::GaussianHmm;
pub use kde::GaussianKde;
pub use percentile::{median, percentile, quantile};
pub use rollwin::SlidingExtrema;
pub use summary::Summary;
