//! Property-based tests for the statistics crate.

use clasp_stats::{elbow_index, median, quantile, Ecdf, GaussianKde, Histogram, Summary};
use proptest::prelude::*;

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6_f64, min_len..200)
}

proptest! {
    #[test]
    fn quantile_is_within_sample_range(data in finite_vec(1), q in 0.0..=1.0_f64) {
        let v = quantile(&data, q).unwrap();
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_q(data in finite_vec(1), a in 0.0..=1.0_f64, b in 0.0..=1.0_f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantile(&data, lo).unwrap() <= quantile(&data, hi).unwrap() + 1e-9);
    }

    #[test]
    fn median_is_translation_equivariant(data in finite_vec(1), shift in -1.0e3..1.0e3_f64) {
        let m = median(&data).unwrap();
        let shifted: Vec<f64> = data.iter().map(|v| v + shift).collect();
        let ms = median(&shifted).unwrap();
        prop_assert!((ms - (m + shift)).abs() < 1e-6);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(data in finite_vec(1), probe in finite_vec(2)) {
        let e = Ecdf::new(&data).unwrap();
        let mut xs = probe.clone();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in xs {
            let f = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn ecdf_at_max_is_one(data in finite_vec(1)) {
        let e = Ecdf::new(&data).unwrap();
        prop_assert_eq!(e.eval(e.max()), 1.0);
    }

    #[test]
    fn summary_matches_batch_computation(data in finite_vec(2)) {
        let s: Summary = data.iter().copied().collect();
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        prop_assert!((s.mean().unwrap() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.variance().unwrap() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    #[test]
    fn summary_merge_is_associative_enough(data in finite_vec(3), split in 1usize..100) {
        let cut = split % (data.len() - 1) + 1;
        let whole: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..cut].iter().copied().collect();
        let right: Summary = data[cut..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6 * (1.0 + whole.mean().unwrap().abs()));
    }

    #[test]
    fn variability_is_in_unit_interval_for_positive_data(
        data in prop::collection::vec(0.001..1.0e6_f64, 1..100)
    ) {
        let s: Summary = data.iter().copied().collect();
        let v = s.normalized_variability().unwrap();
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn histogram_conserves_observations(data in finite_vec(1)) {
        let mut h = Histogram::new(-1.0e6, 1.0e6, 32).clamped();
        for &x in &data {
            h.add(x);
        }
        prop_assert_eq!(h.total() as usize, data.len());
    }

    #[test]
    fn kde_nonnegative(data in prop::collection::vec(-100.0..100.0_f64, 2..50), x in -200.0..200.0_f64) {
        if let Some(kde) = GaussianKde::new(&data) {
            prop_assert!(kde.eval(x) >= 0.0);
        }
    }

    #[test]
    fn elbow_index_is_interior(ys in prop::collection::vec(0.0..1.0_f64, 3..50)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        if let Some(i) = elbow_index(&xs, &ys) {
            prop_assert!(i > 0 && i < xs.len() - 1);
        }
    }
}
