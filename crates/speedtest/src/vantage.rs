//! Speedchecker-style edge vantage points.
//!
//! The differential-based selection starts with "a preliminary test to
//! measure latency to GCP regions using Speedchecker, which has vantage
//! points in more than 10,000 networks and 200 countries" (§3.1). Here,
//! vantage points are end hosts spread across `<city, AS>` tuples of the
//! topology; [`VantageSet::probe_tiers`] collects the per-tuple latency
//! samples toward a region's VMs on both tiers, which the selection code
//! reduces to medians and latency classes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simnet::geo::CityId;
use simnet::perf::PerfModel;
use simnet::routing::{Direction, Paths, Tier};
use simnet::time::SimTime;
use simnet::topology::{AsId, Topology};
use std::net::Ipv4Addr;

/// One edge vantage point.
#[derive(Debug, Clone, Copy)]
pub struct VantagePoint {
    /// Index within the set.
    pub id: u32,
    /// Host AS.
    pub as_id: AsId,
    /// Host city.
    pub city: CityId,
    /// Host address.
    pub ip: Ipv4Addr,
}

/// A generated population of vantage points.
#[derive(Debug, Clone)]
pub struct VantageSet {
    /// All vantage points.
    pub vps: Vec<VantagePoint>,
}

/// One latency measurement from a VP to a region on a tier.
#[derive(Debug, Clone, Copy)]
pub struct TierLatencySample {
    /// Which vantage point measured.
    pub vp: u32,
    /// Tier probed.
    pub tier: Tier,
    /// Round-trip latency, ms.
    pub rtt_ms: f64,
    /// When the probe ran.
    pub time: SimTime,
}

impl VantageSet {
    /// Generates vantage points: one per `<city, AS>` pair where the AS
    /// serves end users (access ISPs dominate, as on Speedchecker).
    pub fn generate(topo: &Topology, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead_beef);
        let mut vps = Vec::new();
        for id in topo.non_cloud_ases() {
            let node = topo.as_node(id);
            let p_vp = match node.role {
                simnet::asn::AsRole::AccessIsp => 0.9,
                simnet::asn::AsRole::Education => 0.5,
                simnet::asn::AsRole::Business => 0.3,
                _ => 0.1,
            };
            for &city in &node.cities {
                if rng.random::<f64>() < p_vp {
                    vps.push(VantagePoint {
                        id: vps.len() as u32,
                        as_id: id,
                        city,
                        ip: topo.host_ip(id, city, 15),
                    });
                }
            }
        }
        Self { vps }
    }

    /// Probes latency from every VP to a VM in `region_city` on both
    /// tiers, `probes` times spread hourly from `start`. This mirrors the
    /// paper's requirement of >100 measurements per tuple.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_tiers(
        &self,
        paths: &Paths<'_>,
        perf: &PerfModel<'_>,
        region_city: CityId,
        vm_ip: Ipv4Addr,
        start: SimTime,
        probes: u32,
        seed: u64,
    ) -> Vec<TierLatencySample> {
        let mut out = Vec::with_capacity(self.vps.len() * probes as usize * 2);
        for vp in &self.vps {
            for tier in [Tier::Premium, Tier::Standard] {
                // Resolve once; evaluate at many instants.
                let fwd = paths.vm_host_path(
                    region_city,
                    vm_ip,
                    vp.as_id,
                    vp.city,
                    vp.ip,
                    tier,
                    Direction::ToServer,
                );
                let rev = paths.vm_host_path(
                    region_city,
                    vm_ip,
                    vp.as_id,
                    vp.city,
                    vp.ip,
                    tier,
                    Direction::ToCloud,
                );
                let (Some(fwd), Some(rev)) = (fwd, rev) else {
                    continue;
                };
                for k in 0..probes {
                    let t = start + (k as u64) * simnet::time::HOUR;
                    let jitter_h =
                        simnet::routing::load_key(b"vpjit", seed ^ vp.id as u64, k as u64);
                    let jitter = (jitter_h >> 11) as f64 / (1u64 << 53) as f64 * 2.2;
                    out.push(TierLatencySample {
                        vp: vp.id,
                        tier,
                        rtt_ms: perf.idle_rtt_ms(&fwd, &rev, t) + jitter,
                        time: t,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::load::LoadModel;
    use simnet::topology::TopologyConfig;

    #[test]
    fn generation_covers_many_city_as_tuples() {
        let topo = Topology::generate(TopologyConfig::tiny(91));
        let set = VantageSet::generate(&topo, 1);
        assert!(set.vps.len() > 30, "{} VPs", set.vps.len());
        // Unique (as, city) tuples.
        let mut tuples: Vec<(AsId, CityId)> = set.vps.iter().map(|v| (v.as_id, v.city)).collect();
        let n = tuples.len();
        tuples.sort_unstable();
        tuples.dedup();
        assert_eq!(tuples.len(), n, "duplicate tuples");
    }

    #[test]
    fn full_scale_has_thousands_of_vps() {
        let topo = Topology::generate(TopologyConfig::default());
        let set = VantageSet::generate(&topo, 1);
        assert!(
            set.vps.len() > 1_000,
            "{} VPs (Speedchecker-scale coverage)",
            set.vps.len()
        );
    }

    #[test]
    fn probes_cover_both_tiers_and_are_positive() {
        let topo = Topology::generate(TopologyConfig::tiny(92));
        let paths = Paths::new(&topo);
        let perf = PerfModel::new(&topo, LoadModel::new(2));
        let set = VantageSet::generate(&topo, 1);
        let region = topo.cities.by_name("St. Ghislain").unwrap();
        let samples = set.probe_tiers(
            &paths,
            &perf,
            region,
            topo.vm_ip(region, 0),
            SimTime::EPOCH,
            4,
            1,
        );
        assert!(!samples.is_empty());
        assert!(samples.iter().any(|s| s.tier == Tier::Premium));
        assert!(samples.iter().any(|s| s.tier == Tier::Standard));
        assert!(samples.iter().all(|s| s.rtt_ms > 0.0));
        // Each VP × tier gets `probes` samples.
        let per_vp = samples.iter().filter(|s| s.vp == samples[0].vp).count();
        assert_eq!(per_vp, 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let topo = Topology::generate(TopologyConfig::tiny(93));
        let a = VantageSet::generate(&topo, 5);
        let b = VantageSet::generate(&topo, 5);
        assert_eq!(a.vps.len(), b.vps.len());
        assert!(a.vps.iter().zip(&b.vps).all(|(x, y)| x.ip == y.ip));
    }
}
