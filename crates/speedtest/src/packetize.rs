//! Converting a `simnet` path into a `simtcp` packet-level path.
//!
//! The fluid model answers "what throughput would TCP get here" in
//! microseconds; the packet simulator answers the same question in
//! milliseconds of CPU but with full TCP dynamics. This bridge lets any
//! single campaign measurement be replayed packet-by-packet — used for
//! model validation (integration tests compare the two) and for the
//! deep-dive example binaries.

use simnet::perf::PerfModel;
use simnet::routing::RouterPath;
use simnet::time::SimTime;
use simtcp::flow::PathSpec;
use simtcp::link::LinkSpec;

/// Builds a `simtcp` path for data flowing along `fwd` (with ACKs
/// returning along `rev`) as the network stands at time `t`.
///
/// Each capacity-bearing segment becomes one link whose rate is the
/// segment's *available* bandwidth at `t` and whose loss is the
/// segment's loss rate at `t`; propagation is spread over the links so
/// the end-to-end base RTT matches the fluid model's.
pub fn packetize(
    perf: &PerfModel<'_>,
    fwd: &RouterPath,
    rev: &RouterPath,
    t: SimTime,
    queue_pkts: usize,
) -> PathSpec {
    PathSpec {
        fwd: segments_to_links(perf, fwd, t, queue_pkts),
        rev: segments_to_links(perf, rev, t, queue_pkts),
    }
}

fn segments_to_links(
    perf: &PerfModel<'_>,
    path: &RouterPath,
    t: SimTime,
    queue_pkts: usize,
) -> Vec<LinkSpec> {
    let n = path.segments.len().max(1);
    let delay_per_link = path.oneway_ms / n as f64;
    path.segments
        .iter()
        .map(|seg| {
            let avail = perf.bottleneck_of_segment(seg, t);
            let loss = perf.segment_loss(seg, t);
            LinkSpec::new(avail.max(0.5), delay_per_link, queue_pkts, loss.min(0.9))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::load::LoadModel;
    use simnet::perf::FlowSpec;
    use simnet::routing::{Direction, Paths, Tier};
    use simnet::topology::{Topology, TopologyConfig};
    use simtcp::flow::{run_flow, FlowConfig};
    use simtcp::tcp::CongestionControl;

    #[test]
    fn packet_level_agrees_with_fluid_model_within_factor_three() {
        let topo = Topology::generate(TopologyConfig::tiny(81));
        let paths = Paths::new(&topo);
        let perf = PerfModel::new(&topo, LoadModel::new(8));
        let region = topo.cities.by_name("The Dalles").unwrap();
        let leaf = topo
            .non_cloud_ases()
            .find(|id| {
                let n = topo.as_node(*id);
                matches!(n.role, simnet::asn::AsRole::AccessIsp)
                    && n.congestion == simnet::topology::CongestionClass::Clean
                    && topo.cities.get(n.home_city).country == "US"
            })
            .unwrap();
        let city = topo.as_node(leaf).home_city;
        let ip = topo.host_ip(leaf, city, 0);
        let vm = topo.vm_ip(region, 0);
        let down = paths
            .vm_host_path(
                region,
                vm,
                leaf,
                city,
                ip,
                Tier::Premium,
                Direction::ToCloud,
            )
            .unwrap();
        let up = paths
            .vm_host_path(
                region,
                vm,
                leaf,
                city,
                ip,
                Tier::Premium,
                Direction::ToServer,
            )
            .unwrap();
        let t = SimTime::from_day_hour(2, 10);

        let fluid = perf.tcp_throughput(&down, &up, t, &FlowSpec::download());
        let spec = packetize(&perf, &down, &up, t, 512);
        let pkt = run_flow(
            &spec,
            &FlowConfig {
                cc: CongestionControl::Cubic,
                n_connections: 8,
                duration_s: 12.0,
                ..Default::default()
            },
        );
        let ratio = pkt.throughput_mbps / fluid.throughput_mbps.min(1000.0);
        assert!(
            (0.33..3.0).contains(&ratio),
            "packet {:.0} Mbps vs fluid {:.0} Mbps (ratio {ratio:.2})",
            pkt.throughput_mbps,
            fluid.throughput_mbps
        );
    }

    #[test]
    fn rtt_agreement() {
        let topo = Topology::generate(TopologyConfig::tiny(82));
        let paths = Paths::new(&topo);
        let perf = PerfModel::new(&topo, LoadModel::new(8));
        let region = topo.cities.by_name("Council Bluffs").unwrap();
        let leaf = topo.non_cloud_ases().next().unwrap();
        let city = topo.as_node(leaf).home_city;
        let ip = topo.host_ip(leaf, city, 0);
        let vm = topo.vm_ip(region, 0);
        let down = paths
            .vm_host_path(
                region,
                vm,
                leaf,
                city,
                ip,
                Tier::Premium,
                Direction::ToCloud,
            )
            .unwrap();
        let up = paths
            .vm_host_path(
                region,
                vm,
                leaf,
                city,
                ip,
                Tier::Premium,
                Direction::ToServer,
            )
            .unwrap();
        let t = SimTime::from_day_hour(2, 9);
        let fluid_rtt = perf.rtt_ms(&down, &up, t);
        let spec = packetize(&perf, &down, &up, t, 512);
        let pkt = run_flow(
            &spec,
            &FlowConfig {
                duration_s: 4.0,
                ..Default::default()
            },
        );
        let srtt = pkt.srtt_ms.unwrap();
        assert!(
            srtt > fluid_rtt * 0.5 && srtt < fluid_rtt * 4.0 + 50.0,
            "packet srtt {srtt:.1} vs fluid {fluid_rtt:.1}"
        );
    }

    #[test]
    fn links_match_segment_count() {
        let topo = Topology::generate(TopologyConfig::tiny(83));
        let paths = Paths::new(&topo);
        let perf = PerfModel::new(&topo, LoadModel::new(8));
        let region = topo.cities.by_name("The Dalles").unwrap();
        let leaf = topo.non_cloud_ases().next().unwrap();
        let city = topo.as_node(leaf).home_city;
        let ip = topo.host_ip(leaf, city, 0);
        let vm = topo.vm_ip(region, 0);
        let down = paths
            .vm_host_path(
                region,
                vm,
                leaf,
                city,
                ip,
                Tier::Standard,
                Direction::ToCloud,
            )
            .unwrap();
        let up = paths
            .vm_host_path(
                region,
                vm,
                leaf,
                city,
                ip,
                Tier::Standard,
                Direction::ToServer,
            )
            .unwrap();
        let spec = packetize(&perf, &down, &up, SimTime::EPOCH, 64);
        assert_eq!(spec.fwd.len(), down.segments.len());
        assert_eq!(spec.rev.len(), up.segments.len());
        for l in spec.fwd.iter().chain(&spec.rev) {
            assert!(l.rate_mbps > 0.0);
            assert!((0.0..=0.9).contains(&l.loss));
        }
    }
}
