//! Speed-test platforms and their server deployments.
//!
//! §3.1: "we used servers from three speed test platforms (Ookla, M-Lab,
//! and Comcast Xfinity speed test) for their diverse server deployment
//! and the ability to allow clients to choose test servers". The paper
//! found ~1,300 US servers across ~800 ASes; Ookla dominates because ISPs
//! self-host Ookla servers close to their users, M-Lab runs a small
//! number of well-connected pods, and Xfinity servers live inside
//! Comcast's network.
//!
//! [`ServerRegistry::crawl`] plays the role of CLASP's metadata crawl: it
//! "generates" the deployment from the topology (deterministically) and
//! returns the per-server metadata CLASP collects (IP, network name,
//! location), which downstream selection maps to ASNs via prefix-to-AS.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simnet::asn::{AsRole, Asn};
use simnet::geo::CityId;
use simnet::topology::{AsId, Topology};
use std::net::Ipv4Addr;

/// A speed-test platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Ookla Speedtest: ISP-hosted servers everywhere.
    Ookla,
    /// Measurement Lab: a few research-grade pods.
    MLab,
    /// Comcast Xfinity speed test: servers inside Comcast.
    Comcast,
}

impl Platform {
    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Platform::Ookla => "ookla",
            Platform::MLab => "mlab",
            Platform::Comcast => "comcast",
        }
    }

    /// Parallel TCP connections the platform's test uses.
    pub fn connections(&self) -> u32 {
        match self {
            Platform::Ookla => 8,
            Platform::MLab => 1, // NDT is single-stream
            Platform::Comcast => 6,
        }
    }

    /// Nominal duration of one direction's transfer, seconds.
    pub fn transfer_seconds(&self) -> f64 {
        match self {
            Platform::Ookla => 15.0,
            Platform::MLab => 10.0,
            Platform::Comcast => 20.0,
        }
    }
}

/// One deployed speed-test server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Server {
    /// Registry-unique identifier, e.g. `ookla-0412`.
    pub id: String,
    /// Hosting platform.
    pub platform: Platform,
    /// Sponsor string shown on the test page ("Cox - Las Vegas, NV").
    pub sponsor: String,
    /// Server address.
    pub ip: Ipv4Addr,
    /// Hosting AS (ground truth; CLASP re-derives it via prefix-to-AS).
    pub as_id: AsId,
    /// Hosting AS number.
    pub asn: Asn,
    /// Server city.
    pub city: CityId,
    /// Two-letter country code.
    pub country: &'static str,
    /// Advertised capacity in Gbps (Ookla requires ≥ 1 Gbps).
    pub capacity_gbps: f64,
}

/// The crawled registry of all servers across platforms.
#[derive(Debug, Clone)]
pub struct ServerRegistry {
    /// All servers, stable order.
    pub servers: Vec<Server>,
}

impl ServerRegistry {
    /// Crawls the three platforms over a topology. Deterministic in
    /// `(topology, seed)`.
    pub fn crawl(topo: &Topology, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_7e57);
        let mut servers: Vec<Server> = Vec::new();
        let mut host_idx_used: std::collections::HashMap<(AsId, CityId), u8> =
            std::collections::HashMap::new();

        let push = |servers: &mut Vec<Server>,
                    host_idx_used: &mut std::collections::HashMap<(AsId, CityId), u8>,
                    platform: Platform,
                    as_id: AsId,
                    city: CityId,
                    rng: &mut SmallRng| {
            let idx = host_idx_used.entry((as_id, city)).or_insert(1);
            if *idx >= 15 {
                return; // host block exhausted in this city
            }
            let ip = topo.host_ip(as_id, city, *idx);
            *idx += 1;
            let node = topo.as_node(as_id);
            let city_info = topo.cities.get(city);
            servers.push(Server {
                id: format!("{}-{:04}", platform.label(), servers.len()),
                platform,
                sponsor: format!("{} - {}", node.name, city_info.name),
                ip,
                as_id,
                asn: node.asn,
                city,
                country: city_info.country,
                capacity_gbps: {
                    // Ookla requires ≥1 Gbps; most sponsors provision the
                    // minimum, a few run 10 GbE.
                    let x: f64 = rng.random();
                    if x < 0.55 {
                        1.0
                    } else if x < 0.80 {
                        2.0
                    } else if x < 0.92 {
                        5.0
                    } else {
                        10.0
                    }
                },
            });
        };

        for id in topo.non_cloud_ases() {
            let node = topo.as_node(id);
            let is_us = topo.cities.get(node.home_city).country == "US";
            // How many Ookla servers this AS hosts, by role. These rates
            // are tuned so the US total lands near the paper's 1,329
            // servers in ~800 ASes.
            let n_ookla: usize = match node.role {
                AsRole::AccessIsp => {
                    if rng.random::<f64>() < 0.88 {
                        1 + usize::from(rng.random::<f64>() < 0.55)
                            + usize::from(rng.random::<f64>() < 0.33)
                    } else {
                        0
                    }
                }
                AsRole::Hosting => {
                    if rng.random::<f64>() < 0.5 {
                        1 + usize::from(rng.random::<f64>() < 0.4)
                    } else {
                        0
                    }
                }
                AsRole::Education => usize::from(rng.random::<f64>() < 0.35),
                AsRole::Business => usize::from(rng.random::<f64>() < 0.02),
                AsRole::Transit => usize::from(rng.random::<f64>() < 0.4),
                AsRole::Tier1 => 2,
                AsRole::Cloud => 0,
            };
            for k in 0..n_ookla {
                let city = node.cities[k % node.cities.len()];
                push(
                    &mut servers,
                    &mut host_idx_used,
                    Platform::Ookla,
                    id,
                    city,
                    &mut rng,
                );
            }
            let _ = is_us;
        }

        // M-Lab: pods in the largest metros, hosted in transit/hosting
        // ASes present there.
        let mlab_cities = [
            "New York",
            "Chicago",
            "Dallas",
            "Los Angeles",
            "Seattle",
            "Atlanta",
            "Denver",
            "Miami",
            "Washington",
            "San Jose",
            "London",
            "Frankfurt",
            "Sydney",
            "Mumbai",
        ];
        for (ci, name) in mlab_cities.iter().enumerate() {
            let Some(city) = topo.cities.by_name(name) else {
                continue;
            };
            let hosts: Vec<AsId> = topo
                .non_cloud_ases()
                .filter(|id| {
                    let n = topo.as_node(*id);
                    matches!(n.role, AsRole::Transit | AsRole::Hosting) && n.cities.contains(&city)
                })
                .collect();
            // Rotate across eligible hosts so no single transit carries
            // every pod (a couple on Cogent is realistic; all of them is
            // not).
            if !hosts.is_empty() {
                let h = hosts[ci % hosts.len()];
                push(
                    &mut servers,
                    &mut host_idx_used,
                    Platform::MLab,
                    h,
                    city,
                    &mut rng,
                );
            }
        }

        // Comcast Xfinity: one server per Comcast city.
        if let Some(comcast) = topo.by_asn(Asn(7922)) {
            let cities: Vec<CityId> = topo.as_node(comcast).cities.clone();
            for city in cities {
                push(
                    &mut servers,
                    &mut host_idx_used,
                    Platform::Comcast,
                    comcast,
                    city,
                    &mut rng,
                );
            }
        }

        Self { servers }
    }

    /// Servers located in the given country.
    pub fn in_country(&self, cc: &str) -> Vec<&Server> {
        self.servers.iter().filter(|s| s.country == cc).collect()
    }

    /// Evolves the deployment: a deterministic fraction of servers is
    /// decommissioned and `add` new servers appear at `<AS, city>` spots
    /// that currently host none. §5 of the paper motivates this: "CLASP
    /// cannot adapt to changes in the use of interdomain links and any
    /// new deployment of speed test servers."
    pub fn churned(
        &self,
        topo: &Topology,
        seed: u64,
        remove_fraction: f64,
        add: usize,
    ) -> ServerRegistry {
        let keep_draw = |s: &Server| {
            let h = simnet::routing::load_key(b"churn", seed ^ u64::from(u32::from(s.ip)), 0);
            ((h >> 11) as f64 / (1u64 << 53) as f64) >= remove_fraction
        };
        let mut servers: Vec<Server> = self
            .servers
            .iter()
            .filter(|s| keep_draw(s))
            .cloned()
            .collect();
        let used: std::collections::BTreeSet<(u32, u16)> =
            self.servers.iter().map(|s| (s.as_id.0, s.city.0)).collect();
        let taken_ips: std::collections::BTreeSet<std::net::Ipv4Addr> =
            servers.iter().map(|s| s.ip).collect();
        let mut added = 0usize;
        let mut counter = self.servers.len();
        for id in topo.non_cloud_ases() {
            if added >= add {
                break;
            }
            let node = topo.as_node(id);
            if !matches!(node.role, AsRole::AccessIsp | AsRole::Hosting) {
                continue;
            }
            let cities = node.cities.clone();
            for city in cities {
                if added >= add {
                    break;
                }
                if used.contains(&(id.0, city.0)) {
                    continue;
                }
                // Deterministic sparse placement of new deployments.
                let h = simnet::routing::load_key(b"churn-add", seed ^ id.0 as u64, city.0 as u64);
                if !h.is_multiple_of(7) {
                    continue;
                }
                let ip = topo.host_ip(id, city, 14);
                if taken_ips.contains(&ip) {
                    continue;
                }
                let city_info = topo.cities.get(city);
                servers.push(Server {
                    id: format!("ookla-n{counter:04}"),
                    platform: Platform::Ookla,
                    sponsor: format!("{} - {}", node.name, city_info.name),
                    ip,
                    as_id: id,
                    asn: node.asn,
                    city,
                    country: city_info.country,
                    capacity_gbps: 1.0,
                });
                counter += 1;
                added += 1;
            }
        }
        ServerRegistry { servers }
    }

    /// Number of distinct hosting ASes among `servers`.
    pub fn distinct_ases(servers: &[&Server]) -> usize {
        let mut ases: Vec<AsId> = servers.iter().map(|s| s.as_id).collect();
        ases.sort_unstable();
        ases.dedup();
        ases.len()
    }

    /// Looks up a server by id.
    pub fn by_id(&self, id: &str) -> Option<&Server> {
        self.servers.iter().find(|s| s.id == id)
    }

    /// Servers hosted in a given AS.
    pub fn in_as(&self, as_id: AsId) -> Vec<&Server> {
        self.servers.iter().filter(|s| s.as_id == as_id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::topology::TopologyConfig;

    fn full() -> (Topology, ServerRegistry) {
        let topo = Topology::generate(TopologyConfig::default());
        let reg = ServerRegistry::crawl(&topo, 1);
        (topo, reg)
    }

    #[test]
    fn us_deployment_matches_paper_scale() {
        let (_, reg) = full();
        let us = reg.in_country("US");
        assert!(
            (1_000..1_800).contains(&us.len()),
            "US servers = {}",
            us.len()
        );
        let ases = ServerRegistry::distinct_ases(&us);
        assert!((550..1_100).contains(&ases), "US server ASes = {ases}");
    }

    #[test]
    fn all_platforms_present() {
        let (_, reg) = full();
        for p in [Platform::Ookla, Platform::MLab, Platform::Comcast] {
            assert!(reg.servers.iter().any(|s| s.platform == p), "{p:?} missing");
        }
    }

    #[test]
    fn comcast_servers_live_in_comcast() {
        let (topo, reg) = full();
        let comcast = topo.by_asn(Asn(7922)).unwrap();
        for s in reg
            .servers
            .iter()
            .filter(|s| s.platform == Platform::Comcast)
        {
            assert_eq!(s.as_id, comcast);
        }
    }

    #[test]
    fn server_ips_are_unique_and_owned() {
        let (topo, reg) = full();
        let mut ips: Vec<Ipv4Addr> = reg.servers.iter().map(|s| s.ip).collect();
        let n = ips.len();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), n, "duplicate server IPs");
        for s in reg.servers.iter().take(200) {
            assert!(topo.originates(s.as_id, s.ip));
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let topo = Topology::generate(TopologyConfig::tiny(3));
        let a = ServerRegistry::crawl(&topo, 9);
        let b = ServerRegistry::crawl(&topo, 9);
        assert_eq!(a.servers.len(), b.servers.len());
        for (x, y) in a.servers.iter().zip(&b.servers) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn capacity_meets_ookla_requirement() {
        let (_, reg) = full();
        assert!(reg.servers.iter().all(|s| s.capacity_gbps >= 1.0));
    }

    #[test]
    fn lookup_helpers() {
        let (_, reg) = full();
        let first = &reg.servers[0];
        assert_eq!(reg.by_id(&first.id).unwrap().ip, first.ip);
        assert!(reg.in_as(first.as_id).iter().any(|s| s.id == first.id));
        assert!(reg.by_id("nope").is_none());
    }

    #[test]
    fn churn_removes_and_adds_deterministically() {
        let topo = Topology::generate(TopologyConfig::tiny(4));
        let reg = ServerRegistry::crawl(&topo, 1);
        let a = reg.churned(&topo, 9, 0.2, 10);
        let b = reg.churned(&topo, 9, 0.2, 10);
        assert_eq!(a.servers.len(), b.servers.len());
        // Some removed, some added.
        let old_ids: std::collections::BTreeSet<&str> =
            reg.servers.iter().map(|s| s.id.as_str()).collect();
        let removed = old_ids.len()
            - a.servers
                .iter()
                .filter(|s| old_ids.contains(s.id.as_str()))
                .count();
        assert!(removed > 0, "20% churn must remove something");
        let added = a
            .servers
            .iter()
            .filter(|s| s.id.starts_with("ookla-n"))
            .count();
        assert!(added > 0 && added <= 10);
        // IPs stay unique.
        let mut ips: Vec<Ipv4Addr> = a.servers.iter().map(|s| s.ip).collect();
        let n = ips.len();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), n);
    }

    #[test]
    fn zero_churn_is_identity_plus_additions() {
        let topo = Topology::generate(TopologyConfig::tiny(5));
        let reg = ServerRegistry::crawl(&topo, 1);
        let a = reg.churned(&topo, 3, 0.0, 0);
        assert_eq!(a.servers.len(), reg.servers.len());
    }

    #[test]
    fn platform_parameters() {
        assert_eq!(Platform::MLab.connections(), 1);
        assert!(Platform::Ookla.connections() > 1);
        assert!(Platform::Comcast.transfer_seconds() > 0.0);
    }
}
