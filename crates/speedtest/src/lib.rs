//! Speed-test platforms, servers, the test client, and edge vantage
//! points.
//!
//! CLASP measures throughput *through* third-party speed-test
//! infrastructure: Ookla, Comcast Xfinity, and M-Lab servers deployed
//! across access ISPs, hosting providers and research networks (§3.1).
//! This crate models:
//!
//! * [`platform`] — the three platforms and their server deployments over
//!   a `simnet` topology (counts and AS diversity matching the paper:
//!   ~1.3 k US servers across ~800 ASes);
//! * [`client`] — the browser-driven speed-test client: latency pre-test,
//!   multi-connection download and upload with the VM-side `tc` caps, and
//!   the result record a test's web interface would report;
//! * [`packetize`] — converting a `simnet` router path into a `simtcp`
//!   link path, so single tests can be replayed packet-by-packet;
//! * [`vantage`] — Speedchecker-style edge vantage points for the
//!   differential pre-test (latency to both network tiers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod packetize;
pub mod platform;
pub mod vantage;

pub use client::{SpeedTestClient, TestResult};
pub use platform::{Platform, Server, ServerRegistry};
pub use vantage::{VantagePoint, VantageSet};
