//! The speed-test client.
//!
//! CLASP runs "a headless browser-based script to execute web-based speed
//! tests to a given server in a Chromium browser and capture the results
//! reported on the web interface" (§3.2). The client here produces the
//! same observable record: a latency pre-test, a multi-connection
//! download, and a multi-connection upload, evaluated against the fluid
//! TCP model at the test's instant, with the VM-side `tc` caps applied
//! (1 Gbps down / 100 Mbps up).
//!
//! Results carry ground-truth loss rates per direction as the packet
//! capture analysis would recover them — the Cox diagnosis in §4.2
//! ("low (<1%) packet loss rate in the upload throughput tests,
//! indicating congestion took place on the reverse path") is exactly a
//! comparison of these two numbers.

use crate::platform::Server;
use serde::{Deserialize, Serialize};
use simnet::geo::CityId;
use simnet::perf::{FlowSpec, PerfModel};
use simnet::routing::{Direction, Paths, RouterPath, Tier};
use simnet::time::SimTime;
use std::net::Ipv4Addr;

/// The two cached unidirectional paths between one VM and one server.
#[derive(Debug, Clone)]
pub struct PathPair {
    /// Server → VM (download data direction, GCP ingress).
    pub to_cloud: RouterPath,
    /// VM → server (upload data direction, GCP egress).
    pub to_server: RouterPath,
}

/// One completed speed test, as reported by the web interface plus the
/// header-capture statistics the pipeline extracts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestResult {
    /// Server identifier.
    pub server_id: String,
    /// Test start time.
    pub time: SimTime,
    /// Network tier the VM used.
    pub tier_premium: bool,
    /// Latency pre-test result, ms.
    pub latency_ms: f64,
    /// Download throughput, Mbps.
    pub download_mbps: f64,
    /// Upload throughput, Mbps.
    pub upload_mbps: f64,
    /// Loss rate on the download (server→cloud) direction.
    pub download_loss: f64,
    /// Loss rate on the upload (cloud→server) direction.
    pub upload_loss: f64,
    /// Wall-clock duration of the whole test, seconds.
    pub duration_s: f64,
}

/// Client configuration: the `tc` rate limits CLASP applies to the VM
/// NIC ("1Gbps/100Mbps ... to avoid overloading the networks", §3.2).
#[derive(Debug, Clone, Copy)]
pub struct SpeedTestClient {
    /// Download cap, Mbps.
    pub downlink_cap_mbps: f64,
    /// Upload cap, Mbps.
    pub uplink_cap_mbps: f64,
    /// Multiplicative measurement-noise amplitude (web-reported numbers
    /// wobble a few percent run to run).
    pub noise_amp: f64,
}

impl Default for SpeedTestClient {
    fn default() -> Self {
        Self {
            downlink_cap_mbps: 1_000.0,
            uplink_cap_mbps: 100.0,
            noise_amp: 0.07,
        }
    }
}

impl SpeedTestClient {
    /// Resolves the path pair for a (region VM, server, tier) triple.
    /// CLASP computes these once per campaign (paths are stable; §5 notes
    /// the selection is not re-run).
    pub fn resolve_paths(
        &self,
        paths: &Paths<'_>,
        region_city: CityId,
        vm_ip: Ipv4Addr,
        server: &Server,
        tier: Tier,
    ) -> Option<PathPair> {
        // Border-interface choice is per destination prefix, matching the
        // traceroutes the selection grouped servers by.
        let flow = simnet::routing::load_key(
            b"prefix",
            server.asn.0 as u64,
            ((server.city.0 as u64) << 16) | region_city.0 as u64,
        );
        let to_cloud = paths.vm_host_path_flow(
            region_city,
            vm_ip,
            server.as_id,
            server.city,
            server.ip,
            tier,
            Direction::ToCloud,
            flow,
        )?;
        let to_server = paths.vm_host_path_flow(
            region_city,
            vm_ip,
            server.as_id,
            server.city,
            server.ip,
            tier,
            Direction::ToServer,
            flow,
        )?;
        Some(PathPair {
            to_cloud,
            to_server,
        })
    }

    /// Runs one full test (latency + download + upload) at time `t`.
    pub fn run_test(
        &self,
        perf: &PerfModel<'_>,
        pair: &PathPair,
        server: &Server,
        t: SimTime,
        seed: u64,
    ) -> TestResult {
        let n_conn = server.platform.connections();
        let mss = 1448;

        // Latency pre-test: a handful of small probes; report the min.
        let base_rtt = perf.idle_rtt_ms(&pair.to_server, &pair.to_cloud, t);
        let latency_ms = base_rtt + 0.4 * self.unit(seed, server, t, 1);

        // Download: data flows server→cloud, ACKs cloud→server.
        let down_spec = FlowSpec {
            n_connections: n_conn,
            mss_bytes: mss,
            nic_limit_mbps: self.downlink_cap_mbps,
        };
        let down = perf.tcp_throughput(&pair.to_cloud, &pair.to_server, t, &down_spec);

        // Upload: data flows cloud→server.
        let up_spec = FlowSpec {
            n_connections: n_conn,
            mss_bytes: mss,
            nic_limit_mbps: self.uplink_cap_mbps,
        };
        let up = perf.tcp_throughput(&pair.to_server, &pair.to_cloud, t, &up_spec);

        // The server's per-client service rate: speed-test daemons share
        // the box with other clients and the web stack adds overhead, so
        // per-test service sits in the hundreds of Mbps largely
        // independent of NIC size, wobbling by the hour. This is why "no
        // server could saturate the downlink capacity of the measurement
        // VMs" (§4.1) even from close by.
        let srv_hash = simnet::routing::load_key(b"srvrate", u64::from(u32::from(server.ip)), 0);
        let u_srv = (srv_hash >> 11) as f64 / (1u64 << 53) as f64;
        let bonus = if server.capacity_gbps >= 10.0 {
            1.45
        } else if server.capacity_gbps >= 5.0 {
            1.25
        } else if server.capacity_gbps >= 2.0 {
            1.1
        } else {
            1.0
        };
        let service_base = (170.0 + 350.0 * u_srv) * bonus;
        // Hourly contention is a property of the server and the hour —
        // two VMs testing the same server in the same hour see the same
        // contention (the paired-tier comparison depends on this).
        let hour_hash =
            simnet::routing::load_key(b"srvhour", u64::from(u32::from(server.ip)), t.hour_index());
        let hourly = 0.80 + 0.40 * ((hour_hash >> 11) as f64 / (1u64 << 53) as f64);
        let server_cap_mbps = service_base * hourly;
        // Web-reported numbers wobble a few percent.
        let noise =
            |salt: u64| 1.0 + self.noise_amp * (2.0 * self.unit(seed, server, t, salt) - 1.0);
        let download_mbps = (down.throughput_mbps * noise(2))
            .min(server_cap_mbps)
            .min(self.downlink_cap_mbps);
        let upload_mbps = (up.throughput_mbps * noise(3)).min(self.uplink_cap_mbps);

        TestResult {
            server_id: server.id.clone(),
            time: t,
            tier_premium: pair.to_cloud.tier == Tier::Premium,
            latency_ms,
            download_mbps,
            upload_mbps,
            download_loss: down.loss_rate,
            upload_loss: up.loss_rate,
            duration_s: 2.0 * server.platform.transfer_seconds() + 5.0,
        }
    }

    /// Fault-aware variant of [`Self::run_test`]: the browser stack can
    /// crash mid-test, yielding `None` (no result is reported, the slot
    /// may retry with a higher `attempt`). Each attempt draws
    /// independently. With an empty plan this is exactly `run_test` —
    /// no draw happens and the result is bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub fn run_test_faulted(
        &self,
        perf: &PerfModel<'_>,
        pair: &PathPair,
        server: &Server,
        t: SimTime,
        seed: u64,
        plan: &faultsim::FaultPlan,
        scope: faultsim::VmScope<'_>,
        attempt: u32,
    ) -> Option<TestResult> {
        if plan.test_aborts(scope, &server.id, t.as_secs(), attempt) {
            return None;
        }
        Some(self.run_test(perf, pair, server, t, seed))
    }

    /// Uniform `[0,1)` hash of (seed, server, time, salt).
    fn unit(&self, seed: u64, server: &Server, t: SimTime, salt: u64) -> f64 {
        let h = simnet::routing::load_key(
            b"sptest",
            seed ^ u64::from(u32::from(server.ip)),
            t.as_secs().wrapping_mul(2).wrapping_add(salt),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::ServerRegistry;
    use simnet::load::LoadModel;
    use simnet::topology::{Topology, TopologyConfig};

    fn setup() -> (Topology, ServerRegistry) {
        let topo = Topology::generate(TopologyConfig::tiny(71));
        let reg = ServerRegistry::crawl(&topo, 2);
        (topo, reg)
    }

    #[test]
    fn full_test_produces_sane_record() {
        let (topo, reg) = setup();
        let paths = Paths::new(&topo);
        let perf = PerfModel::new(&topo, LoadModel::new(4));
        let client = SpeedTestClient::default();
        let region = topo.cities.by_name("The Dalles").unwrap();
        let server = reg
            .servers
            .iter()
            .find(|s| s.country == "US")
            .expect("US server");
        let pair = client
            .resolve_paths(&paths, region, topo.vm_ip(region, 0), server, Tier::Premium)
            .unwrap();
        let r = client.run_test(&perf, &pair, server, SimTime::from_day_hour(0, 9), 1);
        assert!(r.latency_ms > 0.0 && r.latency_ms < 400.0);
        assert!(r.download_mbps > 0.0 && r.download_mbps <= 1000.0);
        assert!(r.upload_mbps > 0.0 && r.upload_mbps <= 100.0);
        assert!(r.download_loss >= 0.0 && r.download_loss < 1.0);
        assert!(r.duration_s <= 120.0, "a test fits the 120 s budget");
        assert!(r.tier_premium);
    }

    #[test]
    fn results_are_deterministic() {
        let (topo, reg) = setup();
        let paths = Paths::new(&topo);
        let perf = PerfModel::new(&topo, LoadModel::new(4));
        let client = SpeedTestClient::default();
        let region = topo.cities.by_name("Council Bluffs").unwrap();
        let server = reg.servers.iter().find(|s| s.country == "US").unwrap();
        let pair = client
            .resolve_paths(
                &paths,
                region,
                topo.vm_ip(region, 0),
                server,
                Tier::Standard,
            )
            .unwrap();
        let t = SimTime::from_day_hour(3, 15);
        let a = client.run_test(&perf, &pair, server, t, 7);
        let b = client.run_test(&perf, &pair, server, t, 7);
        assert_eq!(a.download_mbps, b.download_mbps);
        assert_eq!(a.latency_ms, b.latency_ms);
    }

    #[test]
    fn faulted_test_matches_plain_and_aborts_on_demand() {
        let (topo, reg) = setup();
        let paths = Paths::new(&topo);
        let perf = PerfModel::new(&topo, LoadModel::new(4));
        let client = SpeedTestClient::default();
        let region = topo.cities.by_name("The Dalles").unwrap();
        let server = reg.servers.iter().find(|s| s.country == "US").unwrap();
        let pair = client
            .resolve_paths(&paths, region, topo.vm_ip(region, 0), server, Tier::Premium)
            .unwrap();
        let t = SimTime::from_day_hour(0, 9);
        let scope = faultsim::VmScope {
            region: "us-west1",
            vm: "clasp-us-west1-a-0",
        };

        let plain = client.run_test(&perf, &pair, server, t, 1);
        let faulted = client
            .run_test_faulted(
                &perf,
                &pair,
                server,
                t,
                1,
                &faultsim::FaultPlan::none(),
                scope,
                0,
            )
            .unwrap();
        assert_eq!(plain.download_mbps, faulted.download_mbps);
        assert_eq!(plain.latency_ms, faulted.latency_ms);

        let mut plan = faultsim::FaultPlan::uniform(1, 0.0);
        plan.rates.test_abort = 1.0;
        assert!(client
            .run_test_faulted(&perf, &pair, server, t, 1, &plan, scope, 0)
            .is_none());
    }

    #[test]
    fn caps_are_respected_across_a_day() {
        let (topo, reg) = setup();
        let paths = Paths::new(&topo);
        let perf = PerfModel::new(&topo, LoadModel::new(4));
        let client = SpeedTestClient::default();
        let region = topo.cities.by_name("The Dalles").unwrap();
        let server = reg.servers.iter().find(|s| s.country == "US").unwrap();
        let pair = client
            .resolve_paths(&paths, region, topo.vm_ip(region, 0), server, Tier::Premium)
            .unwrap();
        for h in 0..24 {
            let r = client.run_test(&perf, &pair, server, SimTime::from_day_hour(1, h), 3);
            assert!(r.download_mbps <= 1000.0);
            assert!(r.upload_mbps <= 100.0);
        }
    }

    #[test]
    fn mlab_single_stream_is_slower_than_ookla_on_same_as() {
        // Single-stream NDT has 1/8 the Mathis aggregate; find servers of
        // both platforms in the same AS-city when available.
        let (topo, reg) = setup();
        let paths = Paths::new(&topo);
        let perf = PerfModel::new(&topo, LoadModel::new(4));
        let client = SpeedTestClient::default();
        let region = topo.cities.by_name("The Dalles").unwrap();
        let ookla = reg
            .servers
            .iter()
            .find(|s| s.platform == crate::platform::Platform::Ookla && s.country == "US")
            .unwrap();
        // Clone the server as an MLab variant at the same location.
        let mut mlab = ookla.clone();
        mlab.platform = crate::platform::Platform::MLab;
        let t = SimTime::from_day_hour(0, 8);
        let pair = client
            .resolve_paths(&paths, region, topo.vm_ip(region, 0), ookla, Tier::Premium)
            .unwrap();
        let r_ookla = client.run_test(&perf, &pair, ookla, t, 5);
        let r_mlab = client.run_test(&perf, &pair, &mlab, t, 5);
        assert!(
            r_mlab.download_mbps < r_ookla.download_mbps,
            "1 stream {} vs 8 streams {}",
            r_mlab.download_mbps,
            r_ookla.download_mbps
        );
    }
}
