//! Ground-truth record of injected faults.
//!
//! Every fault the orchestrator observes (whether it recovers from it
//! or loses data to it) is appended here. The log is the *reference*
//! side of the completeness reconciliation: the missing server-hours
//! the [`crate::CompletenessReport`] computes from the collected data
//! must equal, exactly, the hours this log says were lost.

use crate::plan::FaultKind;
use std::collections::BTreeMap;

/// How an injected fault ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Recorded but not yet resolved (transient state during a run).
    Unhandled,
    /// The orchestrator retried its way past the fault; no data lost.
    Recovered {
        /// Retries spent before success.
        retries: u32,
        /// Sim-time (seconds) of the successful attempt.
        recovered_at: u64,
    },
    /// The fault cost data: this many server-hours never collected.
    Lost {
        /// Server-hours of measurements lost to this fault.
        s_hours: u64,
    },
}

/// One fault that actually fired during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFault {
    /// Stable id (index into the log).
    pub id: usize,
    /// Sim-time (seconds) the fault fired.
    pub time: u64,
    /// What kind of fault it was.
    pub kind: FaultKind,
    /// Region it hit.
    pub region: String,
    /// VM it hit, when VM-scoped (empty for region-wide faults).
    pub vm: String,
    /// Free-form context ("upload day 3", "attempt 2", …).
    pub detail: String,
    /// How it resolved.
    pub outcome: FaultOutcome,
}

/// Aggregate counts over a [`FaultLog`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Total faults recorded.
    pub total: usize,
    /// Faults the orchestrator retried past.
    pub recovered: usize,
    /// Faults that cost data.
    pub lost: usize,
    /// Total server-hours lost across all faults.
    pub lost_s_hours: u64,
    /// Total retries spent on recoveries.
    pub retries: u64,
    /// Faults per kind.
    pub by_kind: BTreeMap<&'static str, usize>,
}

/// Append-only record of injected faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    faults: Vec<InjectedFault>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    /// Records a fault and returns its id for later outcome updates.
    pub fn record(
        &mut self,
        time: u64,
        kind: FaultKind,
        region: &str,
        vm: &str,
        detail: impl Into<String>,
    ) -> usize {
        let id = self.faults.len();
        self.faults.push(InjectedFault {
            id,
            time,
            kind,
            region: region.to_string(),
            vm: vm.to_string(),
            detail: detail.into(),
            outcome: FaultOutcome::Unhandled,
        });
        id
    }

    /// Marks fault `id` as recovered after `retries` retries.
    pub fn mark_recovered(&mut self, id: usize, retries: u32, recovered_at: u64) {
        self.faults[id].outcome = FaultOutcome::Recovered {
            retries,
            recovered_at,
        };
    }

    /// Marks fault `id` as having lost `s_hours` server-hours. Calling
    /// it again for the same id accumulates (multi-hour outages add
    /// their toll hour by hour as the orchestrator walks the window).
    pub fn mark_lost(&mut self, id: usize, s_hours: u64) {
        let prior = match self.faults[id].outcome {
            FaultOutcome::Lost { s_hours } => s_hours,
            _ => 0,
        };
        self.faults[id].outcome = FaultOutcome::Lost {
            s_hours: prior + s_hours,
        };
    }

    /// All recorded faults, in injection order.
    pub fn faults(&self) -> &[InjectedFault] {
        &self.faults
    }

    /// Appends every fault of `other`, rebasing ids onto this log.
    ///
    /// Ids are Vec positions, so absorbing worker-local logs in the
    /// canonical serial order reproduces the exact ids (and ordering) a
    /// single-threaded run would have assigned.
    pub fn absorb(&mut self, other: FaultLog) {
        let base = self.faults.len();
        self.faults.extend(other.faults.into_iter().map(|mut f| {
            f.id += base;
            f
        }));
    }

    /// Number of recorded faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when nothing fired.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Server-hours lost, grouped by region.
    pub fn lost_s_hours_by_region(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for f in &self.faults {
            if let FaultOutcome::Lost { s_hours } = f.outcome {
                *out.entry(f.region.clone()).or_insert(0) += s_hours;
            }
        }
        out
    }

    /// Server-hours lost, grouped by (region, kind).
    pub fn lost_s_hours_by_region_kind(&self) -> BTreeMap<(String, &'static str), u64> {
        let mut out = BTreeMap::new();
        for f in &self.faults {
            if let FaultOutcome::Lost { s_hours } = f.outcome {
                *out.entry((f.region.clone(), f.kind.name())).or_insert(0) += s_hours;
            }
        }
        out
    }

    /// Serializes the log to JSON (for campaign checkpoints).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        let faults: Vec<Value> = self
            .faults
            .iter()
            .map(|f| {
                let mut m = Map::new();
                m.insert("time".into(), f.time.into());
                m.insert("kind".into(), f.kind.name().into());
                m.insert("region".into(), f.region.clone().into());
                m.insert("vm".into(), f.vm.clone().into());
                m.insert("detail".into(), f.detail.clone().into());
                match f.outcome {
                    FaultOutcome::Unhandled => {
                        m.insert("outcome".into(), "unhandled".into());
                    }
                    FaultOutcome::Recovered {
                        retries,
                        recovered_at,
                    } => {
                        m.insert("outcome".into(), "recovered".into());
                        m.insert("retries".into(), (retries as u64).into());
                        m.insert("recovered_at".into(), recovered_at.into());
                    }
                    FaultOutcome::Lost { s_hours } => {
                        m.insert("outcome".into(), "lost".into());
                        m.insert("s_hours".into(), s_hours.into());
                    }
                }
                Value::Object(m)
            })
            .collect();
        Value::Array(faults)
    }

    /// Restores a log serialized by [`Self::to_json`].
    pub fn from_json(v: &serde_json::Value) -> Result<FaultLog, String> {
        let list = v.as_array().ok_or("fault log must be an array")?;
        let mut log = FaultLog::new();
        for (id, f) in list.iter().enumerate() {
            let s = |k: &str| {
                f.get(k)
                    .and_then(|v| v.as_str())
                    .map(String::from)
                    .ok_or_else(|| format!("fault {id} missing {k:?}"))
            };
            let kind_name = s("kind")?;
            let kind = FaultKind::parse(&kind_name)
                .ok_or_else(|| format!("unknown fault kind {kind_name:?}"))?;
            let outcome = match s("outcome")?.as_str() {
                "unhandled" => FaultOutcome::Unhandled,
                "recovered" => FaultOutcome::Recovered {
                    retries: f.get("retries").and_then(|v| v.as_u64()).unwrap_or(0) as u32,
                    recovered_at: f.get("recovered_at").and_then(|v| v.as_u64()).unwrap_or(0),
                },
                "lost" => FaultOutcome::Lost {
                    s_hours: f.get("s_hours").and_then(|v| v.as_u64()).unwrap_or(0),
                },
                other => return Err(format!("unknown outcome {other:?}")),
            };
            log.faults.push(InjectedFault {
                id,
                time: f.get("time").and_then(|v| v.as_u64()).unwrap_or(0),
                kind,
                region: s("region")?,
                vm: s("vm")?,
                detail: s("detail")?,
                outcome,
            });
        }
        Ok(log)
    }

    /// Aggregate summary of the whole log.
    pub fn summary(&self) -> FaultSummary {
        let mut s = FaultSummary {
            total: self.faults.len(),
            ..FaultSummary::default()
        };
        for f in &self.faults {
            *s.by_kind.entry(f.kind.name()).or_insert(0) += 1;
            match f.outcome {
                FaultOutcome::Recovered { retries, .. } => {
                    s.recovered += 1;
                    s.retries += retries as u64;
                }
                FaultOutcome::Lost { s_hours } => {
                    s.lost += 1;
                    s.lost_s_hours += s_hours;
                }
                FaultOutcome::Unhandled => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_resolve() {
        let mut log = FaultLog::new();
        let a = log.record(3600, FaultKind::UploadFailure, "us-west1", "vm-0", "day 0");
        let b = log.record(7200, FaultKind::VmPreemption, "us-west1", "vm-1", "");
        let c = log.record(9000, FaultKind::ApiError, "us-east1", "", "create_vm");
        log.mark_recovered(a, 2, 3660);
        log.mark_lost(b, 4);
        log.mark_lost(b, 4);
        log.mark_recovered(c, 1, 9010);

        let s = log.summary();
        assert_eq!(s.total, 3);
        assert_eq!(s.recovered, 2);
        assert_eq!(s.lost, 1);
        assert_eq!(s.lost_s_hours, 8);
        assert_eq!(s.retries, 3);
        assert_eq!(s.by_kind["vm_preemption"], 1);

        let by_region = log.lost_s_hours_by_region();
        assert_eq!(by_region["us-west1"], 8);
        assert!(!by_region.contains_key("us-east1"));
    }

    #[test]
    fn json_roundtrip() {
        let mut log = FaultLog::new();
        let a = log.record(10, FaultKind::CronMiss, "r", "vm", "tick");
        log.mark_recovered(a, 1, 70);
        let b = log.record(20, FaultKind::TestAbort, "r", "vm", "s1");
        log.mark_lost(b, 1);
        log.record(30, FaultKind::CronSkew, "r", "vm", "late");
        let back = FaultLog::from_json(&log.to_json()).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn absorb_rebases_ids() {
        let mut a = FaultLog::new();
        let x = a.record(10, FaultKind::ApiError, "r1", "", "one");
        a.mark_recovered(x, 1, 20);
        let mut b = FaultLog::new();
        let y = b.record(30, FaultKind::TestAbort, "r2", "vm", "two");
        b.mark_lost(y, 2);

        // Serial reference: same records into one log.
        let mut serial = FaultLog::new();
        let sx = serial.record(10, FaultKind::ApiError, "r1", "", "one");
        serial.mark_recovered(sx, 1, 20);
        let sy = serial.record(30, FaultKind::TestAbort, "r2", "vm", "two");
        serial.mark_lost(sy, 2);

        a.absorb(b);
        assert_eq!(a, serial);
        assert_eq!(a.faults()[1].id, 1);
    }

    #[test]
    fn empty_log() {
        let log = FaultLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.summary(), FaultSummary::default());
    }
}
