//! Data-completeness reporting: expected vs. collected server-hours.
//!
//! The paper's longitudinal analysis had to reason about holes in the
//! record without knowing why each hole existed. The simulation knows:
//! the orchestrator computes how many server-hours *should* have been
//! measured per region, counts how many actually landed in the TSDB,
//! and the difference must reconcile — exactly — against the lost
//! hours in the [`crate::FaultLog`].

use crate::log::FaultLog;
use std::collections::BTreeMap;

/// Completeness accounting for one region (one tier of one region, for
/// differential campaigns — the region string carries the tier suffix).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionCompleteness {
    /// Region (and tier) label.
    pub region: String,
    /// Server-hours the schedule called for.
    pub expected_s_hours: u64,
    /// Server-hours actually collected into the TSDB.
    pub collected_s_hours: u64,
    /// Faults recovered by retries in this region (no data lost).
    pub recovered_faults: u64,
    /// Server-hours lost, by fault kind name.
    pub lost_by_kind: BTreeMap<&'static str, u64>,
}

impl RegionCompleteness {
    /// Expected minus collected.
    pub fn missing_s_hours(&self) -> u64 {
        self.expected_s_hours.saturating_sub(self.collected_s_hours)
    }

    /// Collected / expected, in [0, 1]; 1.0 when nothing was expected.
    pub fn completeness(&self) -> f64 {
        if self.expected_s_hours == 0 {
            1.0
        } else {
            self.collected_s_hours as f64 / self.expected_s_hours as f64
        }
    }

    /// Lost server-hours the fault log attributes to this region.
    pub fn lost_s_hours(&self) -> u64 {
        self.lost_by_kind.values().sum()
    }
}

/// Campaign-wide completeness report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletenessReport {
    /// Per-region rows, keyed by region label.
    pub regions: BTreeMap<String, RegionCompleteness>,
}

impl CompletenessReport {
    /// An empty report.
    pub fn new() -> CompletenessReport {
        CompletenessReport::default()
    }

    fn row(&mut self, region: &str) -> &mut RegionCompleteness {
        self.regions
            .entry(region.to_string())
            .or_insert_with(|| RegionCompleteness {
                region: region.to_string(),
                ..RegionCompleteness::default()
            })
    }

    /// Adds expected server-hours for a region.
    pub fn add_expected(&mut self, region: &str, s_hours: u64) {
        self.row(region).expected_s_hours += s_hours;
    }

    /// Adds collected server-hours for a region.
    pub fn add_collected(&mut self, region: &str, s_hours: u64) {
        self.row(region).collected_s_hours += s_hours;
    }

    /// Folds a fault log's outcomes into the per-region rows.
    pub fn absorb_log(&mut self, log: &FaultLog) {
        use crate::log::FaultOutcome;
        for f in log.faults() {
            match f.outcome {
                FaultOutcome::Recovered { .. } => self.row(&f.region).recovered_faults += 1,
                FaultOutcome::Lost { s_hours } => {
                    *self
                        .row(&f.region)
                        .lost_by_kind
                        .entry(f.kind.name())
                        .or_insert(0) += s_hours;
                }
                FaultOutcome::Unhandled => {}
            }
        }
    }

    /// Sums another report's tallies into this one. All row fields are
    /// unsigned counters, so merging worker-local reports in any order
    /// yields the same totals a serial run accumulates.
    pub fn merge(&mut self, other: &CompletenessReport) {
        for r in other.regions.values() {
            let row = self.row(&r.region);
            row.expected_s_hours += r.expected_s_hours;
            row.collected_s_hours += r.collected_s_hours;
            row.recovered_faults += r.recovered_faults;
            for (kind, hours) in &r.lost_by_kind {
                *row.lost_by_kind.entry(kind).or_insert(0) += hours;
            }
        }
    }

    /// Total expected server-hours across regions.
    pub fn total_expected(&self) -> u64 {
        self.regions.values().map(|r| r.expected_s_hours).sum()
    }

    /// Total collected server-hours across regions.
    pub fn total_collected(&self) -> u64 {
        self.regions.values().map(|r| r.collected_s_hours).sum()
    }

    /// Total missing server-hours across regions.
    pub fn total_missing(&self) -> u64 {
        self.regions.values().map(|r| r.missing_s_hours()).sum()
    }

    /// Campaign-wide completeness fraction.
    pub fn overall_completeness(&self) -> f64 {
        let exp = self.total_expected();
        if exp == 0 {
            1.0
        } else {
            self.total_collected() as f64 / exp as f64
        }
    }

    /// True when, for every region, `expected − collected` equals the
    /// lost hours the fault log attributes there. This is the
    /// ground-truth invariant the property tests assert.
    pub fn reconciles(&self) -> bool {
        self.regions
            .values()
            .all(|r| r.missing_s_hours() == r.lost_s_hours())
    }

    /// Regions where the invariant fails, with (missing, lost) pairs —
    /// for diagnostics when [`Self::reconciles`] is false.
    pub fn discrepancies(&self) -> Vec<(String, u64, u64)> {
        self.regions
            .values()
            .filter(|r| r.missing_s_hours() != r.lost_s_hours())
            .map(|r| (r.region.clone(), r.missing_s_hours(), r.lost_s_hours()))
            .collect()
    }

    /// Serializes the report to JSON (for campaign checkpoints).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        let mut regions = Map::new();
        for r in self.regions.values() {
            let mut m = Map::new();
            m.insert("expected_s_hours".into(), r.expected_s_hours.into());
            m.insert("collected_s_hours".into(), r.collected_s_hours.into());
            m.insert("recovered_faults".into(), r.recovered_faults.into());
            let mut lost = Map::new();
            for (kind, hours) in &r.lost_by_kind {
                lost.insert((*kind).into(), (*hours).into());
            }
            m.insert("lost_by_kind".into(), Value::Object(lost));
            regions.insert(r.region.clone(), Value::Object(m));
        }
        Value::Object(regions)
    }

    /// Restores a report serialized by [`Self::to_json`].
    pub fn from_json(v: &serde_json::Value) -> Result<CompletenessReport, String> {
        use crate::plan::FaultKind;
        let obj = v
            .as_object()
            .ok_or("completeness report must be an object")?;
        let mut rep = CompletenessReport::new();
        for (region, m) in obj {
            let u = |k: &str| m.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            let row = rep.row(region);
            row.expected_s_hours = u("expected_s_hours");
            row.collected_s_hours = u("collected_s_hours");
            row.recovered_faults = u("recovered_faults");
            if let Some(lost) = m.get("lost_by_kind").and_then(|l| l.as_object()) {
                for (kind_name, hours) in lost {
                    let kind = FaultKind::parse(kind_name)
                        .ok_or_else(|| format!("unknown fault kind {kind_name:?}"))?;
                    row.lost_by_kind
                        .insert(kind.name(), hours.as_u64().unwrap_or(0));
                }
            }
        }
        Ok(rep)
    }

    /// Human-readable table, one row per region plus a totals line.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "region                         expected  collected    missing  recovered  complete\n",
        );
        for r in self.regions.values() {
            out.push_str(&format!(
                "{:<30} {:>9} {:>10} {:>10} {:>10} {:>8.2}%\n",
                r.region,
                r.expected_s_hours,
                r.collected_s_hours,
                r.missing_s_hours(),
                r.recovered_faults,
                r.completeness() * 100.0
            ));
        }
        out.push_str(&format!(
            "{:<30} {:>9} {:>10} {:>10} {:>10} {:>8.2}%\n",
            "TOTAL",
            self.total_expected(),
            self.total_collected(),
            self.total_missing(),
            self.regions
                .values()
                .map(|r| r.recovered_faults)
                .sum::<u64>(),
            self.overall_completeness() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    #[test]
    fn reconciliation_holds_when_log_accounts_for_gap() {
        let mut log = FaultLog::new();
        let id = log.record(3600, FaultKind::VmPreemption, "us-west1", "vm-0", "");
        log.mark_lost(id, 5);
        let rid = log.record(7200, FaultKind::ApiError, "us-west1", "", "create_vm");
        log.mark_recovered(rid, 1, 7230);

        let mut rep = CompletenessReport::new();
        rep.add_expected("us-west1", 100);
        rep.add_collected("us-west1", 95);
        rep.absorb_log(&log);

        assert!(rep.reconciles(), "{:?}", rep.discrepancies());
        let row = &rep.regions["us-west1"];
        assert_eq!(row.missing_s_hours(), 5);
        assert_eq!(row.lost_s_hours(), 5);
        assert_eq!(row.recovered_faults, 1);
        assert!((row.completeness() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn reconciliation_fails_on_unexplained_gap() {
        let mut rep = CompletenessReport::new();
        rep.add_expected("eu-west1", 50);
        rep.add_collected("eu-west1", 40);
        assert!(!rep.reconciles());
        assert_eq!(rep.discrepancies(), vec![("eu-west1".to_string(), 10, 0)]);
    }

    #[test]
    fn totals_and_render() {
        let mut rep = CompletenessReport::new();
        rep.add_expected("a", 10);
        rep.add_collected("a", 10);
        rep.add_expected("b", 20);
        rep.add_collected("b", 18);
        assert_eq!(rep.total_expected(), 30);
        assert_eq!(rep.total_collected(), 28);
        assert_eq!(rep.total_missing(), 2);
        assert!((rep.overall_completeness() - 28.0 / 30.0).abs() < 1e-12);
        let text = rep.render();
        assert!(text.contains("TOTAL"));
        assert!(text.lines().count() == 4);
    }

    #[test]
    fn json_roundtrip() {
        let mut log = FaultLog::new();
        let id = log.record(0, FaultKind::VmPreemption, "us-west1", "vm-0", "");
        log.mark_lost(id, 7);
        let rid = log.record(0, FaultKind::ApiError, "us-west1", "", "");
        log.mark_recovered(rid, 2, 60);
        let mut rep = CompletenessReport::new();
        rep.add_expected("us-west1", 100);
        rep.add_collected("us-west1", 93);
        rep.absorb_log(&log);
        let back = CompletenessReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(rep, back);
        assert!(back.reconciles());
    }

    #[test]
    fn merge_sums_all_counters() {
        let mut a = CompletenessReport::new();
        a.add_expected("r1", 10);
        a.add_collected("r1", 8);
        let mut log = FaultLog::new();
        let id = log.record(0, FaultKind::VmPreemption, "r1", "vm", "");
        log.mark_lost(id, 2);
        a.absorb_log(&log);

        let mut b = CompletenessReport::new();
        b.add_expected("r1", 5);
        b.add_collected("r1", 5);
        b.add_expected("r2", 7);
        b.add_collected("r2", 7);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total_expected(), 22);
        assert_eq!(merged.total_collected(), 20);
        assert_eq!(merged.regions["r1"].lost_by_kind["vm_preemption"], 2);
        assert!(merged.reconciles());

        // Merge commutes (all counters are unsigned sums).
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(merged, flipped);
    }

    #[test]
    fn empty_report_is_complete() {
        let rep = CompletenessReport::new();
        assert!(rep.reconciles());
        assert_eq!(rep.overall_completeness(), 1.0);
    }
}
