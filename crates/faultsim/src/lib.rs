//! `faultsim`: deterministic fault injection over sim-time.
//!
//! The paper's five-month campaign ran on real cloud infrastructure,
//! where VM maintenance events, crashed cron jobs, failed uploads and
//! flaky APIs punched holes in the longitudinal record that the analysis
//! had to tolerate. Because this reproduction *simulates* the cloud, it
//! can do something the paper could not: inject those faults with ground
//! truth, and verify — exactly — that the orchestrator's recovery
//! machinery accounts for every sample the faults cost.
//!
//! The crate provides three pieces:
//!
//! * [`FaultPlan`] — a seeded, declarative schedule of typed faults
//!   ([`FaultKind`]) over sim-time. Every query is a *pure function* of
//!   `(seed, identifiers, time)` — no shared RNG stream — so adding an
//!   injection point never perturbs any other draw, and a plan with all
//!   rates at zero ([`FaultPlan::none`]) is bitwise invisible: the
//!   orchestrated campaign produces byte-identical output with hooks
//!   compiled in.
//! * [`FaultLog`] — the ground-truth record of every fault that actually
//!   fired, later reconciled against the orchestrator's
//!   [`CompletenessReport`] (expected vs. collected server-hours).
//! * [`RetryPolicy`] — sim-time exponential backoff with deterministic
//!   jitter and bounded attempt budgets, used by the resilient
//!   orchestrator in `clasp-core`.
//!
//! Plans are buildable in code, by name ([`FaultPlan::builtin`]) or from
//! JSON ([`FaultPlan::from_json_str`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod plan;
pub mod report;
pub mod retry;

pub use log::{FaultLog, FaultOutcome, FaultSummary, InjectedFault};
pub use plan::{CronEffect, FaultKind, FaultPlan, FaultRates, LinkFault, ScheduledFault, VmScope};
pub use report::{CompletenessReport, RegionCompleteness};
pub use retry::RetryPolicy;

/// Stable 64-bit key for a string identifier (FNV-1a), used to feed
/// region/VM/server names into the plan's hash-based draws.
pub fn name_key(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}
