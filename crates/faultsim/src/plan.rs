//! Fault plans: seeded, declarative schedules of typed faults.
//!
//! A plan combines *rate-based* faults (each an independent Bernoulli
//! draw per opportunity, hashed from `(plan seed, identifiers, time)`)
//! with *scheduled* faults pinned to exact sim-times. Both are pure
//! functions of their inputs: querying a plan never mutates it, and two
//! identical queries always agree — the property the checkpoint/resume
//! machinery and the ground-truth reconciliation tests lean on.

use crate::name_key;
use simnet::routing::load_key;

/// The typed faults the simulator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// The VM is preempted (maintenance/live-migration failure) and is
    /// gone for a configured number of whole hours.
    VmPreemption,
    /// The VM's measurement stack crash-loops: up, but every cron run
    /// dies for a configured number of consecutive hours.
    CrashLoop,
    /// A transient cloud-API error on a control-plane call (retryable).
    ApiError,
    /// A raw-batch upload to the storage bucket fails (retryable).
    UploadFailure,
    /// The hourly cron tick never fires (detected by the watchdog).
    CronMiss,
    /// The cron tick fires late by a bounded number of seconds.
    CronSkew,
    /// A speed test aborts mid-run (browser crash, socket reset);
    /// retryable within the slot.
    TestAbort,
    /// The regional API quota is exhausted for the rest of the hour.
    QuotaExhausted,
    /// An interdomain link loses part of its capacity (a cut LAG
    /// member, a failed parallel circuit).
    LinkCapacityCut,
    /// An interdomain link picks up a persistent loss floor (a dirty
    /// optic, a faulty linecard).
    LinkLossFloor,
    /// An interdomain link gains extra one-way delay (an underlay
    /// reroute over a longer physical path).
    LinkDelay,
}

impl FaultKind {
    /// Stable snake_case name (used in JSON profiles and reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::VmPreemption => "vm_preemption",
            FaultKind::CrashLoop => "crash_loop",
            FaultKind::ApiError => "api_error",
            FaultKind::UploadFailure => "upload_failure",
            FaultKind::CronMiss => "cron_miss",
            FaultKind::CronSkew => "cron_skew",
            FaultKind::TestAbort => "test_abort",
            FaultKind::QuotaExhausted => "quota_exhausted",
            FaultKind::LinkCapacityCut => "link_capacity_cut",
            FaultKind::LinkLossFloor => "link_loss_floor",
            FaultKind::LinkDelay => "link_delay",
        }
    }

    /// Parses a snake_case kind name.
    pub fn parse(name: &str) -> Option<FaultKind> {
        Some(match name {
            "vm_preemption" => FaultKind::VmPreemption,
            "crash_loop" => FaultKind::CrashLoop,
            "api_error" => FaultKind::ApiError,
            "upload_failure" => FaultKind::UploadFailure,
            "cron_miss" => FaultKind::CronMiss,
            "cron_skew" => FaultKind::CronSkew,
            "test_abort" => FaultKind::TestAbort,
            "quota_exhausted" => FaultKind::QuotaExhausted,
            "link_capacity_cut" => FaultKind::LinkCapacityCut,
            "link_loss_floor" => FaultKind::LinkLossFloor,
            "link_delay" => FaultKind::LinkDelay,
            _ => return None,
        })
    }

    /// All kinds, in report order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::VmPreemption,
        FaultKind::CrashLoop,
        FaultKind::ApiError,
        FaultKind::UploadFailure,
        FaultKind::CronMiss,
        FaultKind::CronSkew,
        FaultKind::TestAbort,
        FaultKind::QuotaExhausted,
        FaultKind::LinkCapacityCut,
        FaultKind::LinkLossFloor,
        FaultKind::LinkDelay,
    ];
}

/// Per-opportunity probabilities (and durations) for rate-based faults.
///
/// "Opportunity" differs by kind: VM outages and cron faults draw once
/// per VM-hour, quota bursts once per region-hour, API/upload/test
/// faults once per *attempt* (so retries re-draw independently).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// P(preemption starts) per VM-hour.
    pub vm_preemption: f64,
    /// Whole hours a preemption lasts.
    pub preemption_hours: u64,
    /// P(crash loop starts) per VM-hour.
    pub crash_loop: f64,
    /// Consecutive hours a crash loop eats.
    pub crash_loop_hours: u64,
    /// P(transient error) per control-plane API attempt.
    pub api_error: f64,
    /// P(failure) per bucket-upload attempt.
    pub upload_failure: f64,
    /// P(the cron tick never fires) per VM-hour (per watchdog attempt).
    pub cron_miss: f64,
    /// P(the cron tick fires late) per VM-hour.
    pub cron_skew: f64,
    /// Maximum lateness in seconds when a skew fires.
    pub max_skew_s: u64,
    /// P(mid-test abort) per speed-test attempt.
    pub test_abort: f64,
    /// P(quota burst) per region-hour.
    pub quota_burst: f64,
}

impl FaultRates {
    /// All zeros: injects nothing.
    pub const ZERO: FaultRates = FaultRates {
        vm_preemption: 0.0,
        preemption_hours: 2,
        crash_loop: 0.0,
        crash_loop_hours: 3,
        api_error: 0.0,
        upload_failure: 0.0,
        cron_miss: 0.0,
        cron_skew: 0.0,
        max_skew_s: 300,
        test_abort: 0.0,
        quota_burst: 0.0,
    };

    /// Uniform rates: every per-opportunity probability set to `p`,
    /// with default durations. The "1% fault profile" in EXPERIMENTS.md
    /// is `uniform(0.01)`.
    pub fn uniform(p: f64) -> FaultRates {
        FaultRates {
            vm_preemption: p,
            crash_loop: p,
            api_error: p,
            upload_failure: p,
            cron_miss: p,
            cron_skew: p,
            test_abort: p,
            quota_burst: p,
            ..FaultRates::ZERO
        }
    }

    fn is_zero(&self) -> bool {
        self.vm_preemption == 0.0
            && self.crash_loop == 0.0
            && self.api_error == 0.0
            && self.upload_failure == 0.0
            && self.cron_miss == 0.0
            && self.cron_skew == 0.0
            && self.test_abort == 0.0
            && self.quota_burst == 0.0
    }
}

/// A fault pinned to an exact sim-time window, optionally scoped to one
/// region and/or one VM (unset scope fields match everything).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// What to inject.
    pub kind: FaultKind,
    /// First hour index (sim hours since epoch) the fault is active.
    pub start_hour: u64,
    /// Whole hours the fault stays active.
    pub duration_hours: u64,
    /// Restrict to this region, if set.
    pub region: Option<String>,
    /// Restrict to this VM name, if set.
    pub vm: Option<String>,
}

impl ScheduledFault {
    fn active_at(&self, hour: u64) -> bool {
        hour >= self.start_hour && hour < self.start_hour + self.duration_hours
    }

    fn matches(&self, region: &str, vm: Option<&str>) -> bool {
        self.region.as_deref().is_none_or(|r| r == region)
            && match (&self.vm, vm) {
                (None, _) => true,
                (Some(want), Some(got)) => want == got,
                (Some(_), None) => false,
            }
    }
}

/// A scheduled degradation of one interdomain link — the interconnect
/// analogue of [`ScheduledFault`]. Link faults are *environmental*:
/// they degrade paths via the simnet fluid model rather than eating
/// VM-hours, so they never contribute to completeness loss, only to
/// measured performance (and the ground-truth [`crate::FaultLog`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// One of the `Link*` fault kinds.
    pub kind: FaultKind,
    /// The affected interdomain link's id (`simnet` `LinkId` value).
    pub link: u32,
    /// First hour index (sim hours since epoch) the fault is active.
    pub start_hour: u64,
    /// Whole hours the fault stays active.
    pub duration_hours: u64,
    /// Kind-specific magnitude: the fraction of capacity *removed* for
    /// [`FaultKind::LinkCapacityCut`] (`0.75` keeps a quarter), the
    /// added loss rate for [`FaultKind::LinkLossFloor`], or the added
    /// one-way delay in ms for [`FaultKind::LinkDelay`].
    pub magnitude: f64,
}

impl LinkFault {
    /// The simnet degradation this fault induces while active.
    pub fn degradation(&self) -> simnet::perf::LinkDegradation {
        let (capacity_factor, loss_floor, added_delay_ms) = match self.kind {
            FaultKind::LinkCapacityCut => ((1.0 - self.magnitude).clamp(0.0, 1.0), 0.0, 0.0),
            FaultKind::LinkLossFloor => (1.0, self.magnitude.max(0.0), 0.0),
            _ => (1.0, 0.0, self.magnitude.max(0.0)),
        };
        simnet::perf::LinkDegradation {
            link: simnet::topology::LinkId(self.link),
            start_s: self.start_hour * 3600,
            end_s: (self.start_hour + self.duration_hours) * 3600,
            capacity_factor,
            loss_floor,
            added_delay_ms,
        }
    }
}

/// What the cron scheduler does in a given hour for a given VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CronEffect {
    /// Tick fired on time.
    OnTime,
    /// Tick never fired (watchdog must re-fire or the hour is lost).
    Miss,
    /// Tick fired late by this many seconds.
    Skew(u64),
}

/// The scope identifying one VM for fault draws.
#[derive(Debug, Clone, Copy)]
pub struct VmScope<'a> {
    /// Region the VM lives in.
    pub region: &'a str,
    /// VM instance name.
    pub vm: &'a str,
}

/// A complete fault-injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed all rate draws key off. Two plans with equal rates but
    /// different seeds inject faults at different (but equally
    /// distributed) places.
    pub seed: u64,
    /// Rate-based fault probabilities.
    pub rates: FaultRates,
    /// Faults pinned to exact times.
    pub scheduled: Vec<ScheduledFault>,
    /// Interdomain-link degradations pinned to exact times.
    pub link_faults: Vec<LinkFault>,
    /// Back-compat shim for the retired `CampaignConfig::outage_rate`
    /// knob: P(whole VM-hour lost), drawn with the exact hash the old
    /// field used so existing seeds reproduce identical gaps. Unlike
    /// typed faults this is *not* retried — the hour is silently lost,
    /// as before (the fault is still logged as ground truth).
    pub legacy_outage_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing, bitwise-invisible to campaigns.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rates: FaultRates::ZERO,
            scheduled: Vec::new(),
            link_faults: Vec::new(),
            legacy_outage_rate: 0.0,
        }
    }

    /// A plan with uniform per-opportunity probability `p` for every
    /// typed fault kind.
    pub fn uniform(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: FaultRates::uniform(p),
            scheduled: Vec::new(),
            link_faults: Vec::new(),
            legacy_outage_rate: 0.0,
        }
    }

    /// Reproduces the retired `outage_rate` behaviour exactly.
    pub fn legacy_outage(rate: f64) -> FaultPlan {
        FaultPlan {
            legacy_outage_rate: rate,
            ..FaultPlan::none()
        }
    }

    /// Named built-in profiles: `none`, `light` (0.1 %), `moderate`
    /// (1 %), `heavy` (5 %), and `gcp-2020` (asymmetric rates shaped
    /// like the incidents the paper's campaign period plausibly saw:
    /// uploads and cron flakier than preemptions).
    pub fn builtin(name: &str) -> Option<FaultPlan> {
        Some(match name {
            "none" => FaultPlan::none(),
            "light" => FaultPlan::uniform(0xfau64, 0.001),
            "moderate" => FaultPlan::uniform(0xfau64, 0.01),
            "heavy" => FaultPlan::uniform(0xfau64, 0.05),
            "gcp-2020" => FaultPlan {
                seed: 0x6c9_2020,
                rates: FaultRates {
                    vm_preemption: 0.0004,
                    preemption_hours: 2,
                    crash_loop: 0.0002,
                    crash_loop_hours: 4,
                    api_error: 0.002,
                    upload_failure: 0.005,
                    cron_miss: 0.003,
                    cron_skew: 0.01,
                    max_skew_s: 300,
                    test_abort: 0.004,
                    quota_burst: 0.0002,
                },
                scheduled: Vec::new(),
                link_faults: Vec::new(),
                legacy_outage_rate: 0.0,
            },
            _ => return None,
        })
    }

    /// True when the plan can never inject anything — queries short-
    /// circuit without hashing, keeping the zero-fault path free.
    pub fn is_none(&self) -> bool {
        self.rates.is_zero()
            && self.scheduled.is_empty()
            && self.link_faults.is_empty()
            && self.legacy_outage_rate == 0.0
    }

    /// The simnet degradations induced by this plan's link faults, in
    /// canonical order (empty when the plan has none — in which case
    /// installing them is bitwise invisible to the fluid model).
    pub fn link_degradations(&self) -> Vec<simnet::perf::LinkDegradation> {
        let mut v: Vec<_> = self
            .link_faults
            .iter()
            .map(LinkFault::degradation)
            .collect();
        v.sort_by_key(|d| (d.link.0, d.start_s, d.end_s));
        v
    }

    /// Uniform `[0,1)` draw for `(namespace, key, time)` under this seed.
    fn unit(&self, ns: &[u8], key: u64, t: u64) -> f64 {
        let h = load_key(ns, key ^ self.seed, t);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn hits(&self, p: f64, ns: &[u8], key: u64, t: u64) -> bool {
        p > 0.0 && self.unit(ns, key, t) < p
    }

    fn scheduled_vm_fault(&self, scope: VmScope<'_>, hour: u64) -> Option<(FaultKind, u64)> {
        self.scheduled
            .iter()
            .filter(|s| {
                matches!(s.kind, FaultKind::VmPreemption | FaultKind::CrashLoop)
                    && s.start_hour == hour
                    && s.matches(scope.region, Some(scope.vm))
            })
            .map(|s| (s.kind, s.duration_hours))
            .next()
    }

    /// The VM-outage fault (preemption or crash loop) *starting* exactly
    /// at `hour` for this VM, with its duration in hours. At most one
    /// starts per hour (preemption wins ties).
    pub fn vm_fault_starting(&self, scope: VmScope<'_>, hour: u64) -> Option<(FaultKind, u64)> {
        if self.is_none() {
            return None;
        }
        let key = name_key(scope.vm);
        if self.hits(self.rates.vm_preemption, b"flt.preempt", key, hour) {
            return Some((FaultKind::VmPreemption, self.rates.preemption_hours.max(1)));
        }
        if self.hits(self.rates.crash_loop, b"flt.crash", key, hour) {
            return Some((FaultKind::CrashLoop, self.rates.crash_loop_hours.max(1)));
        }
        self.scheduled_vm_fault(scope, hour)
    }

    /// True when some VM-outage window (rate-based or scheduled) covers
    /// `hour` *without starting at it* — the continuation hours of a
    /// multi-hour outage. The orchestrator logs the fault once at its
    /// start and calls this for the tail.
    pub fn vm_down_continuation(&self, scope: VmScope<'_>, hour: u64) -> bool {
        if self.is_none() {
            return false;
        }
        let lookback = self
            .rates
            .preemption_hours
            .max(self.rates.crash_loop_hours)
            .max(
                self.scheduled
                    .iter()
                    .map(|s| s.duration_hours)
                    .max()
                    .unwrap_or(0),
            );
        for back in 1..lookback {
            let Some(h) = hour.checked_sub(back) else {
                break;
            };
            if let Some((_, dur)) = self.vm_fault_starting(scope, h) {
                if dur > back {
                    return true;
                }
            }
        }
        self.scheduled.iter().any(|s| {
            matches!(s.kind, FaultKind::VmPreemption | FaultKind::CrashLoop)
                && s.active_at(hour)
                && s.start_hour != hour
                && s.matches(scope.region, Some(scope.vm))
        })
    }

    /// What the cron daemon does for this VM-hour. `attempt` 0 is the
    /// scheduled tick; the watchdog's re-fires pass 1, 2, … and draw
    /// independently, so a retry can succeed where the tick failed.
    pub fn cron_effect(&self, scope: VmScope<'_>, hour: u64, attempt: u32) -> CronEffect {
        if self.is_none() {
            return CronEffect::OnTime;
        }
        let key = name_key(scope.vm) ^ (attempt as u64) << 48;
        if self.hits(self.rates.cron_miss, b"flt.cronmiss", key, hour) {
            return CronEffect::Miss;
        }
        if self.scheduled.iter().any(|s| {
            s.kind == FaultKind::CronMiss
                && s.active_at(hour)
                && s.matches(scope.region, Some(scope.vm))
        }) && attempt == 0
        {
            return CronEffect::Miss;
        }
        if attempt == 0 && self.hits(self.rates.cron_skew, b"flt.cronskew", key, hour) {
            let span = self.rates.max_skew_s.max(1);
            let skew = 1 + load_key(b"flt.skewamt", key ^ self.seed, hour) % span;
            return CronEffect::Skew(skew);
        }
        CronEffect::OnTime
    }

    /// Whether a control-plane API attempt fails transiently.
    pub fn api_error(&self, op: &str, t_secs: u64, attempt: u32) -> bool {
        if self.is_none() {
            return false;
        }
        let key = name_key(op) ^ (attempt as u64) << 48;
        self.hits(self.rates.api_error, b"flt.api", key, t_secs)
    }

    /// Whether this VM's day-`day` raw-batch upload attempt fails.
    pub fn upload_fails(&self, scope: VmScope<'_>, day: u64, attempt: u32) -> bool {
        if self.is_none() {
            return false;
        }
        let key = name_key(scope.vm) ^ (attempt as u64) << 48;
        self.hits(self.rates.upload_failure, b"flt.upload", key, day)
            || self.scheduled.iter().any(|s| {
                s.kind == FaultKind::UploadFailure
                    && s.active_at(day * 24)
                    && s.matches(scope.region, Some(scope.vm))
                    && attempt == 0
            })
    }

    /// Whether a speed-test attempt aborts mid-run.
    pub fn test_aborts(&self, scope: VmScope<'_>, server: &str, t_secs: u64, attempt: u32) -> bool {
        if self.is_none() {
            return false;
        }
        let key = name_key(scope.vm) ^ name_key(server).rotate_left(17) ^ (attempt as u64) << 48;
        self.hits(self.rates.test_abort, b"flt.abort", key, t_secs)
    }

    /// Whether the regional quota is exhausted for this hour.
    pub fn quota_exhausted(&self, region: &str, hour: u64) -> bool {
        if self.is_none() {
            return false;
        }
        self.hits(self.rates.quota_burst, b"flt.quota", name_key(region), hour)
            || self.scheduled.iter().any(|s| {
                s.kind == FaultKind::QuotaExhausted && s.active_at(hour) && s.matches(region, None)
            })
    }

    /// The retired `outage_rate` draw, bit-for-bit: callers pass the
    /// exact key material the old inline code hashed.
    pub fn legacy_vm_outage(&self, legacy_key: u64, t_secs: u64) -> bool {
        if self.legacy_outage_rate <= 0.0 {
            return false;
        }
        let h = load_key(b"outage", legacy_key, t_secs);
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        draw < self.legacy_outage_rate
    }

    // ---- JSON profiles ----

    /// Serializes the plan to a JSON value (canonical key order).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::{Map, Value};
        let mut rates = Map::new();
        let r = &self.rates;
        rates.insert("vm_preemption".into(), r.vm_preemption.into());
        rates.insert("preemption_hours".into(), r.preemption_hours.into());
        rates.insert("crash_loop".into(), r.crash_loop.into());
        rates.insert("crash_loop_hours".into(), r.crash_loop_hours.into());
        rates.insert("api_error".into(), r.api_error.into());
        rates.insert("upload_failure".into(), r.upload_failure.into());
        rates.insert("cron_miss".into(), r.cron_miss.into());
        rates.insert("cron_skew".into(), r.cron_skew.into());
        rates.insert("max_skew_s".into(), r.max_skew_s.into());
        rates.insert("test_abort".into(), r.test_abort.into());
        rates.insert("quota_burst".into(), r.quota_burst.into());
        let scheduled: Vec<Value> = self
            .scheduled
            .iter()
            .map(|s| {
                let mut m = Map::new();
                m.insert("kind".into(), s.kind.name().into());
                m.insert("start_hour".into(), s.start_hour.into());
                m.insert("duration_hours".into(), s.duration_hours.into());
                if let Some(region) = &s.region {
                    m.insert("region".into(), region.clone().into());
                }
                if let Some(vm) = &s.vm {
                    m.insert("vm".into(), vm.clone().into());
                }
                Value::Object(m)
            })
            .collect();
        let link_faults: Vec<Value> = self
            .link_faults
            .iter()
            .map(|l| {
                let mut m = Map::new();
                m.insert("kind".into(), l.kind.name().into());
                m.insert("link".into(), u64::from(l.link).into());
                m.insert("start_hour".into(), l.start_hour.into());
                m.insert("duration_hours".into(), l.duration_hours.into());
                m.insert("magnitude".into(), l.magnitude.into());
                Value::Object(m)
            })
            .collect();
        let mut top = Map::new();
        top.insert("seed".into(), self.seed.into());
        top.insert("rates".into(), Value::Object(rates));
        top.insert("scheduled".into(), Value::Array(scheduled));
        if !link_faults.is_empty() {
            top.insert("link_faults".into(), Value::Array(link_faults));
        }
        if self.legacy_outage_rate > 0.0 {
            top.insert("legacy_outage_rate".into(), self.legacy_outage_rate.into());
        }
        Value::Object(top)
    }

    /// Loads a plan from a JSON document produced by [`Self::to_json`]
    /// (or written by hand; missing rate fields default to zero).
    pub fn from_json(v: &serde_json::Value) -> Result<FaultPlan, String> {
        let f = |m: &serde_json::Value, k: &str| m.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let u =
            |m: &serde_json::Value, k: &str, d: u64| m.get(k).and_then(|v| v.as_u64()).unwrap_or(d);
        let empty = serde_json::Value::Object(serde_json::Map::new());
        let rates_v = v.get("rates").unwrap_or(&empty);
        let rates = FaultRates {
            vm_preemption: f(rates_v, "vm_preemption"),
            preemption_hours: u(rates_v, "preemption_hours", 2),
            crash_loop: f(rates_v, "crash_loop"),
            crash_loop_hours: u(rates_v, "crash_loop_hours", 3),
            api_error: f(rates_v, "api_error"),
            upload_failure: f(rates_v, "upload_failure"),
            cron_miss: f(rates_v, "cron_miss"),
            cron_skew: f(rates_v, "cron_skew"),
            max_skew_s: u(rates_v, "max_skew_s", 300),
            test_abort: f(rates_v, "test_abort"),
            quota_burst: f(rates_v, "quota_burst"),
        };
        let mut scheduled = Vec::new();
        if let Some(list) = v.get("scheduled").and_then(|s| s.as_array()) {
            for s in list {
                let kind_name = s
                    .get("kind")
                    .and_then(|k| k.as_str())
                    .ok_or("scheduled fault missing 'kind'")?;
                let kind = FaultKind::parse(kind_name)
                    .ok_or_else(|| format!("unknown fault kind {kind_name:?}"))?;
                scheduled.push(ScheduledFault {
                    kind,
                    start_hour: s
                        .get("start_hour")
                        .and_then(|v| v.as_u64())
                        .ok_or("scheduled fault missing 'start_hour'")?,
                    duration_hours: u(s, "duration_hours", 1),
                    region: s.get("region").and_then(|v| v.as_str()).map(String::from),
                    vm: s.get("vm").and_then(|v| v.as_str()).map(String::from),
                });
            }
        }
        let mut link_faults = Vec::new();
        if let Some(list) = v.get("link_faults").and_then(|s| s.as_array()) {
            for l in list {
                let kind_name = l
                    .get("kind")
                    .and_then(|k| k.as_str())
                    .ok_or("link fault missing 'kind'")?;
                let kind = FaultKind::parse(kind_name)
                    .ok_or_else(|| format!("unknown fault kind {kind_name:?}"))?;
                if !matches!(
                    kind,
                    FaultKind::LinkCapacityCut | FaultKind::LinkLossFloor | FaultKind::LinkDelay
                ) {
                    return Err(format!("{kind_name:?} is not a link fault kind"));
                }
                let link = l
                    .get("link")
                    .and_then(|v| v.as_u64())
                    .ok_or("link fault missing 'link'")?;
                let link = u32::try_from(link).map_err(|_| "link id out of range".to_string())?;
                link_faults.push(LinkFault {
                    kind,
                    link,
                    start_hour: l
                        .get("start_hour")
                        .and_then(|v| v.as_u64())
                        .ok_or("link fault missing 'start_hour'")?,
                    duration_hours: u(l, "duration_hours", 1),
                    magnitude: f(l, "magnitude"),
                });
            }
        }
        Ok(FaultPlan {
            seed: v.get("seed").and_then(|s| s.as_u64()).unwrap_or(0),
            rates,
            scheduled,
            link_faults,
            legacy_outage_rate: f(v, "legacy_outage_rate"),
        })
    }

    /// Parses a plan from JSON text.
    pub fn from_json_str(text: &str) -> Result<FaultPlan, String> {
        let v = serde_json::from_str(text).map_err(|e| e.to_string())?;
        FaultPlan::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCOPE: VmScope<'static> = VmScope {
        region: "us-west1",
        vm: "clasp-us-west1-premium-0",
    };

    #[test]
    fn none_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for hour in 0..5_000 {
            assert!(p.vm_fault_starting(SCOPE, hour).is_none());
            assert!(!p.vm_down_continuation(SCOPE, hour));
            assert_eq!(p.cron_effect(SCOPE, hour, 0), CronEffect::OnTime);
            assert!(!p.quota_exhausted("us-west1", hour));
            assert!(!p.upload_fails(SCOPE, hour / 24, 0));
            assert!(!p.test_aborts(SCOPE, "srv", hour * 3600, 0));
            assert!(!p.api_error("create_vm", hour, 0));
            assert!(!p.legacy_vm_outage(hour, hour));
        }
    }

    #[test]
    fn queries_are_pure() {
        let p = FaultPlan::uniform(7, 0.05);
        for hour in 0..500 {
            assert_eq!(
                p.vm_fault_starting(SCOPE, hour),
                p.vm_fault_starting(SCOPE, hour)
            );
            assert_eq!(p.cron_effect(SCOPE, hour, 0), p.cron_effect(SCOPE, hour, 0));
        }
    }

    #[test]
    fn rates_hit_in_the_right_ballpark() {
        let p = FaultPlan::uniform(3, 0.01);
        let n = 200_000u64;
        let hits = (0..n)
            .filter(|&h| p.vm_fault_starting(SCOPE, h).is_some())
            .count() as f64;
        // preemption ∪ crash loop at 1% each ≈ 1.99%.
        let rate = hits / n as f64;
        assert!((0.015..0.025).contains(&rate), "observed {rate}");
    }

    #[test]
    fn different_vms_fault_independently() {
        let p = FaultPlan::uniform(3, 0.02);
        let other = VmScope {
            region: "us-west1",
            vm: "clasp-us-west1-premium-1",
        };
        let a: Vec<u64> = (0..20_000)
            .filter(|&h| p.vm_fault_starting(SCOPE, h).is_some())
            .collect();
        let b: Vec<u64> = (0..20_000)
            .filter(|&h| p.vm_fault_starting(other, h).is_some())
            .collect();
        assert_ne!(a, b);
        assert!(!a.is_empty() && !b.is_empty());
    }

    #[test]
    fn continuation_follows_start() {
        let mut p = FaultPlan::uniform(11, 0.01);
        p.rates.preemption_hours = 3;
        let start = (0..100_000)
            .find(|&h| {
                matches!(
                    p.vm_fault_starting(SCOPE, h),
                    Some((FaultKind::VmPreemption, _))
                )
            })
            .expect("a preemption fires somewhere");
        assert!(p.vm_down_continuation(SCOPE, start + 1));
        assert!(p.vm_down_continuation(SCOPE, start + 2));
        // Hour `start` itself is the start, not a continuation.
        assert!(
            !p.vm_down_continuation(SCOPE, start)
                || start > 0 && p.vm_fault_starting(SCOPE, start - 1).is_some()
        );
    }

    #[test]
    fn scheduled_faults_respect_scope_and_window() {
        let mut p = FaultPlan::none();
        p.scheduled.push(ScheduledFault {
            kind: FaultKind::VmPreemption,
            start_hour: 10,
            duration_hours: 3,
            region: Some("us-west1".into()),
            vm: None,
        });
        assert_eq!(
            p.vm_fault_starting(SCOPE, 10),
            Some((FaultKind::VmPreemption, 3))
        );
        assert!(p.vm_down_continuation(SCOPE, 11));
        assert!(p.vm_down_continuation(SCOPE, 12));
        assert!(!p.vm_down_continuation(SCOPE, 13));
        let elsewhere = VmScope {
            region: "us-east1",
            vm: "clasp-us-east1-premium-0",
        };
        assert!(p.vm_fault_starting(elsewhere, 10).is_none());
    }

    #[test]
    fn quota_burst_is_region_wide() {
        let mut p = FaultPlan::none();
        p.scheduled.push(ScheduledFault {
            kind: FaultKind::QuotaExhausted,
            start_hour: 5,
            duration_hours: 1,
            region: Some("us-east1".into()),
            vm: None,
        });
        assert!(p.quota_exhausted("us-east1", 5));
        assert!(!p.quota_exhausted("us-east1", 6));
        assert!(!p.quota_exhausted("us-west1", 5));
    }

    #[test]
    fn retry_attempts_draw_independently() {
        let p = FaultPlan::uniform(5, 0.5);
        let flips: Vec<bool> = (0..64)
            .map(|a| p.test_aborts(SCOPE, "s", 3600, a))
            .collect();
        assert!(flips.iter().any(|&b| b) && flips.iter().any(|&b| !b));
    }

    #[test]
    fn legacy_outage_matches_original_formula() {
        let p = FaultPlan::legacy_outage(0.05);
        let seed = 121u64;
        for (vm_idx, tier_salt) in [(0u64, 0x11u64), (1, 0x22)] {
            for hour in 0..2_000u64 {
                let t = hour * 3600;
                let h = load_key(b"outage", seed ^ vm_idx ^ tier_salt, t);
                let expect = (h >> 11) as f64 / (1u64 << 53) as f64 * 1.0 < 0.05;
                assert_eq!(p.legacy_vm_outage(seed ^ vm_idx ^ tier_salt, t), expect);
            }
        }
    }

    #[test]
    fn json_roundtrip_preserves_plan() {
        let mut p = FaultPlan::builtin("gcp-2020").unwrap();
        p.scheduled.push(ScheduledFault {
            kind: FaultKind::UploadFailure,
            start_hour: 48,
            duration_hours: 24,
            region: Some("us-central1".into()),
            vm: Some("clasp-us-central1-premium-2".into()),
        });
        let text = serde_json::to_string_pretty(&p.to_json());
        let back = FaultPlan::from_json_str(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn builtin_profiles_exist() {
        for name in ["none", "light", "moderate", "heavy", "gcp-2020"] {
            assert!(FaultPlan::builtin(name).is_some(), "{name}");
        }
        assert!(FaultPlan::builtin("bogus").is_none());
        assert!(FaultPlan::builtin("none").unwrap().is_none());
    }

    #[test]
    fn link_faults_roundtrip_and_convert() {
        let mut p = FaultPlan::none();
        p.link_faults.push(LinkFault {
            kind: FaultKind::LinkCapacityCut,
            link: 7,
            start_hour: 48,
            duration_hours: 24,
            magnitude: 0.75,
        });
        p.link_faults.push(LinkFault {
            kind: FaultKind::LinkLossFloor,
            link: 3,
            start_hour: 10,
            duration_hours: 5,
            magnitude: 0.02,
        });
        p.link_faults.push(LinkFault {
            kind: FaultKind::LinkDelay,
            link: 3,
            start_hour: 0,
            duration_hours: 2,
            magnitude: 8.0,
        });
        assert!(!p.is_none());
        let text = serde_json::to_string_pretty(&p.to_json());
        let back = FaultPlan::from_json_str(&text).unwrap();
        assert_eq!(p, back);

        let degr = p.link_degradations();
        assert_eq!(degr.len(), 3);
        // Canonical order: (link, start_s).
        assert_eq!(degr[0].link.0, 3);
        assert_eq!(degr[0].start_s, 0);
        assert!((degr[0].added_delay_ms - 8.0).abs() < 1e-12);
        assert_eq!(degr[1].link.0, 3);
        assert!((degr[1].loss_floor - 0.02).abs() < 1e-12);
        assert_eq!(degr[2].link.0, 7);
        assert!((degr[2].capacity_factor - 0.25).abs() < 1e-12);
        assert_eq!(degr[2].start_s, 48 * 3600);
        assert_eq!(degr[2].end_s, 72 * 3600);
    }

    #[test]
    fn link_fault_json_rejects_non_link_kinds() {
        let bad = r#"{"link_faults":[{"kind":"api_error","link":1,"start_hour":0}]}"#;
        assert!(FaultPlan::from_json_str(bad).is_err());
        let missing = r#"{"link_faults":[{"kind":"link_delay","start_hour":0}]}"#;
        assert!(FaultPlan::from_json_str(missing).is_err());
    }

    #[test]
    fn from_json_rejects_bad_kinds() {
        assert!(
            FaultPlan::from_json_str(r#"{"scheduled":[{"kind":"nope","start_hour":1}]}"#).is_err()
        );
        assert!(FaultPlan::from_json_str("not json").is_err());
    }
}
