//! Sim-time retry policy: exponential backoff with deterministic jitter.
//!
//! Real orchestrators jitter their backoff to avoid thundering herds;
//! a deterministic simulation cannot call a wall-clock RNG without
//! destroying reproducibility. The jitter here is hashed from the
//! caller-supplied key and the attempt number, so a resumed campaign
//! re-derives the exact delays the interrupted run used.

use simnet::routing::load_key;

/// Bounded exponential backoff over sim-time seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum total attempts (first try included). 1 = no retries.
    pub max_attempts: u32,
    /// Delay before the first retry, in sim-seconds.
    pub base_delay_s: u64,
    /// Multiplier applied per retry.
    pub factor: u64,
    /// Cap on any single delay, in sim-seconds.
    pub max_delay_s: u64,
    /// Fraction of the delay used as the jitter span (0.0 – 1.0).
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_s: 10,
            factor: 2,
            max_delay_s: 600,
            jitter_frac: 0.25,
        }
    }
}

impl RetryPolicy {
    /// Policy for quick control-plane calls: tight delays, four tries.
    pub fn api() -> RetryPolicy {
        RetryPolicy::default()
    }

    /// Policy for bucket uploads: more patient (uploads are batched at
    /// day end, so minutes of delay cost nothing).
    pub fn upload() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay_s: 30,
            factor: 3,
            max_delay_s: 1800,
            jitter_frac: 0.25,
        }
    }

    /// Policy for in-slot speed-test retries: the hour budget only
    /// leaves room for a couple of quick re-runs.
    pub fn speedtest() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay_s: 5,
            factor: 2,
            max_delay_s: 60,
            jitter_frac: 0.2,
        }
    }

    /// The sim-time delay before retry number `attempt` (1-based: the
    /// delay between the initial failure and the first retry is
    /// `backoff_delay(1, ..)`). Deterministically jittered by
    /// `jitter_key`; different keys de-correlate concurrent retriers.
    pub fn backoff_delay(&self, attempt: u32, jitter_key: u64) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_delay_s
            .saturating_mul(self.factor.saturating_pow(exp))
            .min(self.max_delay_s);
        if self.jitter_frac <= 0.0 || raw == 0 {
            return raw;
        }
        let span = ((raw as f64) * self.jitter_frac) as u64;
        if span == 0 {
            return raw;
        }
        let h = load_key(b"retry.jitter", jitter_key, attempt as u64);
        raw - span / 2 + h % (span + 1)
    }

    /// Total sim-seconds spent if every attempt up to `attempts` failed.
    pub fn total_delay(&self, attempts: u32, jitter_key: u64) -> u64 {
        (1..attempts)
            .map(|a| self.backoff_delay(a, jitter_key))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_delay(1, 0), 10);
        assert_eq!(p.backoff_delay(2, 0), 20);
        assert_eq!(p.backoff_delay(3, 0), 40);
        assert_eq!(p.backoff_delay(10, 0), 600); // capped
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 1..6 {
            for key in 0..50u64 {
                let d1 = p.backoff_delay(attempt, key);
                let d2 = p.backoff_delay(attempt, key);
                assert_eq!(d1, d2);
                let raw = (p.base_delay_s * p.factor.pow(attempt - 1)).min(p.max_delay_s);
                let span = (raw as f64 * p.jitter_frac) as u64;
                assert!(d1 >= raw - span / 2 && d1 <= raw + span - span / 2 + 1);
            }
        }
    }

    #[test]
    fn different_keys_decorrelate() {
        let p = RetryPolicy::default();
        let delays: Vec<u64> = (0..32).map(|k| p.backoff_delay(2, k)).collect();
        let first = delays[0];
        assert!(delays.iter().any(|&d| d != first));
    }

    #[test]
    fn total_delay_sums_failed_attempts() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.total_delay(1, 0), 0);
        assert_eq!(p.total_delay(4, 0), 10 + 20 + 40);
    }
}
