//! Discrete-event, packet-level TCP simulation.
//!
//! The longitudinal CLASP campaign uses a fluid TCP model (`simnet::perf`)
//! because it must evaluate ~1.6 million speed tests. This crate is the
//! packet-level ground truth that validates the fluid model and powers the
//! single-test examples: a small event-driven simulator in the spirit of
//! user-space stacks like smoltcp — explicit state machines, no hidden
//! time, no allocation tricks.
//!
//! * [`engine`] — the event queue and simulated clock (nanosecond ticks);
//! * [`link`] — store-and-forward links with rate, propagation delay,
//!   drop-tail queues, and seeded random loss (fault injection);
//! * [`tcp`] — a window-based TCP sender/receiver pair with slow start,
//!   congestion avoidance, fast retransmit/recovery, RTO backoff, and two
//!   congestion-control algorithms (Reno and CUBIC);
//! * [`flow`] — a harness wiring a sender and receiver across a
//!   forward/reverse path, with a tcpdump-style capture of every packet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod flow;
pub mod link;
pub mod tcp;

pub use engine::{EventQueue, SimClock};
pub use flow::{run_flow, Capture, CaptureRecord, FlowConfig, FlowResult, PathSpec};
pub use link::{LinkSpec, LinkState};
pub use tcp::{CongestionControl, TcpSender};
