//! Store-and-forward links with drop-tail queues and fault injection.
//!
//! A link serialises packets at a fixed rate, delays them by a fixed
//! propagation time, holds at most `queue_pkts` packets (drop-tail), and
//! can drop packets at random with a configured probability — the same
//! fault-injection knob the smoltcp examples expose via `--drop-chance`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Static description of a unidirectional link.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Serialisation rate in Mbps.
    pub rate_mbps: f64,
    /// One-way propagation delay in ms.
    pub delay_ms: f64,
    /// Drop-tail queue capacity in packets (excluding the one in service).
    pub queue_pkts: usize,
    /// Random loss probability applied per packet on top of queue drops.
    pub loss: f64,
}

impl LinkSpec {
    /// Validates and constructs a spec.
    pub fn new(rate_mbps: f64, delay_ms: f64, queue_pkts: usize, loss: f64) -> Self {
        assert!(rate_mbps > 0.0, "rate must be positive");
        assert!(delay_ms >= 0.0, "delay must be nonnegative");
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        Self {
            rate_mbps,
            delay_ms,
            queue_pkts,
            loss,
        }
    }

    /// Serialisation time for `bytes` in nanoseconds.
    pub fn tx_time_ns(&self, bytes: usize) -> u64 {
        ((bytes as f64 * 8.0) / self.rate_mbps * 1000.0).round() as u64
    }

    /// Propagation delay in nanoseconds.
    pub fn prop_ns(&self) -> u64 {
        (self.delay_ms * 1e6).round() as u64
    }
}

/// Runtime state of a link: its queue and loss RNG.
#[derive(Debug)]
pub struct LinkState {
    /// The static spec.
    pub spec: LinkSpec,
    /// Queued packet sizes (bytes), head first; does not include the
    /// packet currently being serialised.
    queue: std::collections::VecDeque<(usize, u64)>,
    /// Whether a packet is in service.
    busy: bool,
    rng: SmallRng,
    /// Counters for diagnostics.
    pub drops_queue: u64,
    /// Random (fault-injected) drops.
    pub drops_random: u64,
    /// Packets accepted for transmission.
    pub accepted: u64,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Packet began service immediately; departure completes after the
    /// returned number of nanoseconds (serialisation + propagation).
    Transmit(u64),
    /// Packet was queued behind others.
    Queued,
    /// Packet was dropped (queue overflow or random loss).
    Dropped,
}

impl LinkState {
    /// Creates link state with a per-link RNG seed.
    pub fn new(spec: LinkSpec, seed: u64) -> Self {
        Self {
            spec,
            queue: std::collections::VecDeque::new(),
            busy: false,
            rng: SmallRng::seed_from_u64(seed),
            drops_queue: 0,
            drops_random: 0,
            accepted: 0,
        }
    }

    /// Offers a packet of `bytes` with opaque token `token` to the link.
    pub fn offer(&mut self, bytes: usize, token: u64) -> Offer {
        if self.spec.loss > 0.0 && self.rng.random::<f64>() < self.spec.loss {
            self.drops_random += 1;
            return Offer::Dropped;
        }
        if self.busy {
            if self.queue.len() >= self.spec.queue_pkts {
                self.drops_queue += 1;
                return Offer::Dropped;
            }
            self.queue.push_back((bytes, token));
            self.accepted += 1;
            return Offer::Queued;
        }
        self.busy = true;
        self.accepted += 1;
        Offer::Transmit(self.spec.tx_time_ns(bytes) + self.spec.prop_ns())
    }

    /// Called when the in-service packet finishes serialisation; returns
    /// the next queued packet `(bytes, token, total_delay_ns)` to put in
    /// service, if any.
    pub fn service_complete(&mut self) -> Option<(usize, u64, u64)> {
        match self.queue.pop_front() {
            Some((bytes, token)) => {
                let delay = self.spec.tx_time_ns(bytes) + self.spec.prop_ns();
                Some((bytes, token, delay))
            }
            None => {
                self.busy = false;
                None
            }
        }
    }

    /// Packets currently queued (excluding in-service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the link is serialising a packet.
    pub fn is_busy(&self) -> bool {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_math() {
        // 1500 bytes at 12 Mbps = 1 ms.
        let s = LinkSpec::new(12.0, 0.0, 10, 0.0);
        assert_eq!(s.tx_time_ns(1500), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn zero_rate_rejected() {
        LinkSpec::new(0.0, 1.0, 1, 0.0);
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut l = LinkState::new(LinkSpec::new(100.0, 1.0, 4, 0.0), 1);
        match l.offer(1000, 0) {
            Offer::Transmit(ns) => {
                // 1000 B at 100 Mbps = 80 µs; +1 ms propagation.
                assert_eq!(ns, 80_000 + 1_000_000);
            }
            other => panic!("expected Transmit, got {other:?}"),
        }
        assert!(l.is_busy());
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = LinkState::new(LinkSpec::new(100.0, 0.0, 2, 0.0), 1);
        assert!(matches!(l.offer(1000, 0), Offer::Transmit(_)));
        assert_eq!(l.offer(1000, 1), Offer::Queued);
        assert_eq!(l.offer(1000, 2), Offer::Queued);
        assert_eq!(l.offer(1000, 3), Offer::Dropped);
        assert_eq!(l.drops_queue, 1);
        assert_eq!(l.queue_len(), 2);
    }

    #[test]
    fn service_complete_drains_queue_in_order() {
        let mut l = LinkState::new(LinkSpec::new(100.0, 0.0, 4, 0.0), 1);
        l.offer(1000, 10);
        l.offer(500, 11);
        l.offer(250, 12);
        let (b1, t1, _) = l.service_complete().unwrap();
        assert_eq!((b1, t1), (500, 11));
        let (b2, t2, _) = l.service_complete().unwrap();
        assert_eq!((b2, t2), (250, 12));
        assert!(l.service_complete().is_none());
        assert!(!l.is_busy());
    }

    #[test]
    fn random_loss_drops_roughly_at_rate() {
        let mut l = LinkState::new(LinkSpec::new(1000.0, 0.0, 1_000_000, 0.3), 7);
        let mut dropped = 0;
        for i in 0..10_000 {
            if l.offer(100, i) == Offer::Dropped {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn loss_is_seed_deterministic() {
        let run = |seed| {
            let mut l = LinkState::new(LinkSpec::new(1000.0, 0.0, 10, 0.5), seed);
            (0..64)
                .map(|i| l.offer(100, i) == Offer::Dropped)
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
