//! The flow harness: TCP connections over a simulated path.
//!
//! Wires `n` [`TcpSender`]/[`TcpReceiver`] pairs across a forward path
//! (data) and a reverse path (ACKs), both built from [`LinkSpec`]s with
//! shared queues — parallel connections contend for the same bottleneck,
//! as the multi-connection speed tests in the paper do. Produces a
//! tcpdump-style [`Capture`] when asked.

use crate::engine::{EventQueue, SimClock};
use crate::link::{LinkSpec, LinkState, Offer};
use crate::tcp::{CongestionControl, SenderActions, TcpReceiver, TcpSender};

/// Ethernet+IP+TCP header overhead per segment, bytes.
const HEADER_BYTES: usize = 54;
/// ACK packet size, bytes.
const ACK_BYTES: usize = 66;
/// Cap on capture records so long runs do not balloon memory.
const CAPTURE_CAP: usize = 200_000;

/// The path a flow traverses: forward links carry data, reverse links
/// carry ACKs. Queues are independent per direction.
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Data-direction links, source first.
    pub fwd: Vec<LinkSpec>,
    /// ACK-direction links, receiver first.
    pub rev: Vec<LinkSpec>,
}

impl PathSpec {
    /// A symmetric path using the same specs both ways.
    pub fn symmetric(links: Vec<LinkSpec>) -> Self {
        let mut rev = links.clone();
        rev.reverse();
        Self { fwd: links, rev }
    }
}

/// Flow-harness configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Congestion control algorithm for every connection.
    pub cc: CongestionControl,
    /// Parallel connections sharing the path.
    pub n_connections: usize,
    /// Maximum segment size (payload), bytes.
    pub mss_bytes: usize,
    /// Wall-clock duration of the transfer, seconds.
    pub duration_s: f64,
    /// RNG seed for link loss.
    pub seed: u64,
    /// Bytes to transfer per connection (`None` = bulk, duration-bounded).
    pub total_bytes: Option<u64>,
    /// Record a packet capture.
    pub capture: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            cc: CongestionControl::Cubic,
            n_connections: 1,
            mss_bytes: 1448,
            duration_s: 10.0,
            seed: 1,
            total_bytes: None,
            capture: false,
        }
    }
}

/// One captured packet event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureRecord {
    /// Time in ms since flow start.
    pub t_ms: f64,
    /// Connection index.
    pub conn: u16,
    /// Segment index (data) or cumulative ACK (ack).
    pub num: u64,
    /// True for ACK packets.
    pub is_ack: bool,
    /// What happened.
    pub event: CaptureEvent,
}

/// Packet event kind in a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureEvent {
    /// Sent by an endpoint.
    Sent,
    /// Delivered to an endpoint.
    Delivered,
    /// Dropped by a link.
    Dropped,
}

/// A bounded packet capture.
#[derive(Debug, Default, Clone)]
pub struct Capture {
    /// Recorded events (capped).
    pub records: Vec<CaptureRecord>,
    /// Events that were not recorded because the cap was hit.
    pub truncated: u64,
}

impl Capture {
    fn push(&mut self, rec: CaptureRecord) {
        if self.records.len() < CAPTURE_CAP {
            self.records.push(rec);
        } else {
            self.truncated += 1;
        }
    }
}

/// Result of a flow run.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Application bytes delivered in order across all connections.
    pub delivered_bytes: u64,
    /// Effective measurement duration, seconds.
    pub duration_s: f64,
    /// Goodput in Mbps.
    pub throughput_mbps: f64,
    /// Total retransmitted segments.
    pub retransmits: u64,
    /// Total RTO firings.
    pub timeouts: u64,
    /// Mean smoothed RTT across connections with samples, ms.
    pub srtt_ms: Option<f64>,
    /// Fraction of data packets dropped by the forward path.
    pub observed_loss: f64,
    /// Packet capture (empty unless requested).
    pub capture: Capture,
}

/// Packed packet token carried through link queues.
#[derive(Debug, Clone, Copy)]
struct Token {
    conn: u16,
    num: u64,
    is_ack: bool,
}

impl Token {
    fn pack(self) -> u64 {
        debug_assert!(self.num < (1 << 47));
        ((self.conn as u64) << 48) | ((self.is_ack as u64) << 47) | self.num
    }
    fn unpack(v: u64) -> Self {
        Token {
            conn: (v >> 48) as u16,
            is_ack: (v >> 47) & 1 == 1,
            num: v & ((1 << 47) - 1),
        }
    }
}

/// ACK tokens pack (cumulative ack, echoed segment) into the 47-bit num.
const ACK_FIELD_BITS: u32 = 23;

/// Packs a (cumulative ack, echoed data segment) pair into an ACK `num`.
pub fn pack_ack(ack: u64, echo: u64) -> u64 {
    debug_assert!(ack < (1 << ACK_FIELD_BITS) && echo < (1 << ACK_FIELD_BITS));
    (ack << ACK_FIELD_BITS) | echo
}

/// Inverse of [`pack_ack`]: `(cumulative_ack, echoed_segment)`.
pub fn unpack_ack(num: u64) -> (u64, u64) {
    (num >> ACK_FIELD_BITS, num & ((1 << ACK_FIELD_BITS) - 1))
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Packet finished link `hop` (serialisation + propagation) and
    /// arrives at the next stage.
    Deliver { hop: usize, fwd: bool, token: u64 },
    /// Link `hop` finished serialising its in-service packet.
    ServiceDone { hop: usize, fwd: bool },
    /// Retransmission timer for a connection.
    Timer { conn: usize, gen: u64 },
}

struct Harness {
    q: EventQueue<Ev>,
    fwd: Vec<LinkState>,
    rev: Vec<LinkState>,
    senders: Vec<TcpSender>,
    receivers: Vec<TcpReceiver>,
    timer_gen: Vec<u64>,
    mss: usize,
    capture_on: bool,
    capture: Capture,
    deadline: SimClock,
}

impl Harness {
    fn now_ms(&self) -> f64 {
        self.q.now().as_millis_f64()
    }

    fn record(&mut self, token: Token, event: CaptureEvent) {
        if self.capture_on {
            let t_ms = self.now_ms();
            self.capture.push(CaptureRecord {
                t_ms,
                conn: token.conn,
                num: token.num,
                is_ack: token.is_ack,
                event,
            });
        }
    }

    /// Offers a packet to link `hop` of the given direction; schedules the
    /// service-done and delivery events on acceptance.
    fn send_on(&mut self, hop: usize, fwd: bool, token: Token, bytes: usize) {
        let link = if fwd {
            &mut self.fwd[hop]
        } else {
            &mut self.rev[hop]
        };
        let prop = link.spec.prop_ns();
        match link.offer(bytes, token.pack()) {
            Offer::Transmit(total) => {
                let tx = total - prop;
                self.q.schedule_in_ns(tx, Ev::ServiceDone { hop, fwd });
                self.q.schedule_in_ns(
                    total,
                    Ev::Deliver {
                        hop,
                        fwd,
                        token: token.pack(),
                    },
                );
            }
            Offer::Queued => {}
            Offer::Dropped => self.record(token, CaptureEvent::Dropped),
        }
    }

    fn apply_actions(&mut self, conn: usize, actions: SenderActions) {
        for seq in actions.send {
            let token = Token {
                conn: conn as u16,
                num: seq,
                is_ack: false,
            };
            self.record(token, CaptureEvent::Sent);
            self.send_on(0, true, token, self.mss + HEADER_BYTES);
        }
        if actions.rearm_timer {
            self.arm_timer(conn);
        }
    }

    fn arm_timer(&mut self, conn: usize) {
        self.timer_gen[conn] += 1;
        let gen = self.timer_gen[conn];
        let rto = self.senders[conn].rto_ms();
        self.q
            .schedule_in_secs(rto / 1000.0, Ev::Timer { conn, gen });
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::ServiceDone { hop, fwd } => {
                let link = if fwd {
                    &mut self.fwd[hop]
                } else {
                    &mut self.rev[hop]
                };
                if let Some((bytes, token, total)) = link.service_complete() {
                    let prop = link.spec.prop_ns();
                    let tx = total - prop;
                    let _ = bytes;
                    self.q.schedule_in_ns(tx, Ev::ServiceDone { hop, fwd });
                    self.q
                        .schedule_in_ns(total, Ev::Deliver { hop, fwd, token });
                }
            }
            Ev::Deliver { hop, fwd, token } => {
                let t = Token::unpack(token);
                let links_len = if fwd { self.fwd.len() } else { self.rev.len() };
                if hop + 1 < links_len {
                    let bytes = if t.is_ack {
                        ACK_BYTES
                    } else {
                        self.mss + HEADER_BYTES
                    };
                    self.send_on(hop + 1, fwd, t, bytes);
                    return;
                }
                // Endpoint reached.
                if fwd {
                    // Data arrives at the receiver → emit a cumulative ACK
                    // that also echoes the triggering segment (the
                    // simulator's SACK information).
                    self.record(t, CaptureEvent::Delivered);
                    let ack = self.receivers[t.conn as usize].on_data(t.num);
                    let ack_token = Token {
                        conn: t.conn,
                        num: pack_ack(ack, t.num),
                        is_ack: true,
                    };
                    self.record(ack_token, CaptureEvent::Sent);
                    self.send_on(0, false, ack_token, ACK_BYTES);
                } else {
                    // ACK arrives at the sender.
                    self.record(t, CaptureEvent::Delivered);
                    let (ack, echo) = unpack_ack(t.num);
                    let now = self.now_ms();
                    let actions = self.senders[t.conn as usize].on_ack_sack(ack, Some(echo), now);
                    self.apply_actions(t.conn as usize, actions);
                }
            }
            Ev::Timer { conn, gen } => {
                if self.timer_gen[conn] != gen {
                    return; // superseded
                }
                if !self.senders[conn].has_outstanding() {
                    return;
                }
                let now = self.now_ms();
                let actions = self.senders[conn].on_timeout(now);
                self.apply_actions(conn, actions);
            }
        }
    }
}

/// Runs `config.n_connections` TCP connections over `path` and reports
/// aggregate goodput and loss statistics.
pub fn run_flow(path: &PathSpec, config: &FlowConfig) -> FlowResult {
    assert!(config.n_connections >= 1, "need at least one connection");
    assert!(config.duration_s > 0.0, "duration must be positive");
    assert!(!path.fwd.is_empty() && !path.rev.is_empty(), "empty path");

    let total_segments = config
        .total_bytes
        .map(|b| b.div_ceil(config.mss_bytes as u64));

    let mut h = Harness {
        q: EventQueue::new(),
        fwd: path
            .fwd
            .iter()
            .enumerate()
            .map(|(i, s)| LinkState::new(*s, config.seed.wrapping_add(i as u64 * 2 + 1)))
            .collect(),
        rev: path
            .rev
            .iter()
            .enumerate()
            .map(|(i, s)| LinkState::new(*s, config.seed.wrapping_add(i as u64 * 2 + 2)))
            .collect(),
        senders: (0..config.n_connections)
            .map(|_| match total_segments {
                Some(t) => TcpSender::with_total(config.cc, t),
                None => TcpSender::new(config.cc),
            })
            .collect(),
        receivers: (0..config.n_connections)
            .map(|_| TcpReceiver::new())
            .collect(),
        timer_gen: vec![0; config.n_connections],
        mss: config.mss_bytes,
        capture_on: config.capture,
        capture: Capture::default(),
        deadline: SimClock::from_secs_f64(config.duration_s),
    };

    // Prime every connection's initial window; apply_actions arms the
    // retransmission timers.
    for conn in 0..config.n_connections {
        let actions = h.senders[conn].tick_send(0.0);
        h.apply_actions(conn, actions);
    }

    while let Some((t, ev)) = h.q.pop() {
        if t > h.deadline {
            break;
        }
        h.handle(ev);
        if let Some(_total) = total_segments {
            if h.senders.iter().all(|s| s.finished()) {
                break;
            }
        }
    }

    let delivered_segments: u64 = h.receivers.iter().map(|r| r.delivered()).sum();
    let delivered_bytes = delivered_segments * config.mss_bytes as u64;
    let duration_s = if total_segments.is_some() {
        h.q.now().as_secs_f64().max(1e-6)
    } else {
        config.duration_s
    };
    let (offered, dropped) = h.fwd.iter().fold((0u64, 0u64), |(o, d), l| {
        (
            o + l.accepted + l.drops_queue + l.drops_random,
            d + l.drops_queue + l.drops_random,
        )
    });
    let srtts: Vec<f64> = h.senders.iter().filter_map(|s| s.srtt_ms()).collect();

    FlowResult {
        delivered_bytes,
        duration_s,
        throughput_mbps: delivered_bytes as f64 * 8.0 / duration_s / 1e6,
        retransmits: h.senders.iter().map(|s| s.retransmits).sum(),
        timeouts: h.senders.iter().map(|s| s.timeouts).sum(),
        srtt_ms: if srtts.is_empty() {
            None
        } else {
            Some(srtts.iter().sum::<f64>() / srtts.len() as f64)
        },
        observed_loss: if offered == 0 {
            0.0
        } else {
            dropped as f64 / offered as f64
        },
        capture: h.capture,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_path(rate_mbps: f64, delay_ms: f64) -> PathSpec {
        PathSpec::symmetric(vec![
            LinkSpec::new(1000.0, 0.1, 256, 0.0),
            LinkSpec::new(rate_mbps, delay_ms, 128, 0.0),
            LinkSpec::new(1000.0, 0.1, 256, 0.0),
        ])
    }

    #[test]
    fn clean_path_saturates_bottleneck() {
        let r = run_flow(
            &clean_path(50.0, 5.0),
            &FlowConfig {
                duration_s: 5.0,
                ..Default::default()
            },
        );
        assert!(
            r.throughput_mbps > 35.0 && r.throughput_mbps <= 50.0,
            "throughput = {:.1} Mbps",
            r.throughput_mbps
        );
        assert_eq!(r.timeouts, 0, "no timeouts on a clean path");
    }

    #[test]
    fn srtt_reflects_propagation() {
        let r = run_flow(
            &clean_path(100.0, 20.0),
            &FlowConfig {
                duration_s: 3.0,
                ..Default::default()
            },
        );
        let srtt = r.srtt_ms.unwrap();
        // 2 × (0.1 + 20 + 0.1) ≈ 40.4 ms plus queueing.
        assert!((38.0..90.0).contains(&srtt), "srtt = {srtt}");
    }

    #[test]
    fn random_loss_degrades_throughput() {
        let clean = run_flow(
            &clean_path(200.0, 10.0),
            &FlowConfig {
                duration_s: 5.0,
                ..Default::default()
            },
        );
        let mut lossy_links = clean_path(200.0, 10.0);
        lossy_links.fwd[1].loss = 0.02;
        let lossy = run_flow(
            &lossy_links,
            &FlowConfig {
                duration_s: 5.0,
                ..Default::default()
            },
        );
        assert!(
            lossy.throughput_mbps < clean.throughput_mbps * 0.6,
            "lossy {:.1} vs clean {:.1}",
            lossy.throughput_mbps,
            clean.throughput_mbps
        );
        assert!(lossy.retransmits > 0);
        assert!(lossy.observed_loss > 0.005);
    }

    #[test]
    fn multiple_connections_share_but_exceed_single_under_loss() {
        // With random loss, aggregate of 4 connections should beat 1
        // (each connection's Mathis limit adds up).
        let mut path = clean_path(500.0, 15.0);
        path.fwd[1].loss = 0.005;
        let one = run_flow(
            &path,
            &FlowConfig {
                duration_s: 5.0,
                n_connections: 1,
                ..Default::default()
            },
        );
        let four = run_flow(
            &path,
            &FlowConfig {
                duration_s: 5.0,
                n_connections: 4,
                ..Default::default()
            },
        );
        assert!(
            four.throughput_mbps > one.throughput_mbps * 1.5,
            "4conn {:.1} vs 1conn {:.1}",
            four.throughput_mbps,
            one.throughput_mbps
        );
    }

    #[test]
    fn bounded_transfer_completes_early() {
        let r = run_flow(
            &clean_path(100.0, 2.0),
            &FlowConfig {
                duration_s: 30.0,
                total_bytes: Some(1_000_000),
                ..Default::default()
            },
        );
        assert!(r.delivered_bytes >= 1_000_000);
        assert!(r.duration_s < 30.0, "finished early: {}", r.duration_s);
    }

    #[test]
    fn capture_records_data_and_acks() {
        let r = run_flow(
            &clean_path(100.0, 2.0),
            &FlowConfig {
                duration_s: 1.0,
                capture: true,
                ..Default::default()
            },
        );
        assert!(!r.capture.records.is_empty());
        assert!(r.capture.records.iter().any(|c| c.is_ack));
        assert!(r.capture.records.iter().any(|c| !c.is_ack));
        // Time stamps are nondecreasing.
        let mut prev = 0.0;
        for rec in &r.capture.records {
            assert!(rec.t_ms >= prev - 1e-9);
            prev = rec.t_ms;
        }
    }

    #[test]
    fn no_capture_by_default() {
        let r = run_flow(&clean_path(100.0, 2.0), &FlowConfig::default());
        assert!(r.capture.records.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FlowConfig {
            duration_s: 3.0,
            seed: 42,
            ..Default::default()
        };
        let mut path = clean_path(100.0, 5.0);
        path.fwd[1].loss = 0.01;
        let a = run_flow(&path, &cfg);
        let b = run_flow(&path, &cfg);
        assert_eq!(a.delivered_bytes, b.delivered_bytes);
        assert_eq!(a.retransmits, b.retransmits);
    }

    #[test]
    fn token_pack_roundtrip() {
        let t = Token {
            conn: 513,
            num: (1 << 40) + 12345,
            is_ack: true,
        };
        let u = Token::unpack(t.pack());
        assert_eq!(u.conn, t.conn);
        assert_eq!(u.num, t.num);
        assert_eq!(u.is_ack, t.is_ack);
    }

    #[test]
    fn reno_and_cubic_both_work() {
        for cc in [CongestionControl::Reno, CongestionControl::Cubic] {
            let r = run_flow(
                &clean_path(50.0, 10.0),
                &FlowConfig {
                    cc,
                    duration_s: 4.0,
                    ..Default::default()
                },
            );
            assert!(
                r.throughput_mbps > 20.0,
                "{cc:?}: {:.1} Mbps",
                r.throughput_mbps
            );
        }
    }

    #[test]
    fn tiny_queue_causes_drops_and_recovery() {
        let path = PathSpec::symmetric(vec![
            LinkSpec::new(1000.0, 0.1, 256, 0.0),
            LinkSpec::new(20.0, 10.0, 6, 0.0), // shallow buffer
            LinkSpec::new(1000.0, 0.1, 256, 0.0),
        ]);
        let r = run_flow(
            &path,
            &FlowConfig {
                duration_s: 5.0,
                ..Default::default()
            },
        );
        assert!(r.retransmits > 0, "shallow buffer must drop");
        assert!(r.throughput_mbps > 8.0, "still makes progress");
    }
}
