//! TCP sender and receiver state machines.
//!
//! The sender implements NewReno-style loss recovery (slow start,
//! congestion avoidance, fast retransmit on three duplicate ACKs, partial
//! ACK retransmission) with a pluggable congestion-avoidance law — classic
//! Reno AIMD or CUBIC window growth — plus Jacobson/Karels RTT estimation
//! with Karn's rule and exponential RTO backoff.
//!
//! Segments are modelled at MSS granularity and identified by index; the
//! driver (see [`crate::flow`]) owns actual packet motion.

use std::collections::BTreeMap;

/// Congestion-avoidance algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionControl {
    /// Classic Reno AIMD (+1 MSS per RTT, halve on loss).
    Reno,
    /// CUBIC window growth (w(t) = C(t−K)³ + w_max, β = 0.7).
    Cubic,
}

/// CUBIC's C constant (packets / s³).
const CUBIC_C: f64 = 0.4;
/// CUBIC's multiplicative decrease factor.
const CUBIC_BETA: f64 = 0.7;
/// Initial congestion window, packets (RFC 6928 spirit).
const INIT_CWND: f64 = 10.0;
/// Minimum RTO, ms (Linux uses 200 ms).
const MIN_RTO_MS: f64 = 200.0;
/// Maximum RTO, ms.
const MAX_RTO_MS: f64 = 60_000.0;
/// Receive-window / buffer cap on the congestion window, packets. A real
/// stack is bounded by the advertised receive window and socket buffers;
/// without this, bulk slow start on a clean path grows without limit.
const MAX_CWND: f64 = 4096.0;

/// What the sender wants the driver to do after an event.
#[derive(Debug, Default)]
pub struct SenderActions {
    /// Segment indices to transmit (new or retransmitted).
    pub send: Vec<u64>,
    /// Whether the retransmission timer should be (re)armed.
    pub rearm_timer: bool,
}

/// Bookkeeping for an in-flight segment.
#[derive(Debug, Clone, Copy)]
struct SegInfo {
    sent_at_ms: f64,
    retransmitted: bool,
    /// Selectively acknowledged (received out of order at the peer).
    sacked: bool,
}

/// A window-based TCP sender.
#[derive(Debug)]
pub struct TcpSender {
    cc: CongestionControl,
    /// Congestion window in packets (fractional accumulation).
    cwnd: f64,
    ssthresh: f64,
    /// Next never-sent segment index.
    next_seq: u64,
    /// Lowest unacknowledged segment index.
    snd_una: u64,
    /// Total segments the application wants to send (u64::MAX = bulk).
    total_segments: u64,
    dup_acks: u32,
    in_recovery: bool,
    recovery_high: u64,
    /// Next hole candidate for SACK-style recovery retransmissions.
    rtx_next: u64,
    /// Segments selectively acknowledged but not yet cumulatively acked.
    sacked_count: u64,
    // RTT estimation.
    srtt_ms: Option<f64>,
    rttvar_ms: f64,
    /// Lowest RTT sample seen (HyStart baseline).
    min_rtt_ms: f64,
    rto_ms: f64,
    backoff: u32,
    // CUBIC state.
    w_max: f64,
    epoch_start_ms: Option<f64>,
    cubic_k: f64,
    // In-flight bookkeeping for RTT sampling (Karn) and pipe accounting.
    inflight: BTreeMap<u64, SegInfo>,
    // Counters.
    /// Segments retransmitted (fast retransmit + RTO).
    pub retransmits: u64,
    /// RTO firings.
    pub timeouts: u64,
}

impl TcpSender {
    /// Creates a bulk-transfer sender.
    pub fn new(cc: CongestionControl) -> Self {
        Self::with_total(cc, u64::MAX)
    }

    /// Creates a sender with a bounded amount of data (in segments).
    pub fn with_total(cc: CongestionControl, total_segments: u64) -> Self {
        Self {
            cc,
            cwnd: INIT_CWND,
            ssthresh: f64::INFINITY,
            next_seq: 0,
            snd_una: 0,
            total_segments,
            dup_acks: 0,
            in_recovery: false,
            recovery_high: 0,
            rtx_next: 0,
            sacked_count: 0,
            srtt_ms: None,
            rttvar_ms: 0.0,
            min_rtt_ms: f64::INFINITY,
            rto_ms: 1_000.0,
            backoff: 0,
            w_max: 0.0,
            epoch_start_ms: None,
            cubic_k: 0.0,
            inflight: BTreeMap::new(),
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// Current congestion window in packets.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Lowest unacknowledged segment.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next never-sent segment index (the top of the send window).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current retransmission timeout in ms.
    pub fn rto_ms(&self) -> f64 {
        self.rto_ms
    }

    /// True when every segment of a bounded transfer has been delivered.
    pub fn finished(&self) -> bool {
        self.snd_una >= self.total_segments
    }

    /// Whether any data is outstanding.
    pub fn has_outstanding(&self) -> bool {
        self.snd_una < self.next_seq
    }

    /// Segments believed to still be in the network: in flight minus
    /// those the peer has selectively acknowledged.
    fn pipe(&self) -> u64 {
        self.inflight.len() as u64 - self.sacked_count
    }

    /// Fills the window: returns new segments to send at `now_ms`.
    pub fn tick_send(&mut self, now_ms: f64) -> SenderActions {
        let mut actions = SenderActions::default();
        while self.pipe() < self.cwnd as u64 && self.next_seq < self.total_segments {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.inflight.insert(
                seq,
                SegInfo {
                    sent_at_ms: now_ms,
                    retransmitted: false,
                    sacked: false,
                },
            );
            actions.send.push(seq);
        }
        if !actions.send.is_empty() {
            actions.rearm_timer = true;
        }
        actions
    }

    /// Processes a cumulative ACK (`ack` = next expected segment).
    ///
    /// `echo` identifies the data segment that triggered this ACK, when
    /// known — the simulator's stand-in for a SACK block: the sender
    /// marks exactly that segment as received. ACKs beyond `next_seq`
    /// (acknowledging data never sent) are clamped; a real stack would
    /// discard such a segment as corrupt.
    pub fn on_ack(&mut self, ack: u64, now_ms: f64) -> SenderActions {
        self.on_ack_sack(ack, None, now_ms)
    }

    /// [`Self::on_ack`] with SACK information.
    pub fn on_ack_sack(&mut self, ack: u64, echo: Option<u64>, now_ms: f64) -> SenderActions {
        let ack = ack.min(self.next_seq);
        let mut actions = SenderActions::default();

        // SACK scoreboard update: the echoed segment reached the peer.
        if let Some(e) = echo {
            if e >= ack {
                if let Some(info) = self.inflight.get_mut(&e) {
                    if !info.sacked {
                        info.sacked = true;
                        self.sacked_count += 1;
                    }
                }
            }
        }

        if ack > self.snd_una {
            // New data acknowledged.
            let newly_acked = ack - self.snd_una;
            // RTT sample from the highest newly-acked, non-retransmitted
            // segment (Karn's algorithm).
            if let Some(info) = self.inflight.get(&(ack - 1)) {
                if !info.retransmitted {
                    self.rtt_sample(now_ms - info.sent_at_ms);
                }
            }
            let to_remove: Vec<u64> = self.inflight.range(..ack).map(|(&s, _)| s).collect();
            for s in to_remove {
                if let Some(info) = self.inflight.remove(&s) {
                    if info.sacked {
                        self.sacked_count -= 1;
                    }
                }
            }
            self.snd_una = ack;
            self.dup_acks = 0;
            self.backoff = 0;

            if self.in_recovery {
                if ack >= self.recovery_high {
                    // Recovery complete.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh.max(2.0);
                } else {
                    // Partial ACK: the hole at snd_una is confirmed lost.
                    self.retransmit(self.snd_una, now_ms, &mut actions);
                    self.rtx_next = self.rtx_next.max(self.snd_una + 1);
                }
            } else {
                self.grow_window(newly_acked, now_ms);
            }
        } else if ack == self.snd_una && self.has_outstanding() {
            self.dup_acks += 1;
            let dupthresh_hit = self.dup_acks >= 3 || self.sacked_above(self.snd_una) >= 3;
            if dupthresh_hit && !self.in_recovery {
                // Fast retransmit.
                self.enter_recovery(now_ms);
                self.retransmit(self.snd_una, now_ms, &mut actions);
                self.rtx_next = self.snd_una + 1;
            } else if self.in_recovery {
                // SACK-based loss repair: retransmit segments that have at
                // least `dupthresh` SACKed segments above them (RFC 6675's
                // IsLost), pipe permitting, one per arriving ACK.
                self.sack_retransmit(now_ms, &mut actions);
            }
        }
        // Window may have opened.
        let fill = self.tick_send(now_ms);
        actions.send.extend(fill.send);
        actions.rearm_timer |= fill.rearm_timer || self.has_outstanding();
        actions
    }

    /// Number of SACKed in-flight segments with sequence greater than `s`.
    fn sacked_above(&self, s: u64) -> u64 {
        self.inflight
            .range(s + 1..)
            .filter(|(_, i)| i.sacked)
            .count() as u64
    }

    /// Handles an RTO firing at `now_ms`.
    pub fn on_timeout(&mut self, now_ms: f64) -> SenderActions {
        let mut actions = SenderActions::default();
        if !self.has_outstanding() {
            return actions;
        }
        self.timeouts += 1;
        self.ssthresh = (self.pipe() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.backoff = (self.backoff + 1).min(10);
        self.rto_ms = (self.rto_ms * 2.0).min(MAX_RTO_MS);
        self.cubic_reset(now_ms);
        self.retransmit(self.snd_una, now_ms, &mut actions);
        actions.rearm_timer = true;
        actions
    }

    /// Retransmits the next *lost* hole during recovery (at most one per
    /// call — pipe conservation). A segment counts as lost when at least
    /// three SACKed segments lie above it (RFC 6675 IsLost); without SACK
    /// evidence nothing is retransmitted here and recovery falls back to
    /// NewReno partial-ACK repair.
    fn sack_retransmit(&mut self, now_ms: f64, actions: &mut SenderActions) {
        // The third-highest SACKed sequence bounds what can be lost.
        let mut sacked_iter = self
            .inflight
            .range(..self.recovery_high)
            .rev()
            .filter(|(_, i)| i.sacked)
            .map(|(&s, _)| s);
        let third = sacked_iter.nth(2);
        let Some(limit) = third else { return };
        let candidate = self
            .inflight
            .range(self.rtx_next..limit)
            .find(|(_, info)| !info.retransmitted && !info.sacked)
            .map(|(&s, _)| s);
        if let Some(seq) = candidate {
            self.rtx_next = seq + 1;
            self.retransmit(seq, now_ms, actions);
        }
    }

    fn enter_recovery(&mut self, now_ms: f64) {
        self.in_recovery = true;
        self.recovery_high = self.next_seq;
        let pipe = self.pipe() as f64;
        match self.cc {
            CongestionControl::Reno => {
                self.ssthresh = (pipe / 2.0).max(2.0);
            }
            CongestionControl::Cubic => {
                self.w_max = self.cwnd;
                self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0);
                self.cubic_k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
                self.epoch_start_ms = Some(now_ms);
            }
        }
        self.cwnd = self.ssthresh;
    }

    fn retransmit(&mut self, seq: u64, now_ms: f64, actions: &mut SenderActions) {
        if let Some(info) = self.inflight.get_mut(&seq) {
            info.retransmitted = true;
            info.sent_at_ms = now_ms;
        } else {
            self.inflight.insert(
                seq,
                SegInfo {
                    sent_at_ms: now_ms,
                    retransmitted: true,
                    sacked: false,
                },
            );
        }
        self.retransmits += 1;
        actions.send.push(seq);
        actions.rearm_timer = true;
    }

    fn grow_window(&mut self, newly_acked: u64, now_ms: f64) {
        if self.cwnd >= MAX_CWND {
            self.cwnd = MAX_CWND;
            return;
        }
        if self.cwnd < self.ssthresh {
            // Slow start: +1 per ACKed segment.
            self.cwnd = (self.cwnd + newly_acked as f64).min(MAX_CWND);
            if self.cwnd >= self.ssthresh {
                self.cubic_reset(now_ms);
            }
            return;
        }
        match self.cc {
            CongestionControl::Reno => {
                self.cwnd += newly_acked as f64 / self.cwnd;
            }
            CongestionControl::Cubic => {
                let epoch = match self.epoch_start_ms {
                    Some(e) => e,
                    None => {
                        self.cubic_reset(now_ms);
                        now_ms
                    }
                };
                let t = (now_ms - epoch) / 1000.0;
                let target = CUBIC_C * (t - self.cubic_k).powi(3) + self.w_max;
                // RFC 8312 TCP-friendly region: an AIMD(0.53, 0.7) flow
                // would have this window; CUBIC never does worse.
                let friendly = match self.srtt_ms {
                    Some(srtt) if srtt > 0.0 => {
                        self.w_max * CUBIC_BETA + 0.529 * (t * 1000.0 / srtt)
                    }
                    _ => 0.0,
                };
                let target = target.max(friendly);
                if target > self.cwnd {
                    // Per-ACK step scaled by the segments this cumulative
                    // ACK covers, never overshooting the cubic target.
                    let step = (target - self.cwnd) * newly_acked as f64 / self.cwnd;
                    self.cwnd = (self.cwnd + step).min(target);
                } else {
                    // Concave plateau: creep forward slowly.
                    self.cwnd += 0.3 * newly_acked as f64 / self.cwnd;
                }
            }
        }
    }

    fn cubic_reset(&mut self, now_ms: f64) {
        if self.cc == CongestionControl::Cubic {
            self.w_max = self.cwnd.max(self.w_max);
            self.cubic_k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
            self.epoch_start_ms = Some(now_ms);
        }
    }

    fn rtt_sample(&mut self, rtt_ms: f64) {
        if rtt_ms <= 0.0 {
            return;
        }
        self.min_rtt_ms = self.min_rtt_ms.min(rtt_ms);
        // HyStart-style delay-increase exit from slow start: once probe
        // RTT rises well above the path minimum, the queue is filling —
        // stop doubling before a multi-thousand-packet overshoot.
        if self.cwnd < self.ssthresh && rtt_ms > self.min_rtt_ms * 1.25 + 4.0 {
            self.ssthresh = self.cwnd;
        }
        match self.srtt_ms {
            None => {
                self.srtt_ms = Some(rtt_ms);
                self.rttvar_ms = rtt_ms / 2.0;
            }
            Some(srtt) => {
                let err = rtt_ms - srtt;
                self.rttvar_ms = 0.75 * self.rttvar_ms + 0.25 * err.abs();
                self.srtt_ms = Some(srtt + 0.125 * err);
            }
        }
        let base = self.srtt_ms.expect("just set") + 4.0 * self.rttvar_ms;
        self.rto_ms = base.clamp(MIN_RTO_MS, MAX_RTO_MS) * f64::from(1 << self.backoff.min(6));
    }

    /// Smoothed RTT estimate, if any sample was taken.
    pub fn srtt_ms(&self) -> Option<f64> {
        self.srtt_ms
    }
}

/// A cumulative-ACK receiver with an out-of-order buffer.
#[derive(Debug, Default)]
pub struct TcpReceiver {
    rcv_next: u64,
    ooo: std::collections::BTreeSet<u64>,
    /// Segments received in total (including duplicates).
    pub received: u64,
    /// Duplicate segments seen.
    pub duplicates: u64,
}

impl TcpReceiver {
    /// Creates an empty receiver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes an arriving data segment; returns the cumulative ACK to
    /// transmit (next expected segment index).
    pub fn on_data(&mut self, seq: u64) -> u64 {
        self.received += 1;
        if seq < self.rcv_next || self.ooo.contains(&seq) {
            self.duplicates += 1;
        } else if seq == self.rcv_next {
            self.rcv_next += 1;
            while self.ooo.remove(&self.rcv_next) {
                self.rcv_next += 1;
            }
        } else {
            self.ooo.insert(seq);
        }
        self.rcv_next
    }

    /// In-order delivery point (segments fully received).
    pub fn delivered(&self) -> u64 {
        self.rcv_next
    }

    /// Number of buffered out-of-order segments.
    pub fn ooo_len(&self) -> usize {
        self.ooo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_window_sends_ten() {
        let mut s = TcpSender::new(CongestionControl::Reno);
        let a = s.tick_send(0.0);
        assert_eq!(a.send.len(), 10);
        assert!(a.rearm_timer);
        // Window full: no more.
        assert!(s.tick_send(0.0).send.is_empty());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(CongestionControl::Reno);
        let first = s.tick_send(0.0).send;
        // ACK all ten: cwnd 10 → 20.
        let a = s.on_ack(first.len() as u64, 100.0);
        assert_eq!(s.cwnd() as u64, 20);
        assert_eq!(a.send.len(), 20);
    }

    #[test]
    fn bounded_transfer_finishes() {
        let mut s = TcpSender::with_total(CongestionControl::Reno, 5);
        let a = s.tick_send(0.0);
        assert_eq!(a.send.len(), 5);
        s.on_ack(5, 50.0);
        assert!(s.finished());
        assert!(!s.has_outstanding());
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = TcpSender::new(CongestionControl::Reno);
        s.tick_send(0.0);
        s.on_ack(1, 10.0); // seg 0 delivered
        let before = s.retransmits;
        s.on_ack(1, 11.0);
        s.on_ack(1, 12.0);
        let a = s.on_ack(1, 13.0); // third dup
        assert_eq!(s.retransmits, before + 1);
        assert!(a.send.contains(&1), "retransmits snd_una");
        let cwnd_after = s.cwnd();
        assert!(cwnd_after < 10.0, "window reduced: {cwnd_after}");
    }

    #[test]
    fn timeout_collapses_window() {
        let mut s = TcpSender::new(CongestionControl::Reno);
        s.tick_send(0.0);
        let rto_before = s.rto_ms();
        let a = s.on_timeout(1_000.0);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.timeouts, 1);
        assert!(a.send.contains(&0));
        assert!(s.rto_ms() > rto_before, "exponential backoff");
    }

    #[test]
    fn timeout_without_outstanding_is_noop() {
        let mut s = TcpSender::new(CongestionControl::Reno);
        let a = s.on_timeout(5.0);
        assert!(a.send.is_empty());
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn rtt_estimation_converges() {
        let mut s = TcpSender::new(CongestionControl::Reno);
        let mut now = 0.0;
        for _ in 0..50 {
            s.tick_send(now);
            now += 30.0; // constant 30 ms RTT: ack the full window
            s.on_ack(s.next_seq(), now);
        }
        let srtt = s.srtt_ms().unwrap();
        assert!((25.0..35.0).contains(&srtt), "srtt = {srtt}");
        assert!(s.rto_ms() >= MIN_RTO_MS);
    }

    #[test]
    fn reno_congestion_avoidance_is_linear() {
        let mut s = TcpSender::new(CongestionControl::Reno);
        // Force CA with a small ssthresh via fast retransmit.
        s.tick_send(0.0);
        s.on_ack(1, 1.0);
        for t in 0..3 {
            s.on_ack(1, 2.0 + t as f64);
        }
        // Exit recovery by acking everything outstanding.
        let high = 40;
        s.on_ack(high, 50.0);
        let cwnd0 = s.cwnd();
        // One full window of ACKs should add ≈ 1 packet.
        let w = cwnd0 as u64;
        let base = s.snd_una();
        s.tick_send(51.0);
        for i in 0..w {
            s.on_ack(base + i + 1, 60.0 + i as f64);
        }
        let cwnd1 = s.cwnd();
        assert!(
            (cwnd1 - cwnd0 - 1.0).abs() < 0.2,
            "CA growth {cwnd0} → {cwnd1}"
        );
    }

    #[test]
    fn cubic_grows_faster_than_reno_long_after_loss() {
        // CUBIC's advantage is the concave rebound toward a large w_max
        // after a loss; at small windows it is deliberately no more
        // aggressive than AIMD. Compare recovery from a big window.
        let grow = |cc: CongestionControl| -> f64 {
            let mut s = TcpSender::new(cc);
            let mut now = 0.0;
            // Slow-start to a large window (30 ms RTT, full-window ACKs).
            while s.cwnd() < 1500.0 {
                s.tick_send(now);
                now += 30.0;
                s.on_ack(s.next_seq(), now);
            }
            // Loss: three duplicate ACKs.
            s.tick_send(now);
            let una = s.snd_una();
            for k in 0..3 {
                s.on_ack(una, now + k as f64);
            }
            now += 10.0;
            // Exit recovery.
            s.on_ack(s.next_seq(), now);
            let start = s.cwnd();
            // 60 RTTs of lossless growth.
            for _ in 0..60 {
                now += 30.0;
                s.tick_send(now);
                s.on_ack(s.next_seq(), now);
            }
            s.cwnd() - start
        };
        let reno = grow(CongestionControl::Reno);
        let cubic = grow(CongestionControl::Cubic);
        assert!(
            cubic > reno * 1.5,
            "CUBIC rebound (+{cubic:.0}) should beat Reno (+{reno:.0})"
        );
    }

    #[test]
    fn receiver_in_order_stream() {
        let mut r = TcpReceiver::new();
        assert_eq!(r.on_data(0), 1);
        assert_eq!(r.on_data(1), 2);
        assert_eq!(r.delivered(), 2);
        assert_eq!(r.duplicates, 0);
    }

    #[test]
    fn receiver_reorders_and_fills_hole() {
        let mut r = TcpReceiver::new();
        assert_eq!(r.on_data(1), 0); // hole at 0
        assert_eq!(r.on_data(2), 0);
        assert_eq!(r.ooo_len(), 2);
        assert_eq!(r.on_data(0), 3); // hole filled, all drain
        assert_eq!(r.ooo_len(), 0);
    }

    #[test]
    fn receiver_counts_duplicates() {
        let mut r = TcpReceiver::new();
        r.on_data(0);
        r.on_data(0);
        assert_eq!(r.duplicates, 1);
        r.on_data(5);
        r.on_data(5);
        assert_eq!(r.duplicates, 2);
    }

    #[test]
    fn partial_ack_in_recovery_retransmits_hole() {
        let mut s = TcpSender::new(CongestionControl::Reno);
        s.tick_send(0.0);
        s.on_ack(2, 10.0); // 0,1 delivered
        for t in 0..3 {
            s.on_ack(2, 11.0 + t as f64); // dups → recovery, rtx 2
        }
        assert!(s.retransmits >= 1);
        let before = s.retransmits;
        // Partial ACK (not beyond recovery_high): retransmit next hole.
        let a = s.on_ack(4, 20.0);
        assert_eq!(s.retransmits, before + 1);
        assert!(a.send.contains(&4));
    }
}
