//! The discrete-event engine: a simulated clock and an event queue.
//!
//! Time is counted in integer nanoseconds so event ordering is exact and
//! runs are bit-reproducible. Ties are broken by insertion order (FIFO),
//! which keeps the simulation deterministic even when two events land on
//! the same tick.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct SimClock(pub u64);

impl SimClock {
    /// Zero time.
    pub const ZERO: SimClock = SimClock(0);

    /// Builds a clock value from seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time");
        SimClock((s * 1e9).round() as u64)
    }

    /// Builds a clock value from milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Adds a duration in nanoseconds.
    pub fn plus_ns(self, ns: u64) -> SimClock {
        SimClock(self.0 + ns)
    }

    /// Adds a duration in (fractional) seconds.
    pub fn plus_secs_f64(self, s: f64) -> SimClock {
        SimClock(self.0 + (s * 1e9).round() as u64)
    }
}

/// A scheduled event: fires at `at`, carries a payload.
struct Scheduled<E> {
    at: SimClock,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimClock,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimClock::ZERO,
            seq: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimClock {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics when `at` is in the past — scheduling into the past would
    /// silently corrupt causality.
    pub fn schedule_at(&mut self, at: SimClock, payload: E) {
        assert!(at >= self.now, "event scheduled in the past");
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` after a delay of `ns` nanoseconds.
    pub fn schedule_in_ns(&mut self, ns: u64, payload: E) {
        self.schedule_at(self.now.plus_ns(ns), payload);
    }

    /// Schedules `payload` after a delay in fractional seconds.
    pub fn schedule_in_secs(&mut self, s: f64, payload: E) {
        self.schedule_at(self.now.plus_secs_f64(s), payload);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimClock, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_conversions_roundtrip() {
        let c = SimClock::from_millis_f64(12.5);
        assert_eq!(c.0, 12_500_000);
        assert!((c.as_millis_f64() - 12.5).abs() < 1e-9);
        assert!((c.as_secs_f64() - 0.0125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_time_rejected() {
        SimClock::from_secs_f64(-1.0);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_in_ns(300, "c");
        q.schedule_in_ns(100, "a");
        q.schedule_in_ns(200, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule_in_ns(100, 1);
        q.schedule_in_ns(100, 2);
        q.schedule_in_ns(100, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_in_ns(500, ());
        assert_eq!(q.now(), SimClock::ZERO);
        q.pop();
        assert_eq!(q.now(), SimClock(500));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_in_ns(100, ());
        q.pop();
        q.schedule_at(SimClock(50), ());
    }

    #[test]
    fn relative_scheduling_is_from_now() {
        let mut q = EventQueue::new();
        q.schedule_in_ns(100, "first");
        q.pop();
        q.schedule_in_ns(100, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimClock(200));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in_ns(1, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
