//! Property tests for the packet-level TCP simulator.

use proptest::prelude::*;
use simtcp::flow::{run_flow, FlowConfig, PathSpec};
use simtcp::link::LinkSpec;
use simtcp::tcp::{CongestionControl, TcpReceiver, TcpSender};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The receiver's delivery point never decreases and never exceeds
    /// what was received, under arbitrary arrival orders.
    #[test]
    fn receiver_delivery_monotone(seqs in prop::collection::vec(0u64..64, 1..200)) {
        let mut r = TcpReceiver::new();
        let mut prev = 0;
        for s in &seqs {
            let ack = r.on_data(*s);
            prop_assert!(ack >= prev, "cumulative ack regressed");
            prev = ack;
        }
        // The delivery point is exactly the first missing index.
        let present: std::collections::BTreeSet<u64> = seqs.iter().copied().collect();
        let expected = (0..).find(|i| !present.contains(i)).unwrap();
        prop_assert_eq!(r.delivered(), expected);
    }

    /// ACKing arbitrary prefixes never panics, never regresses snd_una,
    /// and keeps the pipe within the window.
    #[test]
    fn sender_handles_arbitrary_ack_sequence(acks in prop::collection::vec(0u64..200, 1..100)) {
        let mut s = TcpSender::new(CongestionControl::Reno);
        let mut now = 0.0;
        s.tick_send(now);
        let mut prev_una = 0;
        for a in acks {
            now += 1.0;
            s.on_ack(a, now);
            prop_assert!(s.snd_una() >= prev_una);
            prop_assert!(s.snd_una() <= s.next_seq());
            prev_una = s.snd_una();
        }
    }

    /// Timeouts at arbitrary times always leave a sane window.
    #[test]
    fn sender_survives_timeout_storms(events in prop::collection::vec(0u8..3, 1..60)) {
        let mut s = TcpSender::new(CongestionControl::Cubic);
        let mut now = 0.0;
        for e in events {
            now += 10.0;
            match e {
                0 => { s.tick_send(now); }
                1 => { s.on_ack(s.snd_una() + 1, now); }
                _ => { s.on_timeout(now); }
            }
            prop_assert!(s.cwnd() >= 1.0);
            prop_assert!(s.rto_ms() >= 200.0 && s.rto_ms() <= 60_000.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Whatever the (sane) path, a flow delivers data, never exceeds the
    /// bottleneck by more than rounding, and is deterministic.
    #[test]
    fn flow_respects_bottleneck(
        rate in 10.0..400.0f64,
        delay in 0.5..40.0f64,
        queue in 16usize..256,
        loss in 0.0..0.05f64,
        seed in 0u64..1000,
    ) {
        let path = PathSpec::symmetric(vec![
            LinkSpec::new(1000.0, 0.1, 256, 0.0),
            LinkSpec::new(rate, delay, queue, loss),
            LinkSpec::new(1000.0, 0.1, 256, 0.0),
        ]);
        let cfg = FlowConfig { duration_s: 2.0, seed, ..Default::default() };
        let a = run_flow(&path, &cfg);
        prop_assert!(a.throughput_mbps <= rate * 1.02, "exceeded bottleneck");
        prop_assert!(a.delivered_bytes > 0, "made no progress");
        let b = run_flow(&path, &cfg);
        prop_assert_eq!(a.delivered_bytes, b.delivered_bytes, "nondeterministic");
    }
}
