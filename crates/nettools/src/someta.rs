//! Measurement metadata à la `someta`.
//!
//! CLASP runs `someta` "to record metadata of the VM in the experiments"
//! (§3.2) and verifies that "the VM type we chose had sufficient
//! computational power to support the test without depleting the CPU".
//! This module produces per-test metadata records with a deterministic
//! CPU/memory model and the health check the paper applies.

use serde::{Deserialize, Serialize};
use simnet::time::SimTime;

/// Metadata captured around one measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Metadata {
    /// VM identifier.
    pub vm: String,
    /// Cloud region name.
    pub region: String,
    /// Measurement timestamp (seconds since campaign epoch).
    pub time: u64,
    /// CPU utilization during the test, fraction of all vCPUs.
    pub cpu_util: f64,
    /// Memory in use, MB.
    pub mem_used_mb: f64,
    /// Kernel string.
    pub kernel: String,
    /// Tool versions (scamper, browser).
    pub tool_versions: Vec<(String, String)>,
}

/// vCPU saturation threshold above which a test is considered tainted
/// (CPU-starved tests under-report network throughput).
pub const CPU_TAINT_THRESHOLD: f64 = 0.9;

/// Records metadata for one test: CPU/memory use is a deterministic
/// function of the VM, the time, and the test throughput (faster tests
/// push the browser harder).
pub fn record(vm: &str, region: &str, t: SimTime, throughput_mbps: f64) -> Metadata {
    let key = simnet::routing::load_key(b"someta", hash_str(vm), t.as_secs());
    let u = (key >> 11) as f64 / (1u64 << 53) as f64;
    // A Chromium speed test on n1-standard-2 uses roughly 25–55% of two
    // vCPUs at gigabit rates; scale with throughput.
    let cpu = (0.18 + 0.35 * (throughput_mbps / 1000.0) + 0.08 * u).min(1.0);
    Metadata {
        vm: vm.to_string(),
        region: region.to_string(),
        time: t.as_secs(),
        cpu_util: cpu,
        mem_used_mb: 1800.0 + 900.0 * u,
        kernel: "5.4.0-sim".to_string(),
        tool_versions: vec![
            ("scamper".to_string(), "20200717".to_string()),
            ("chromium".to_string(), "83.0.4103".to_string()),
        ],
    }
}

/// The paper's health check: was the VM CPU-saturated during the test?
pub fn is_tainted(meta: &Metadata) -> bool {
    meta.cpu_util >= CPU_TAINT_THRESHOLD
}

fn hash_str(s: &str) -> u64 {
    let mut x = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        x = (x ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_deterministic() {
        let t = SimTime::from_day_hour(2, 14);
        let a = record("vm-1", "us-west1", t, 400.0);
        let b = record("vm-1", "us-west1", t, 400.0);
        assert_eq!(a.cpu_util, b.cpu_util);
        assert_eq!(a.mem_used_mb, b.mem_used_mb);
    }

    #[test]
    fn cpu_scales_with_throughput() {
        let t = SimTime::from_day_hour(2, 14);
        let slow = record("vm-1", "us-west1", t, 50.0);
        let fast = record("vm-1", "us-west1", t, 950.0);
        assert!(fast.cpu_util > slow.cpu_util);
    }

    #[test]
    fn normal_tests_are_not_tainted() {
        let t = SimTime::from_day_hour(1, 3);
        let m = record("vm-2", "us-east1", t, 600.0);
        assert!(!is_tainted(&m), "cpu = {}", m.cpu_util);
        assert!(m.cpu_util < CPU_TAINT_THRESHOLD);
    }

    #[test]
    fn metadata_carries_tool_versions() {
        let m = record("vm-3", "us-central1", SimTime::EPOCH, 100.0);
        assert!(m.tool_versions.iter().any(|(k, _)| k == "scamper"));
        assert_eq!(m.kernel, "5.4.0-sim");
        assert_eq!(m.region, "us-central1");
    }
}
