//! A scamper-like batch probing engine.
//!
//! CLASP budgets "20 minutes to conduct traceroute measurements" per
//! hourly cycle (§3.2); the engine tracks probing cost so the campaign
//! planner can honour that budget, and fans traceroutes out over target
//! lists and flow-id sweeps (the bdrmap pilot scan probes each target
//! with several flow ids to expose ECMP-parallel border interfaces).

use crate::traceroute::{traceroute, TraceMode, Traceroute};
use simnet::geo::CityId;
use simnet::routing::{Paths, Tier};
use simnet::topology::AsId;
use std::net::Ipv4Addr;

/// A traceroute target.
#[derive(Debug, Clone, Copy)]
pub struct Target {
    /// Destination AS.
    pub as_id: AsId,
    /// Destination city.
    pub city: CityId,
    /// Destination address.
    pub ip: Ipv4Addr,
}

/// Batch probing engine with a probing-rate model.
#[derive(Debug, Clone, Copy)]
pub struct Scamper {
    /// Probes per second the engine is allowed to emit.
    pub probe_rate_pps: u32,
    /// Probes sent per hop (attempts).
    pub attempts_per_hop: u32,
}

impl Default for Scamper {
    fn default() -> Self {
        Self {
            probe_rate_pps: 100,
            attempts_per_hop: 1,
        }
    }
}

impl Scamper {
    /// Runs one paris/classic traceroute per (target, flow id) pair.
    #[allow(clippy::too_many_arguments)]
    pub fn trace_many(
        &self,
        paths: &Paths<'_>,
        region_city: CityId,
        vm_ip: Ipv4Addr,
        targets: &[Target],
        tier: Tier,
        mode: TraceMode,
        flows_per_target: u64,
        seed: u64,
    ) -> Vec<Traceroute> {
        let mut out = Vec::with_capacity(targets.len() * flows_per_target as usize);
        for (i, t) in targets.iter().enumerate() {
            for flow in 0..flows_per_target {
                // Flow ids are target-salted so two targets in the same AS
                // don't probe identical five-tuples.
                let flow_id = simnet::routing::load_key(b"scamper", i as u64, flow).rotate_left(7);
                if let Some(trace) = traceroute(
                    paths,
                    region_city,
                    vm_ip,
                    t.as_id,
                    t.city,
                    t.ip,
                    tier,
                    mode,
                    flow_id,
                    seed,
                ) {
                    out.push(trace);
                }
            }
        }
        out
    }

    /// Estimated wall-clock duration of a batch, seconds: probes emitted
    /// at the configured rate (one probe per hop per attempt).
    pub fn estimated_duration_s(&self, traces: &[Traceroute]) -> f64 {
        let probes: u64 = traces
            .iter()
            .map(|t| t.hops.len() as u64 * self.attempts_per_hop as u64)
            .sum();
        probes as f64 / self.probe_rate_pps as f64
    }

    /// Maximum number of targets a time budget allows, assuming
    /// `avg_hops` hops per trace.
    pub fn targets_within_budget(&self, budget_s: f64, avg_hops: f64) -> usize {
        assert!(avg_hops > 0.0);
        let per_trace_s = avg_hops * self.attempts_per_hop as f64 / self.probe_rate_pps as f64;
        (budget_s / per_trace_s).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::topology::{Topology, TopologyConfig};

    fn targets(topo: &Topology, n: usize) -> Vec<Target> {
        topo.non_cloud_ases()
            .take(n)
            .map(|id| {
                let city = topo.as_node(id).home_city;
                Target {
                    as_id: id,
                    city,
                    ip: topo.host_ip(id, city, 0),
                }
            })
            .collect()
    }

    #[test]
    fn trace_many_produces_one_trace_per_flow() {
        let topo = Topology::generate(TopologyConfig::tiny(61));
        let paths = Paths::new(&topo);
        let region = topo.cities.by_name("The Dalles").unwrap();
        let ts = targets(&topo, 5);
        let traces = Scamper::default().trace_many(
            &paths,
            region,
            topo.vm_ip(region, 0),
            &ts,
            Tier::Premium,
            TraceMode::Paris,
            3,
            1,
        );
        assert_eq!(traces.len(), 15);
        assert!(traces.iter().all(|t| t.reached));
    }

    #[test]
    fn duration_estimate_scales_with_traces() {
        let topo = Topology::generate(TopologyConfig::tiny(62));
        let paths = Paths::new(&topo);
        let region = topo.cities.by_name("The Dalles").unwrap();
        let ts = targets(&topo, 8);
        let engine = Scamper::default();
        let traces = engine.trace_many(
            &paths,
            region,
            topo.vm_ip(region, 0),
            &ts,
            Tier::Premium,
            TraceMode::Paris,
            1,
            1,
        );
        let d = engine.estimated_duration_s(&traces);
        assert!(d > 0.0);
        let half = engine.estimated_duration_s(&traces[..4]);
        assert!(half < d);
    }

    #[test]
    fn budget_sizing() {
        let engine = Scamper {
            probe_rate_pps: 100,
            attempts_per_hop: 1,
        };
        // 20 minutes, 12 hops per trace → 100*1200/12 = 10_000 targets.
        assert_eq!(engine.targets_within_budget(1200.0, 12.0), 10_000);
    }

    #[test]
    fn flow_salting_differs_across_targets() {
        // Two targets must not end up with the same flow id for flow 0.
        let a = simnet::routing::load_key(b"scamper", 0, 0).rotate_left(7);
        let b = simnet::routing::load_key(b"scamper", 1, 0).rotate_left(7);
        assert_ne!(a, b);
    }
}
