//! In-band bottleneck localisation — the paper's §5 future work, built.
//!
//! "Conducting speed tests is bandwidth intensive, which is pessimal in
//! terms of cloud charges. We will apply in-band measurement approaches
//! (e.g., \[FlowTrace\]) to inject measurement probes into throughput
//! measurement flows to identify the bottleneck link on the path and
//! reduce the test duration."
//!
//! The FlowTrace idea: ride an existing TCP flow and inject back-to-back
//! packet trains; the train's dispersion after k hops reflects the
//! tightest link in the first k segments, so TTL-limited trains localise
//! the bottleneck without a separate bulk transfer. Here the probe train
//! is evaluated against the same per-segment available-bandwidth model
//! the fluid TCP uses, with per-train measurement noise — and, because
//! the substrate is simulated, the inference is scored against ground
//! truth.

use simnet::perf::PerfModel;
use simnet::routing::RouterPath;
use simnet::time::SimTime;

/// One TTL-limited train's estimate.
#[derive(Debug, Clone, Copy)]
pub struct HopEstimate {
    /// Path segment index the train was limited to (inclusive).
    pub segment: usize,
    /// Dispersion-based available-bandwidth estimate for the prefix,
    /// Mbps.
    pub avail_mbps: f64,
}

/// The localisation result.
#[derive(Debug, Clone)]
pub struct BottleneckEstimate {
    /// Per-prefix estimates, one per segment.
    pub hops: Vec<HopEstimate>,
    /// Index of the inferred bottleneck segment (largest drop in the
    /// prefix-estimate curve).
    pub bottleneck_segment: usize,
    /// Estimated available bandwidth at the bottleneck, Mbps.
    pub bottleneck_mbps: f64,
    /// Probe bytes spent (the whole point: ≪ a bulk transfer).
    pub probe_bytes: u64,
}

/// Number of packets per train.
pub const TRAIN_LEN: u32 = 32;
/// Probe packet size, bytes.
pub const PROBE_BYTES: u32 = 1_200;

/// Relative dispersion-measurement noise per train (timer granularity,
/// interrupt coalescing — dispersion estimates are notoriously jittery).
const TRAIN_NOISE: f64 = 0.12;

/// Runs TTL-limited in-band trains along `path` at time `t`.
///
/// `trains_per_hop` trains are averaged per TTL (more trains, less
/// noise, more probe bytes).
pub fn locate_bottleneck(
    perf: &PerfModel<'_>,
    path: &RouterPath,
    t: SimTime,
    trains_per_hop: u32,
    seed: u64,
) -> BottleneckEstimate {
    assert!(trains_per_hop > 0, "need at least one train per hop");
    let mut hops = Vec::with_capacity(path.segments.len());
    let mut prefix_min = f64::INFINITY;
    for (i, seg) in path.segments.iter().enumerate() {
        let avail = perf.bottleneck_of_segment(seg, t);
        prefix_min = prefix_min.min(avail);
        // Average several noisy dispersion readings of the prefix.
        let mut acc = 0.0;
        for k in 0..trains_per_hop {
            let h = simnet::routing::load_key(
                b"inband",
                seed ^ seg.load_key,
                t.as_secs().wrapping_add(k as u64),
            );
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            let noise = 1.0 + TRAIN_NOISE * (2.0 * u - 1.0);
            acc += prefix_min * noise;
        }
        hops.push(HopEstimate {
            segment: i,
            avail_mbps: acc / trains_per_hop as f64,
        });
    }

    // The bottleneck is where the prefix curve drops the most.
    let mut bottleneck = 0;
    let mut largest_drop = f64::NEG_INFINITY;
    let mut prev = f64::INFINITY;
    for h in &hops {
        let drop = prev - h.avail_mbps;
        if drop > largest_drop {
            largest_drop = drop;
            bottleneck = h.segment;
        }
        prev = prev.min(h.avail_mbps);
    }

    let probe_bytes = u64::from(TRAIN_LEN)
        * u64::from(PROBE_BYTES)
        * u64::from(trains_per_hop)
        * path.segments.len() as u64;
    BottleneckEstimate {
        bottleneck_mbps: hops[bottleneck].avail_mbps,
        bottleneck_segment: bottleneck,
        hops,
        probe_bytes,
    }
}

/// Ground-truth bottleneck segment (argmin of available bandwidth) —
/// only computable because the substrate is simulated.
pub fn true_bottleneck(perf: &PerfModel<'_>, path: &RouterPath, t: SimTime) -> usize {
    path.segments
        .iter()
        .enumerate()
        .min_by(|a, b| {
            perf.bottleneck_of_segment(a.1, t)
                .partial_cmp(&perf.bottleneck_of_segment(b.1, t))
                .expect("finite")
        })
        .map(|(i, _)| i)
        .expect("paths have segments")
}

/// Bytes a full bulk test of `duration_s` at `rate_mbps` would transfer —
/// the cost the in-band approach avoids.
pub fn bulk_test_bytes(rate_mbps: f64, duration_s: f64) -> u64 {
    (rate_mbps / 8.0 * duration_s * 1e6) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::load::LoadModel;
    use simnet::routing::{Direction, Paths, Tier};
    use simnet::topology::{Topology, TopologyConfig};

    fn setup() -> Topology {
        Topology::generate(TopologyConfig::tiny(91))
    }

    fn a_path(topo: &Topology) -> RouterPath {
        let paths = Paths::new(topo);
        let region = topo.cities.by_name("The Dalles").unwrap();
        let leaf = topo
            .non_cloud_ases()
            .find(|id| matches!(topo.as_node(*id).role, simnet::asn::AsRole::AccessIsp))
            .unwrap();
        let city = topo.as_node(leaf).home_city;
        paths
            .vm_host_path(
                region,
                topo.vm_ip(region, 0),
                leaf,
                city,
                topo.host_ip(leaf, city, 0),
                Tier::Premium,
                Direction::ToCloud,
            )
            .unwrap()
    }

    #[test]
    fn estimates_cover_every_segment_and_decrease() {
        let topo = setup();
        let perf = PerfModel::new(&topo, LoadModel::new(3));
        let path = a_path(&topo);
        let est = locate_bottleneck(&perf, &path, SimTime::from_day_hour(1, 9), 8, 1);
        assert_eq!(est.hops.len(), path.segments.len());
        // Modulo noise, prefix estimates are non-increasing.
        let mut prev = f64::INFINITY;
        for h in &est.hops {
            assert!(h.avail_mbps <= prev * (1.0 + 2.0 * TRAIN_NOISE));
            prev = prev.min(h.avail_mbps);
        }
    }

    #[test]
    fn finds_the_true_bottleneck_with_enough_trains() {
        let topo = setup();
        let perf = PerfModel::new(&topo, LoadModel::new(3));
        let path = a_path(&topo);
        let t = SimTime::from_day_hour(2, 20);
        let truth = true_bottleneck(&perf, &path, t);
        let est = locate_bottleneck(&perf, &path, t, 16, 7);
        // Allow off-by-one: consecutive segments can have near-equal
        // availability, where dispersion methods genuinely can't split.
        let diff = est.bottleneck_segment.abs_diff(truth);
        assert!(
            diff <= 1,
            "inferred {} vs true {truth}",
            est.bottleneck_segment
        );
    }

    #[test]
    fn probe_cost_is_orders_below_bulk_cost() {
        let topo = setup();
        let perf = PerfModel::new(&topo, LoadModel::new(3));
        let path = a_path(&topo);
        let est = locate_bottleneck(&perf, &path, SimTime::from_day_hour(0, 8), 8, 1);
        let bulk = bulk_test_bytes(300.0, 15.0);
        assert!(
            est.probe_bytes * 100 < bulk,
            "probes {} vs bulk {}",
            est.probe_bytes,
            bulk
        );
    }

    #[test]
    fn estimate_tracks_available_bandwidth() {
        let topo = setup();
        let perf = PerfModel::new(&topo, LoadModel::new(3));
        let path = a_path(&topo);
        let t = SimTime::from_day_hour(1, 10);
        let est = locate_bottleneck(&perf, &path, t, 16, 3);
        let truth = perf.bottleneck_mbps(&path, t);
        let ratio = est.bottleneck_mbps / truth;
        assert!(
            (0.7..1.4).contains(&ratio),
            "estimate {} vs truth {truth}",
            est.bottleneck_mbps
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = setup();
        let perf = PerfModel::new(&topo, LoadModel::new(3));
        let path = a_path(&topo);
        let t = SimTime::from_day_hour(1, 10);
        let a = locate_bottleneck(&perf, &path, t, 4, 5);
        let b = locate_bottleneck(&perf, &path, t, 4, 5);
        assert_eq!(a.bottleneck_segment, b.bottleneck_segment);
        assert_eq!(a.bottleneck_mbps, b.bottleneck_mbps);
    }

    #[test]
    #[should_panic(expected = "at least one train")]
    fn zero_trains_rejected() {
        let topo = setup();
        let perf = PerfModel::new(&topo, LoadModel::new(3));
        let path = a_path(&topo);
        locate_bottleneck(&perf, &path, SimTime::EPOCH, 0, 1);
    }
}
