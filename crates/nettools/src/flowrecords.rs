//! RTT and loss estimation from captured packet headers.
//!
//! CLASP's analysis VM "identifies HTTP transactions from encrypted
//! traffic and uses the corresponding TCP flows to estimate the
//! round-trip latency and packet loss rate" (§3.3). We get packet headers
//! from the `simtcp` capture (the tcpdump substitute) and reproduce the
//! estimators:
//!
//! * **RTT** — time between a data segment's first transmission and the
//!   first cumulative ACK covering it (retransmitted segments excluded,
//!   as in Karn's rule);
//! * **loss** — retransmission-based: segments transmitted more than
//!   once over segments transmitted, per connection, aggregated.

use simtcp::flow::{Capture, CaptureEvent};
use std::collections::BTreeMap;

/// Summary statistics extracted from a packet capture.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStats {
    /// Median of the RTT samples, ms.
    pub rtt_ms: Option<f64>,
    /// Estimated loss rate (retransmitted / transmitted).
    pub loss_rate: f64,
    /// Data segments transmitted (including retransmissions).
    pub data_packets: u64,
    /// Distinct data segments seen.
    pub distinct_segments: u64,
    /// RTT samples collected.
    pub rtt_samples: usize,
}

/// Analyzes a capture from `simtcp` into flow statistics.
pub fn analyze(capture: &Capture) -> FlowStats {
    // Per (conn, seq): first send time and transmission count. Ordered
    // map so the retransmission fold iterates canonically.
    let mut sends: BTreeMap<(u16, u64), (f64, u32)> = BTreeMap::new();
    let mut rtt_samples: Vec<f64> = Vec::new();
    let mut data_packets: u64 = 0;

    for rec in &capture.records {
        match (rec.is_ack, rec.event) {
            (false, CaptureEvent::Sent) => {
                data_packets += 1;
                sends
                    .entry((rec.conn, rec.num))
                    .and_modify(|(_, n)| *n += 1)
                    .or_insert((rec.t_ms, 1));
            }
            (true, CaptureEvent::Delivered) => {
                // ACK numbers pack (cumulative ack, echoed segment);
                // sample the RTT of the echoed segment when it was
                // transmitted exactly once.
                let (_ack, echo) = simtcp::flow::unpack_ack(rec.num);
                if let Some((t0, n)) = sends.remove(&(rec.conn, echo)) {
                    if n == 1 && rec.t_ms >= t0 {
                        rtt_samples.push(rec.t_ms - t0);
                    } else if n > 1 {
                        // Put the retransmission count back for loss
                        // accounting.
                        sends.insert((rec.conn, echo), (t0, n));
                    }
                }
            }
            _ => {}
        }
    }

    // Count retransmissions among everything we saw sent.
    let mut retransmitted: u64 = 0;
    let mut distinct: u64 = 0;
    for (_, (_, n)) in sends.iter() {
        distinct += 1;
        retransmitted += (*n as u64).saturating_sub(1);
    }
    // Segments already removed for RTT sampling were transmitted once.
    let sampled = rtt_samples.len() as u64;
    let distinct_segments = distinct + sampled;

    rtt_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let rtt_ms = if rtt_samples.is_empty() {
        None
    } else {
        Some(rtt_samples[rtt_samples.len() / 2])
    };

    FlowStats {
        rtt_ms,
        loss_rate: if data_packets == 0 {
            0.0
        } else {
            retransmitted as f64 / data_packets as f64
        },
        data_packets,
        distinct_segments,
        rtt_samples: rtt_samples.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtcp::flow::{run_flow, FlowConfig, PathSpec};
    use simtcp::link::LinkSpec;

    fn capture_for(loss: f64) -> Capture {
        let mut path = PathSpec::symmetric(vec![
            LinkSpec::new(1000.0, 0.1, 256, 0.0),
            LinkSpec::new(100.0, 15.0, 128, 0.0),
            LinkSpec::new(1000.0, 0.1, 256, 0.0),
        ]);
        path.fwd[1].loss = loss;
        run_flow(
            &path,
            &FlowConfig {
                duration_s: 3.0,
                capture: true,
                ..Default::default()
            },
        )
        .capture
    }

    #[test]
    fn clean_flow_rtt_near_propagation() {
        let stats = analyze(&capture_for(0.0));
        let rtt = stats.rtt_ms.unwrap();
        // 2 × 15.2 ms propagation plus queueing.
        assert!((28.0..120.0).contains(&rtt), "rtt = {rtt}");
        assert!(stats.rtt_samples > 50);
        assert!(stats.loss_rate < 0.02, "loss = {}", stats.loss_rate);
    }

    #[test]
    fn lossy_flow_estimates_loss() {
        let stats = analyze(&capture_for(0.05));
        assert!(
            (0.01..0.15).contains(&stats.loss_rate),
            "estimated loss = {}",
            stats.loss_rate
        );
    }

    #[test]
    fn loss_ordering_preserved() {
        let low = analyze(&capture_for(0.01)).loss_rate;
        let high = analyze(&capture_for(0.08)).loss_rate;
        assert!(high > low, "high {high} vs low {low}");
    }

    #[test]
    fn empty_capture() {
        let stats = analyze(&Capture::default());
        assert_eq!(stats.rtt_ms, None);
        assert_eq!(stats.loss_rate, 0.0);
        assert_eq!(stats.data_packets, 0);
    }

    #[test]
    fn counts_are_consistent() {
        let stats = analyze(&capture_for(0.02));
        assert!(stats.data_packets >= stats.distinct_segments);
        assert!(stats.distinct_segments > 0);
    }
}
